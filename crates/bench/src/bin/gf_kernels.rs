//! GF(2^8) kernel microbenchmark — the machine-readable perf trajectory of
//! the bulk kernels every encode, decode and repair in the workspace runs
//! on.
//!
//! Measures, for every backend the CPU supports (scalar lookup, portable
//! SWAR, and x86-64 SSSE3/AVX2 `pshufb` where available):
//!
//! * `mul_add` — the fused multiply-accumulate `dst ^= c·src` on one shard;
//! * `encode-rows` — a (10, 4) Reed–Solomon encode done row-at-a-time
//!   (each parity reads all ten data shards: the pre-blocking code path);
//! * `encode-multi` — the same encode through the cache-blocked
//!   multi-output [`slice_ops::matrix_mul_into`], which reads each data
//!   shard once for all four parities.
//!
//! Results are printed as a markdown table and written to
//! `BENCH_gf_kernels.json` (MB/s per backend × shard size) so the numbers
//! are diffable across PRs.
//!
//! Usage: `gf_kernels [--quick]` (`--quick` shrinks the measurement time
//! for CI smoke runs).

#![forbid(unsafe_code)]

use std::env;
use std::fs;
use std::time::Instant;

use pbrs_bench::{f1, section};
use pbrs_erasure::ReedSolomon;
use pbrs_gf::backend::{self, Backend};
use pbrs_gf::slice_ops;
use pbrs_trace::report::to_markdown_table;

/// Shard sizes to sweep: small enough to sit in L2, and the 1 MiB shard
/// the acceptance threshold is measured on.
const SHARD_SIZES: [usize; 3] = [64 * 1024, 256 * 1024, 1024 * 1024];

const K: usize = 10;
const R: usize = 4;

struct Sample {
    kernel: &'static str,
    backend: Backend,
    shard_bytes: usize,
    mb_per_s: f64,
}

fn filled(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(167).wrapping_add(seed))
        .collect()
}

/// Runs `work` repeatedly until `budget_secs` of wall time is spent and
/// returns achieved MB/s, where one call to `work` moves `bytes` bytes.
fn throughput(bytes: usize, budget_secs: f64, mut work: impl FnMut()) -> f64 {
    // Warm up caches and the backend's table setup.
    work();
    let mut iterations = 0u64;
    let started = Instant::now();
    loop {
        work();
        iterations += 1;
        if started.elapsed().as_secs_f64() >= budget_secs && iterations >= 3 {
            break;
        }
    }
    let secs = started.elapsed().as_secs_f64();
    (bytes as f64 * iterations as f64) / (1024.0 * 1024.0) / secs
}

fn measure_backend(backend: Backend, shard_bytes: usize, budget_secs: f64) -> Vec<Sample> {
    assert!(backend::force(backend), "backend was reported supported");

    let src = filled(shard_bytes, 3);
    let mut dst = filled(shard_bytes, 11);
    let mul_add = throughput(shard_bytes, budget_secs, || {
        slice_ops::mul_add_slice(0x8E, &src, &mut dst);
    });

    // A realistic rs-10-4 encode: 10 data shards in, 4 parity shards out.
    let rs = ReedSolomon::new(K, R).expect("(10, 4) is valid");
    let rows: Vec<&[u8]> = (0..R).map(|j| rs.parity_row(j)).collect();
    let data: Vec<Vec<u8>> = (0..K).map(|i| filled(shard_bytes, i as u8)).collect();
    let srcs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let mut parity: Vec<Vec<u8>> = (0..R).map(|_| vec![0u8; shard_bytes]).collect();
    let encoded_bytes = K * shard_bytes;

    let rows_at_a_time = throughput(encoded_bytes, budget_secs, || {
        for (row, out) in rows.iter().zip(parity.iter_mut()) {
            slice_ops::linear_combination(row, &srcs, out);
        }
    });
    let multi_output = throughput(encoded_bytes, budget_secs, || {
        let mut outs: Vec<&mut [u8]> = parity.iter_mut().map(|p| p.as_mut_slice()).collect();
        slice_ops::matrix_mul_into(&rows, &srcs, &mut outs);
    });

    [
        ("mul_add", mul_add),
        ("encode-rows", rows_at_a_time),
        ("encode-multi", multi_output),
    ]
    .into_iter()
    .map(|(kernel, mb_per_s)| Sample {
        kernel,
        backend,
        shard_bytes,
        mb_per_s,
    })
    .collect()
}

fn shard_label(bytes: usize) -> String {
    if bytes >= 1024 * 1024 {
        format!("{} MiB", bytes / (1024 * 1024))
    } else {
        format!("{} KiB", bytes / 1024)
    }
}

fn write_json(path: &str, samples: &[Sample], speedup: f64) {
    let mut rows = String::new();
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"backend\": \"{}\", \"shard_bytes\": {}, \
             \"mb_per_s\": {:.1}}}",
            s.kernel, s.backend, s.shard_bytes, s.mb_per_s
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"gf_kernels\",\n  \"code\": \"rs-{K}-{R}\",\n  \
         \"best_backend\": \"{}\",\n  \
         \"encode_speedup_swar_vs_scalar_1mib\": {:.2},\n  \"results\": [\n{}\n  ]\n}}\n",
        backend::detect_best(),
        speedup,
        rows
    );
    fs::write(path, json).expect("write benchmark JSON");
}

fn main() {
    let quick = env::args().any(|a| a == "--quick");
    let budget_secs = if quick { 0.03 } else { 0.25 };

    let backends = backend::supported();
    section(&format!(
        "GF(2^8) kernel throughput (backends: {}, rs-{K}-{R} encode)",
        backends
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join(", ")
    ));

    let mut samples = Vec::new();
    for &shard_bytes in &SHARD_SIZES {
        for &backend in &backends {
            eprintln!(
                "[pbrs-bench] gf kernels: {} @ {}",
                backend,
                shard_label(shard_bytes)
            );
            samples.extend(measure_backend(backend, shard_bytes, budget_secs));
        }
    }
    // Leave the process on the auto-detected backend.
    backend::force(backend::detect_best());

    let header = ["kernel", "shard", "backend", "MB/s"];
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.kernel.to_string(),
                shard_label(s.shard_bytes),
                s.backend.to_string(),
                f1(s.mb_per_s),
            ]
        })
        .collect();
    print!("{}", to_markdown_table(&header, &rows));

    let encode_at = |backend: Backend, shard: usize| {
        samples
            .iter()
            .find(|s| s.kernel == "encode-multi" && s.backend == backend && s.shard_bytes == shard)
            .map(|s| s.mb_per_s)
            .unwrap_or(f64::NAN)
    };
    let one_mib = 1024 * 1024;
    let speedup = encode_at(Backend::Swar, one_mib) / encode_at(Backend::Scalar, one_mib);
    println!(
        "\nrs-{K}-{R} encode on 1 MiB shards: SWAR is {speedup:.2}x the scalar oracle; \
         best backend is {}.",
        backend::detect_best()
    );

    write_json("BENCH_gf_kernels.json", &samples, speedup);
    println!("Wrote BENCH_gf_kernels.json ({} samples).", samples.len());
}
