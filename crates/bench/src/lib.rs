//! Shared harness code for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one figure or table of the paper
//! (see `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for the
//! paper-vs-measured results). The helpers here keep the output format
//! consistent so the binaries stay short and the results are easy to diff.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pbrs_cluster::{ClusterReport, SimConfig, Simulator};
use pbrs_trace::calibration::PaperConstants;
use pbrs_trace::report::{comparison_table, ComparisonRow};

/// Prints a titled section header.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

/// Prints a paper-vs-measured comparison as a markdown table.
pub fn print_comparison(rows: &[ComparisonRow]) {
    print!("{}", comparison_table(rows));
}

/// Builds a comparison row.
pub fn row(metric: &str, paper: impl ToString, measured: impl ToString) -> ComparisonRow {
    ComparisonRow {
        metric: metric.to_string(),
        paper: paper.to_string(),
        measured: measured.to_string(),
    }
}

/// Runs the full warehouse-cluster simulation for a configuration, printing
/// a one-line progress note (the Facebook-scale run takes a few seconds).
pub fn run_simulation(label: &str, config: SimConfig) -> ClusterReport {
    eprintln!(
        "[pbrs-bench] simulating: {label} ({} days, {} machines, {:?})",
        config.days,
        config.machines(),
        config.code
    );
    Simulator::new(config).run()
}

/// The published constants, re-exported for the binaries.
pub fn paper() -> PaperConstants {
    PaperConstants::published()
}

/// Formats a float with one decimal place.
pub fn f1(value: f64) -> String {
    format!("{value:.1}")
}

/// Formats a float with two decimal places.
pub fn f2(value: f64) -> String {
    format!("{value:.2}")
}

/// Formats a percentage with two decimals.
pub fn pct(value: f64) -> String {
    format!("{value:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(f2(1.256), "1.26");
        assert_eq!(pct(98.078), "98.08%");
        assert_eq!(row("m", 1, 2).metric, "m");
        assert_eq!(paper().rs_data_blocks, 10);
    }

    #[test]
    fn small_simulation_runs_through_the_harness() {
        let report = run_simulation("unit test", SimConfig::small_test());
        assert_eq!(report.days.len(), SimConfig::small_test().days);
    }
}
