//! Criterion benchmarks of the Reed–Solomon codec used as the production
//! baseline: encode throughput and full reconstruction of up to r erasures,
//! with the legacy owned-`Vec` API and the zero-copy view API side by side
//! so the allocation win is visible in the output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pbrs_erasure::{ErasureCode, ReedSolomon, ShardBuffer};
use std::hint::black_box;

fn data_shards(k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            (0..len)
                .map(|j| ((i * 31 + j * 7 + 3) % 256) as u8)
                .collect()
        })
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_encode_10_4");
    for shard_len in [16 * 1024usize, 256 * 1024, 1024 * 1024] {
        let rs = ReedSolomon::new(10, 4).unwrap();
        let data = data_shards(10, shard_len);
        group.throughput(Throughput::Bytes((shard_len * 10) as u64));
        // Legacy path: allocates 4 owned parity shards per call.
        group.bench_with_input(BenchmarkId::new("legacy", shard_len), &shard_len, |b, _| {
            b.iter(|| rs.encode(black_box(&data)).unwrap());
        });
        // Zero-copy path: parity written into a pre-allocated stripe buffer.
        let mut stripe = ShardBuffer::zeroed(14, shard_len);
        for (i, shard) in data.iter().enumerate() {
            stripe.shard_mut(i).copy_from_slice(shard);
        }
        group.bench_with_input(
            BenchmarkId::new("encode_into", shard_len),
            &shard_len,
            |b, _| {
                b.iter(|| {
                    let (data_view, mut parity_view) = stripe.split_mut(10);
                    rs.encode_into(black_box(&data_view), &mut parity_view)
                        .unwrap();
                });
            },
        );
    }
    group.finish();
}

fn bench_reconstruct(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_reconstruct_10_4");
    let shard_len = 256 * 1024;
    let rs = ReedSolomon::new(10, 4).unwrap();
    let data = data_shards(10, shard_len);
    let parity = rs.encode(&data).unwrap();
    let full: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();
    for missing in [1usize, 2, 4] {
        group.throughput(Throughput::Bytes((shard_len * missing) as u64));
        group.bench_with_input(
            BenchmarkId::new("legacy", missing),
            &missing,
            |b, &missing| {
                b.iter(|| {
                    let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                    for i in 0..missing {
                        shards[i * 3] = None;
                    }
                    rs.reconstruct(black_box(&mut shards)).unwrap();
                    shards
                });
            },
        );
        // Zero-copy path: rebuild directly inside the stripe buffer.
        let mut stripe = ShardBuffer::from_shards(&full).unwrap();
        let mut present = vec![true; 14];
        for i in 0..missing {
            present[i * 3] = false;
        }
        group.bench_with_input(BenchmarkId::new("in_place", missing), &missing, |b, _| {
            b.iter(|| {
                rs.reconstruct_in_place(black_box(&mut stripe.as_set_mut()), black_box(&present))
                    .unwrap();
            });
        });
    }
    group.finish();
}

fn bench_single_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_single_repair_10_4");
    let shard_len = 256 * 1024;
    let rs = ReedSolomon::new(10, 4).unwrap();
    let data = data_shards(10, shard_len);
    let parity = rs.encode(&data).unwrap();
    let full: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();
    group.throughput(Throughput::Bytes(shard_len as u64));

    let mut degraded: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
    degraded[5] = None;
    group.bench_function("legacy", |b| {
        b.iter(|| rs.repair(5, black_box(&degraded)).unwrap())
    });

    let stripe = ShardBuffer::from_shards(&full).unwrap();
    let mut out = vec![0u8; shard_len];
    group.bench_function("repair_into", |b| {
        b.iter(|| {
            rs.repair_into(5, black_box(&stripe.as_set()), black_box(&mut out))
                .unwrap();
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_encode,
    bench_reconstruct,
    bench_single_repair
);
criterion_main!(benches);
