//! Criterion benchmarks of the Reed–Solomon codec used as the production
//! baseline: encode throughput and full reconstruction of up to r erasures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pbrs_erasure::{ErasureCode, ReedSolomon};
use std::hint::black_box;

fn data_shards(k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| (0..len).map(|j| ((i * 31 + j * 7 + 3) % 256) as u8).collect())
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_encode_10_4");
    for shard_len in [16 * 1024usize, 256 * 1024, 1024 * 1024] {
        let rs = ReedSolomon::new(10, 4).unwrap();
        let data = data_shards(10, shard_len);
        group.throughput(Throughput::Bytes((shard_len * 10) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(shard_len), &shard_len, |b, _| {
            b.iter(|| rs.encode(black_box(&data)).unwrap());
        });
    }
    group.finish();
}

fn bench_reconstruct(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_reconstruct_10_4");
    let shard_len = 256 * 1024;
    let rs = ReedSolomon::new(10, 4).unwrap();
    let data = data_shards(10, shard_len);
    let parity = rs.encode(&data).unwrap();
    let full: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();
    for missing in [1usize, 2, 4] {
        group.throughput(Throughput::Bytes((shard_len * missing) as u64));
        group.bench_with_input(BenchmarkId::new("erasures", missing), &missing, |b, &missing| {
            b.iter(|| {
                let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                for i in 0..missing {
                    shards[i * 3] = None;
                }
                rs.reconstruct(black_box(&mut shards)).unwrap();
                shards
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_reconstruct);
criterion_main!(benches);
