//! Criterion benchmarks of the Piggybacked-RS codec: encode throughput and
//! full reconstruction, side by side with the RS baseline at the production
//! (10, 4) parameters, plus paired legacy-vs-zero-copy cases so the
//! allocation win of the view API is visible in the output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pbrs_core::PiggybackedRs;
use pbrs_erasure::{ErasureCode, ReedSolomon, ShardBuffer};
use std::hint::black_box;

fn data_shards(k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            (0..len)
                .map(|j| ((i * 37 + j * 11 + 1) % 256) as u8)
                .collect()
        })
        .collect()
}

fn bench_encode_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_10_4");
    let shard_len = 256 * 1024;
    let data = data_shards(10, shard_len);
    group.throughput(Throughput::Bytes((shard_len * 10) as u64));

    let rs = ReedSolomon::new(10, 4).unwrap();
    group.bench_function("rs", |b| b.iter(|| rs.encode(black_box(&data)).unwrap()));

    let pb = PiggybackedRs::new(10, 4).unwrap();
    group.bench_function("piggybacked_rs", |b| {
        b.iter(|| pb.encode(black_box(&data)).unwrap())
    });

    // The same encodes through the zero-copy API: no per-shard allocation,
    // parity written straight into a pre-allocated stripe buffer.
    let mut stripe = ShardBuffer::zeroed(14, shard_len);
    for (i, shard) in data.iter().enumerate() {
        stripe.shard_mut(i).copy_from_slice(shard);
    }
    group.bench_function("rs_encode_into", |b| {
        b.iter(|| {
            let (data_view, mut parity_view) = stripe.split_mut(10);
            rs.encode_into(black_box(&data_view), &mut parity_view)
                .unwrap();
        });
    });
    group.bench_function("piggybacked_rs_encode_into", |b| {
        b.iter(|| {
            let (data_view, mut parity_view) = stripe.split_mut(10);
            pb.encode_into(black_box(&data_view), &mut parity_view)
                .unwrap();
        });
    });
    group.finish();
}

fn bench_repair_comparison(c: &mut Criterion) {
    // The operation the paper is about: rebuilding one lost data block. The
    // legacy path allocates owned shards along the way; repair_into reads
    // borrowed views and writes one caller-provided buffer.
    let mut group = c.benchmark_group("single_repair_10_4");
    let shard_len = 256 * 1024;
    let data = data_shards(10, shard_len);
    group.throughput(Throughput::Bytes(shard_len as u64));

    let pb = PiggybackedRs::new(10, 4).unwrap();
    let pb_full: Vec<Vec<u8>> = data
        .iter()
        .cloned()
        .chain(pb.encode(&data).unwrap())
        .collect();
    let mut degraded: Vec<Option<Vec<u8>>> = pb_full.iter().cloned().map(Some).collect();
    degraded[5] = None;
    group.bench_function("legacy", |b| {
        b.iter(|| pb.repair(5, black_box(&degraded)).unwrap())
    });

    let stripe = ShardBuffer::from_shards(&pb_full).unwrap();
    let mut out = vec![0u8; shard_len];
    group.bench_function("repair_into", |b| {
        b.iter(|| {
            pb.repair_into(5, black_box(&stripe.as_set()), black_box(&mut out))
                .unwrap();
        });
    });
    group.finish();
}

fn bench_reconstruct_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconstruct_two_failures_10_4");
    let shard_len = 256 * 1024;
    let data = data_shards(10, shard_len);

    let rs = ReedSolomon::new(10, 4).unwrap();
    let rs_full: Vec<Vec<u8>> = data
        .iter()
        .cloned()
        .chain(rs.encode(&data).unwrap())
        .collect();
    group.bench_function("rs", |b| {
        b.iter(|| {
            let mut shards: Vec<Option<Vec<u8>>> = rs_full.iter().cloned().map(Some).collect();
            shards[0] = None;
            shards[11] = None;
            rs.reconstruct(black_box(&mut shards)).unwrap();
            shards
        })
    });

    let pb = PiggybackedRs::new(10, 4).unwrap();
    let pb_full: Vec<Vec<u8>> = data
        .iter()
        .cloned()
        .chain(pb.encode(&data).unwrap())
        .collect();
    group.bench_function("piggybacked_rs", |b| {
        b.iter(|| {
            let mut shards: Vec<Option<Vec<u8>>> = pb_full.iter().cloned().map(Some).collect();
            shards[0] = None;
            shards[11] = None;
            pb.reconstruct(black_box(&mut shards)).unwrap();
            shards
        })
    });
    group.finish();
}

fn bench_encode_parameter_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("piggybacked_encode_sweep");
    let shard_len = 64 * 1024;
    for (k, r) in [(6usize, 3usize), (10, 4), (12, 6)] {
        let code = PiggybackedRs::new(k, r).unwrap();
        let data = data_shards(k, shard_len);
        group.throughput(Throughput::Bytes((shard_len * k) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_r{r}")),
            &(k, r),
            |b, _| b.iter(|| code.encode(black_box(&data)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_encode_comparison,
    bench_repair_comparison,
    bench_reconstruct_comparison,
    bench_encode_parameter_sweep
);
criterion_main!(benches);
