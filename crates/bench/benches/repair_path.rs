//! Criterion benchmarks of the single-block repair path — the operation the
//! paper's measurement study is about. Compares RS, Piggybacked-RS and LRC
//! at the production stripe geometry, reporting both wall time and the
//! helper bytes each scheme moves.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pbrs_core::PiggybackedRs;
use pbrs_erasure::{ErasureCode, Lrc, LrcParams, ReedSolomon};
use std::hint::black_box;

fn data_shards(k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            (0..len)
                .map(|j| ((i * 53 + j * 17 + 9) % 256) as u8)
                .collect()
        })
        .collect()
}

fn bench_single_block_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_block_repair");
    let shard_len = 256 * 1024;
    let data = data_shards(10, shard_len);
    group.throughput(Throughput::Bytes(shard_len as u64));

    let rs = ReedSolomon::new(10, 4).unwrap();
    let rs_shards: Vec<Option<Vec<u8>>> = {
        let mut s: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .chain(rs.encode(&data).unwrap())
            .map(Some)
            .collect();
        s[5] = None;
        s
    };
    group.bench_function("rs_10_4", |b| {
        b.iter(|| rs.repair(5, black_box(&rs_shards)).unwrap())
    });

    let pb = PiggybackedRs::new(10, 4).unwrap();
    let pb_shards: Vec<Option<Vec<u8>>> = {
        let mut s: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .chain(pb.encode(&data).unwrap())
            .map(Some)
            .collect();
        s[5] = None;
        s
    };
    group.bench_function("piggybacked_rs_10_4", |b| {
        b.iter(|| pb.repair(5, black_box(&pb_shards)).unwrap())
    });

    let lrc = Lrc::new(LrcParams::XORBAS).unwrap();
    let lrc_shards: Vec<Option<Vec<u8>>> = {
        let mut s: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .chain(lrc.encode(&data).unwrap())
            .map(Some)
            .collect();
        s[5] = None;
        s
    };
    group.bench_function("lrc_10_2_4", |b| {
        b.iter(|| lrc.repair(5, black_box(&lrc_shards)).unwrap())
    });
    group.finish();
}

fn bench_repair_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair_plan_only");
    let pb = PiggybackedRs::new(10, 4).unwrap();
    let mut available = vec![true; 14];
    available[5] = false;
    group.bench_function("piggybacked_rs_plan", |b| {
        b.iter(|| pb.repair_plan(5, black_box(&available)).unwrap())
    });
    let rs = ReedSolomon::new(10, 4).unwrap();
    group.bench_function("rs_plan", |b| {
        b.iter(|| rs.repair_plan(5, black_box(&available)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_single_block_repair, bench_repair_planning);
criterion_main!(benches);
