//! Criterion micro-benchmarks of the GF(2^8) kernels that dominate encode
//! and decode time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pbrs_gf::{slice_ops, Matrix};
use std::hint::black_box;

fn bench_slice_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf_slice_kernels");
    for size in [4 * 1024usize, 64 * 1024, 1024 * 1024] {
        let src: Vec<u8> = (0..size).map(|i| (i * 31 + 7) as u8).collect();
        let mut dst = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("mul_add_slice", size), &size, |b, _| {
            b.iter(|| {
                slice_ops::mul_add_slice(black_box(0x1D), black_box(&src), black_box(&mut dst))
            });
        });
        group.bench_with_input(BenchmarkId::new("mul_slice", size), &size, |b, _| {
            b.iter(|| slice_ops::mul_slice(black_box(0x1D), black_box(&src), black_box(&mut dst)));
        });
        group.bench_with_input(BenchmarkId::new("xor_slice", size), &size, |b, _| {
            b.iter(|| slice_ops::xor_slice(black_box(&mut dst), black_box(&src)));
        });
    }
    group.finish();
}

fn bench_matrix_inversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf_matrix");
    for n in [10usize, 14, 32] {
        let m = Matrix::vandermonde(n, n);
        group.bench_with_input(BenchmarkId::new("invert", n), &n, |b, _| {
            b.iter(|| black_box(&m).inverted().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_slice_kernels, bench_matrix_inversion);
criterion_main!(benches);
