//! Criterion benchmark of the warehouse-cluster simulator itself: one
//! simulated day at two cluster scales, under RS and Piggybacked-RS. This
//! bounds the cost of the experiment binaries (fig3b, traffic_reduction) and
//! documents that a production-scale month simulates in seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbrs_cluster::config::CodeChoice;
use pbrs_cluster::{SimConfig, Simulator};
use std::hint::black_box;

fn one_day_config(machines_per_rack: usize, code: CodeChoice) -> SimConfig {
    let mut config = SimConfig::small_test();
    config.machines_per_rack = machines_per_rack;
    config.unavailability.machines = config.machines();
    config.days = 1;
    config.sampled_stripes = 1000;
    config.code = code;
    config
}

fn bench_simulated_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_simulated_day");
    group.sample_size(10);
    for machines_per_rack in [10usize, 50] {
        for (label, code) in [
            ("rs", CodeChoice::production_rs()),
            ("piggybacked", CodeChoice::proposed_piggybacked()),
        ] {
            let config = one_day_config(machines_per_rack, code);
            let machines = config.machines();
            group.bench_with_input(
                BenchmarkId::new(label, format!("{machines}_machines")),
                &config,
                |b, config| {
                    b.iter(|| Simulator::new(black_box(config.clone())).run());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_simulated_day);
criterion_main!(benches);
