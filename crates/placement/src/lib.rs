//! `pbrs-placement` — rack-aware stripe placement shared by the block store
//! and the cluster simulator.
//!
//! The paper's §2.1 observation is that placement *creates* the network
//! problem: every block of a stripe lives in a different rack, so every
//! helper byte of a recovery crosses a top-of-rack switch. This crate is the
//! single model of that decision, consumed by both sides of the workspace:
//!
//! * the **cluster simulator** places its sampled stripes over racks of
//!   machines and attributes recovery traffic to the TOR switches;
//! * the **block store** places each stripe's chunks over a pool of mounted
//!   [`ChunkBackend`]s (one `chunkd` endpoint group = one rack), so the same
//!   cross-rack-vs-intra-rack split becomes measurable on real sockets.
//!
//! Both consume the same three types:
//!
//! * [`RackMap`] — named racks, each owning a set of disk (or machine)
//!   indices that together cover `0..disk_count` exactly;
//! * [`PlacementPolicy`] — how a stripe's shards are spread over the racks:
//!   [`PlacementPolicy::RackDisjoint`] (the paper's production layout: every
//!   shard in a distinct rack), [`PlacementPolicy::RackAware`] (grouped:
//!   fill as few racks as possible so repairs can find same-rack helpers),
//!   or [`PlacementPolicy::Identity`] (shard `i` on disk `i`, the store's
//!   legacy fixed layout);
//! * [`PlacementMap`] — a validated `(rack map, policy, width, seed)`
//!   quadruple that deterministically assigns every stripe key a disk set.
//!
//! Placement is **deterministic**: the same seed and stripe key always
//! produce the same disk set (an internal SplitMix64 generator, no external
//! RNG). Consumers that want randomness feed a random seed; consumers that
//! persist placements (the store's manifest) can also re-derive them.
//!
//! [`ChunkBackend`]: https://docs.rs/pbrs-store
//!
//! # Example
//!
//! ```
//! use pbrs_placement::{PlacementMap, PlacementPolicy, RackMap};
//!
//! // Six racks of two disks each, a (4, 2) code: width 6 over 12 disks.
//! let racks = RackMap::uniform(6, 2);
//! let map = PlacementMap::new(racks, PlacementPolicy::RackDisjoint, 6, 42).unwrap();
//! let disks = map.disks_for(0);
//! assert_eq!(disks.len(), 6);
//! // Rack-disjoint: all six shards land in six distinct racks.
//! let mut rack_ids: Vec<usize> = disks.iter().map(|&d| map.racks().rack_of(d).unwrap()).collect();
//! rack_ids.sort_unstable();
//! rack_ids.dedup();
//! assert_eq!(rack_ids.len(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;
use core::str::FromStr;

/// Errors from rack-map construction and stripe placement.
///
/// The paper-relevant one is [`PlacementError::WidthExceedsRacks`]: a
/// rack-disjoint stripe needs at least as many racks as shards (§2.1's
/// layout is impossible otherwise). It used to be an assertion deep in the
/// simulator; it is now a typed error surfaced through configuration
/// validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// The rack map has no racks at all.
    NoRacks,
    /// A rack has no disks.
    EmptyRack {
        /// Name of the empty rack.
        rack: String,
    },
    /// A disk index appears in more than one rack.
    DuplicateDisk {
        /// The repeated disk index.
        disk: usize,
    },
    /// The racks' disk indices do not cover `0..disk_count` exactly.
    NonContiguousDisks {
        /// The first index in `0..disk_count` owned by no rack.
        missing: usize,
        /// Total disks claimed by the map.
        disks: usize,
    },
    /// A rack-disjoint stripe is wider than the number of racks.
    WidthExceedsRacks {
        /// Shards per stripe.
        width: usize,
        /// Racks available.
        racks: usize,
    },
    /// A stripe is wider than the whole disk pool.
    WidthExceedsDisks {
        /// Shards per stripe.
        width: usize,
        /// Disks available.
        disks: usize,
    },
    /// The identity policy needs exactly one disk per shard.
    IdentityPoolMismatch {
        /// Shards per stripe.
        width: usize,
        /// Disks in the pool.
        disks: usize,
    },
    /// A policy name failed to parse.
    UnknownPolicy {
        /// The rejected name.
        name: String,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::NoRacks => write!(f, "rack map has no racks"),
            PlacementError::EmptyRack { rack } => write!(f, "rack {rack:?} has no disks"),
            PlacementError::DuplicateDisk { disk } => {
                write!(f, "disk {disk} appears in more than one rack")
            }
            PlacementError::NonContiguousDisks { missing, disks } => write!(
                f,
                "rack map claims {disks} disks but owns no disk {missing}; \
                 racks must cover 0..{disks} exactly"
            ),
            PlacementError::WidthExceedsRacks { width, racks } => write!(
                f,
                "stripe width {width} exceeds rack count {racks}; \
                 rack-disjoint placement impossible"
            ),
            PlacementError::WidthExceedsDisks { width, disks } => {
                write!(f, "stripe width {width} exceeds the {disks}-disk pool")
            }
            PlacementError::IdentityPoolMismatch { width, disks } => write!(
                f,
                "identity placement needs exactly {width} disks (one per shard), \
                 but the pool has {disks}"
            ),
            PlacementError::UnknownPolicy { name } => write!(
                f,
                "unknown placement policy {name:?} \
                 (expected identity, rack-disjoint or rack-aware)"
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Named racks partitioning a disk pool: rack `r` owns `disks(r)`, and all
/// racks together own `0..disk_count` exactly once.
///
/// "Disk" is the store's word; for the simulator the same indices are
/// machines. Either way, two indices in the same rack exchange bytes through
/// the rack's own switch, and indices in different racks pay the cross-rack
/// (TOR/aggregation) path the paper measures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RackMap {
    names: Vec<String>,
    disks: Vec<Vec<usize>>,
    /// `rack_of[disk]` = index of the owning rack.
    rack_of: Vec<usize>,
}

impl RackMap {
    /// Builds a rack map from `(name, disks)` groups.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::NoRacks`], [`PlacementError::EmptyRack`],
    /// [`PlacementError::DuplicateDisk`], or
    /// [`PlacementError::NonContiguousDisks`] when the groups do not
    /// partition `0..total` exactly.
    pub fn new(groups: Vec<(String, Vec<usize>)>) -> Result<Self, PlacementError> {
        if groups.is_empty() {
            return Err(PlacementError::NoRacks);
        }
        let total: usize = groups.iter().map(|(_, d)| d.len()).sum();
        let mut rack_of = vec![usize::MAX; total];
        for (rack, (name, disks)) in groups.iter().enumerate() {
            if disks.is_empty() {
                return Err(PlacementError::EmptyRack { rack: name.clone() });
            }
            for &disk in disks {
                if disk >= total {
                    return Err(PlacementError::NonContiguousDisks {
                        missing: rack_of
                            .iter()
                            .position(|&r| r == usize::MAX)
                            .unwrap_or(total),
                        disks: total,
                    });
                }
                if rack_of[disk] != usize::MAX {
                    return Err(PlacementError::DuplicateDisk { disk });
                }
                rack_of[disk] = rack;
            }
        }
        if let Some(missing) = rack_of.iter().position(|&r| r == usize::MAX) {
            return Err(PlacementError::NonContiguousDisks {
                missing,
                disks: total,
            });
        }
        let (names, disks) = groups.into_iter().unzip();
        Ok(RackMap {
            names,
            disks,
            rack_of,
        })
    }

    /// A map with `racks` racks of `disks_per_rack` disks each, named
    /// `rack-00`, `rack-01`, …; disk `i` lives in rack `i / disks_per_rack`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn uniform(racks: usize, disks_per_rack: usize) -> Self {
        assert!(racks > 0, "rack map needs at least one rack");
        assert!(disks_per_rack > 0, "racks need at least one disk");
        let groups = (0..racks)
            .map(|r| {
                (
                    format!("rack-{r:02}"),
                    (r * disks_per_rack..(r + 1) * disks_per_rack).collect(),
                )
            })
            .collect();
        // pbrs-lint: allow(panic-hygiene) -- a uniform partition of the pool always satisfies the group checks
        Self::new(groups).expect("uniform groups partition the pool")
    }

    /// A map where every disk is its own rack — the degenerate topology in
    /// which *all* traffic between disks is cross-rack. This is the store's
    /// legacy model (and the paper's worst case), so it is the default for
    /// stores opened without an explicit rack map.
    pub fn per_disk(disks: usize) -> Self {
        Self::uniform(disks, 1)
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.names.len()
    }

    /// Total disks across all racks.
    pub fn disk_count(&self) -> usize {
        self.rack_of.len()
    }

    /// Name of rack `rack`.
    ///
    /// # Panics
    ///
    /// Panics if `rack` is out of range.
    pub fn rack_name(&self, rack: usize) -> &str {
        &self.names[rack]
    }

    /// Disk indices of rack `rack`.
    ///
    /// # Panics
    ///
    /// Panics if `rack` is out of range.
    pub fn rack_disks(&self, rack: usize) -> &[usize] {
        &self.disks[rack]
    }

    /// The rack owning `disk`, or `None` when the index is out of range.
    pub fn rack_of(&self, disk: usize) -> Option<usize> {
        self.rack_of.get(disk).copied()
    }

    /// Whether two disks share a rack (bytes between them stay behind one
    /// TOR switch). Out-of-range indices are never in the same rack.
    pub fn same_rack(&self, a: usize, b: usize) -> bool {
        match (self.rack_of(a), self.rack_of(b)) {
            (Some(ra), Some(rb)) => ra == rb,
            _ => false,
        }
    }

    /// Whether a placement is rack-disjoint: no two of its disks share a
    /// rack.
    pub fn is_rack_disjoint(&self, placement: &[usize]) -> bool {
        let mut racks: Vec<usize> = placement.iter().filter_map(|&d| self.rack_of(d)).collect();
        if racks.len() != placement.len() {
            return false; // out-of-range disk
        }
        racks.sort_unstable();
        racks.windows(2).all(|w| w[0] != w[1])
    }
}

/// How a stripe's shards are spread over the racks of a [`RackMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Shard `i` on disk `i`; the pool must have exactly one disk per shard.
    /// This is the store's legacy fixed layout and involves no randomness.
    Identity,
    /// Every shard in a distinct, pseudo-randomly chosen rack, on a random
    /// disk within that rack — the paper's §2.1 production placement, under
    /// which *every* helper read of a recovery crosses racks.
    RackDisjoint,
    /// Grouped placement: shards fill pseudo-randomly ordered racks one rack
    /// at a time, so a stripe occupies as few racks as possible and a repair
    /// can usually find same-rack helpers (the remedy explored by the
    /// rack-aware-recovery literature).
    RackAware,
}

impl PlacementPolicy {
    /// The policy's canonical name (`identity`, `rack-disjoint`,
    /// `rack-aware`), used in manifests and config files.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementPolicy::Identity => "identity",
            PlacementPolicy::RackDisjoint => "rack-disjoint",
            PlacementPolicy::RackAware => "rack-aware",
        }
    }

    /// Checks that stripes of `width` shards can be placed on `racks` under
    /// this policy.
    ///
    /// # Errors
    ///
    /// Returns the typed constraint violation: rack-disjoint needs
    /// `width <= racks.racks()`, rack-aware needs `width <=
    /// racks.disk_count()`, identity needs `width == racks.disk_count()`.
    pub fn validate_width(&self, racks: &RackMap, width: usize) -> Result<(), PlacementError> {
        match self {
            PlacementPolicy::Identity => {
                if width != racks.disk_count() {
                    return Err(PlacementError::IdentityPoolMismatch {
                        width,
                        disks: racks.disk_count(),
                    });
                }
            }
            PlacementPolicy::RackDisjoint => {
                if width > racks.racks() {
                    return Err(PlacementError::WidthExceedsRacks {
                        width,
                        racks: racks.racks(),
                    });
                }
            }
            PlacementPolicy::RackAware => {
                if width > racks.disk_count() {
                    return Err(PlacementError::WidthExceedsDisks {
                        width,
                        disks: racks.disk_count(),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PlacementPolicy {
    type Err = PlacementError;

    fn from_str(s: &str) -> Result<Self, PlacementError> {
        match s {
            "identity" => Ok(PlacementPolicy::Identity),
            "rack-disjoint" => Ok(PlacementPolicy::RackDisjoint),
            "rack-aware" => Ok(PlacementPolicy::RackAware),
            other => Err(PlacementError::UnknownPolicy {
                name: other.to_string(),
            }),
        }
    }
}

/// A validated stripe→disk placement map: given a stripe key, returns the
/// `width` disks holding that stripe's shards, deterministically derived
/// from the map's seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementMap {
    racks: RackMap,
    policy: PlacementPolicy,
    width: usize,
    seed: u64,
}

impl PlacementMap {
    /// Builds a map, validating that `width`-shard stripes fit the racks
    /// under `policy` (so the per-stripe lookups are infallible).
    ///
    /// # Errors
    ///
    /// Returns the [`PlacementPolicy::validate_width`] violation, or
    /// [`PlacementError::WidthExceedsDisks`] for a zero-width stripe pool.
    pub fn new(
        racks: RackMap,
        policy: PlacementPolicy,
        width: usize,
        seed: u64,
    ) -> Result<Self, PlacementError> {
        policy.validate_width(&racks, width)?;
        Ok(PlacementMap {
            racks,
            policy,
            width,
            seed,
        })
    }

    /// The rack map placed onto.
    pub fn racks(&self) -> &RackMap {
        &self.racks
    }

    /// The placement policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Shards per stripe.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The deterministic seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The disks holding the stripe identified by `key`, shard `i` on the
    /// `i`-th returned disk. Deterministic: the same map and key always
    /// return the same placement.
    pub fn disks_for(&self, key: u64) -> Vec<usize> {
        place(&self.racks, self.policy, self.width, self.seed ^ mix64(key))
    }

    /// [`PlacementMap::disks_for`] keyed by an object name and a stripe
    /// index — the store's per-stripe lookup.
    pub fn disks_for_object_stripe(&self, object: &str, stripe: u64) -> Vec<usize> {
        self.disks_for(object_stripe_key(object, stripe))
    }
}

/// One-shot stripe placement without building a [`PlacementMap`]: validates
/// the width each call and places the stripe identified by `key` under
/// `seed`. Callers placing many same-width stripes should prefer a
/// [`PlacementMap`] (validates once); callers whose width varies per call
/// (the simulator) use this.
///
/// # Errors
///
/// Same as [`PlacementPolicy::validate_width`].
pub fn place_stripe(
    racks: &RackMap,
    policy: PlacementPolicy,
    width: usize,
    seed: u64,
    key: u64,
) -> Result<Vec<usize>, PlacementError> {
    policy.validate_width(racks, width)?;
    Ok(place(racks, policy, width, seed ^ mix64(key)))
}

/// The placement kernel shared by [`PlacementMap::disks_for`] and
/// [`place_stripe`]: feasibility is already validated, `mixed` is the fully
/// mixed per-stripe seed.
fn place(racks: &RackMap, policy: PlacementPolicy, width: usize, mixed: u64) -> Vec<usize> {
    let mut rng = SplitMix64::new(mixed);
    match policy {
        PlacementPolicy::Identity => (0..width).collect(),
        PlacementPolicy::RackDisjoint => {
            let mut rack_order: Vec<usize> = (0..racks.racks()).collect();
            shuffle(&mut rack_order, &mut rng);
            rack_order
                .into_iter()
                .take(width)
                .map(|rack| {
                    let disks = racks.rack_disks(rack);
                    disks[rng.below(disks.len() as u64) as usize]
                })
                .collect()
        }
        PlacementPolicy::RackAware => {
            let mut rack_order: Vec<usize> = (0..racks.racks()).collect();
            shuffle(&mut rack_order, &mut rng);
            // Largest racks first — greedy largest-first provably fills the
            // stripe with the minimum number of racks; the stable sort keeps
            // the shuffled order as the tie-break among equal-sized racks
            // (uniform maps therefore stay fully randomised).
            rack_order.sort_by_key(|&rack| core::cmp::Reverse(racks.rack_disks(rack).len()));
            let mut placement = Vec::with_capacity(width);
            for rack in rack_order {
                if placement.len() == width {
                    break;
                }
                let mut disks = racks.rack_disks(rack).to_vec();
                shuffle(&mut disks, &mut rng);
                let take = disks.len().min(width - placement.len());
                placement.extend_from_slice(&disks[..take]);
            }
            placement
        }
    }
}

/// The deterministic stripe key of `(object, stripe)`: FNV-1a over the
/// object name, mixed with the stripe index. Stable across runs and
/// platforms, so persisted and re-derived placements agree.
pub fn object_stripe_key(object: &str, stripe: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in object.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^ mix64(stripe)
}

/// SplitMix64: a tiny, well-mixed deterministic generator. Placement needs
/// reproducibility and spread, not cryptographic quality, and an internal
/// generator keeps this crate dependency-free.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }

    /// Uniform-ish value in `0..n` (`n > 0`). The modulo bias is below
    /// `n / 2^64`, far beneath anything placement statistics can observe.
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next() % n
    }
}

/// The SplitMix64 finalizer, also used to mix stripe keys.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fisher–Yates shuffle driven by the internal generator.
fn shuffle<T>(items: &mut [T], rng: &mut SplitMix64) {
    for i in (1..items.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rack_map_construction_and_lookup() {
        let map = RackMap::new(vec![
            ("left".into(), vec![0, 2]),
            ("right".into(), vec![1, 3, 4]),
        ])
        .unwrap();
        assert_eq!(map.racks(), 2);
        assert_eq!(map.disk_count(), 5);
        assert_eq!(map.rack_name(0), "left");
        assert_eq!(map.rack_of(2), Some(0));
        assert_eq!(map.rack_of(4), Some(1));
        assert_eq!(map.rack_of(5), None);
        assert!(map.same_rack(1, 4));
        assert!(!map.same_rack(0, 1));
        assert!(!map.same_rack(0, 99));
        assert!(map.is_rack_disjoint(&[0, 1]));
        assert!(!map.is_rack_disjoint(&[1, 3]));
        assert!(!map.is_rack_disjoint(&[0, 99]));
    }

    #[test]
    fn rack_map_rejects_bad_groups() {
        assert_eq!(RackMap::new(vec![]), Err(PlacementError::NoRacks));
        assert!(matches!(
            RackMap::new(vec![("a".into(), vec![])]),
            Err(PlacementError::EmptyRack { .. })
        ));
        assert_eq!(
            RackMap::new(vec![("a".into(), vec![0, 1]), ("b".into(), vec![1])]),
            Err(PlacementError::DuplicateDisk { disk: 1 })
        );
        // {0, 2} is not a prefix: disk 1 is owned by nobody.
        assert!(matches!(
            RackMap::new(vec![("a".into(), vec![0, 2])]),
            Err(PlacementError::NonContiguousDisks { missing: 1, .. })
        ));
    }

    #[test]
    fn uniform_and_per_disk_builders() {
        let map = RackMap::uniform(3, 4);
        assert_eq!(map.racks(), 3);
        assert_eq!(map.disk_count(), 12);
        assert_eq!(map.rack_disks(1), &[4, 5, 6, 7]);
        assert_eq!(map.rack_name(2), "rack-02");

        let solo = RackMap::per_disk(5);
        assert_eq!(solo.racks(), 5);
        assert!(!solo.same_rack(0, 1), "per-disk racks never share");
    }

    #[test]
    fn policy_names_round_trip() {
        for policy in [
            PlacementPolicy::Identity,
            PlacementPolicy::RackDisjoint,
            PlacementPolicy::RackAware,
        ] {
            assert_eq!(policy.to_string().parse::<PlacementPolicy>(), Ok(policy));
        }
        assert!(matches!(
            "nope".parse::<PlacementPolicy>(),
            Err(PlacementError::UnknownPolicy { .. })
        ));
    }

    #[test]
    fn width_validation_is_typed_not_a_panic() {
        let racks = RackMap::uniform(4, 2);
        assert_eq!(
            PlacementPolicy::RackDisjoint.validate_width(&racks, 5),
            Err(PlacementError::WidthExceedsRacks { width: 5, racks: 4 })
        );
        assert_eq!(
            PlacementPolicy::RackAware.validate_width(&racks, 9),
            Err(PlacementError::WidthExceedsDisks { width: 9, disks: 8 })
        );
        assert_eq!(
            PlacementPolicy::Identity.validate_width(&racks, 6),
            Err(PlacementError::IdentityPoolMismatch { width: 6, disks: 8 })
        );
        // Width 8 on 4 racks × 2 disks: too wide for disjoint, fine for
        // rack-aware, exact for identity.
        assert!(matches!(
            PlacementMap::new(racks.clone(), PlacementPolicy::RackDisjoint, 8, 1),
            Err(PlacementError::WidthExceedsRacks { .. })
        ));
        assert!(PlacementMap::new(racks.clone(), PlacementPolicy::RackAware, 8, 1).is_ok());
        assert!(PlacementMap::new(racks, PlacementPolicy::Identity, 8, 1).is_ok());
    }

    #[test]
    fn placement_is_deterministic() {
        let map =
            PlacementMap::new(RackMap::uniform(6, 3), PlacementPolicy::RackDisjoint, 6, 7).unwrap();
        let again =
            PlacementMap::new(RackMap::uniform(6, 3), PlacementPolicy::RackDisjoint, 6, 7).unwrap();
        for key in 0..50 {
            assert_eq!(map.disks_for(key), again.disks_for(key));
        }
        assert_eq!(
            map.disks_for_object_stripe("obj", 3),
            again.disks_for_object_stripe("obj", 3)
        );
        // Different seeds diverge somewhere.
        let other =
            PlacementMap::new(RackMap::uniform(6, 3), PlacementPolicy::RackDisjoint, 6, 8).unwrap();
        assert!((0..50).any(|key| map.disks_for(key) != other.disks_for(key)));
    }

    #[test]
    fn rack_disjoint_spreads_and_rack_aware_groups() {
        let racks = RackMap::uniform(7, 2);
        let disjoint =
            PlacementMap::new(racks.clone(), PlacementPolicy::RackDisjoint, 6, 11).unwrap();
        let aware = PlacementMap::new(racks.clone(), PlacementPolicy::RackAware, 6, 11).unwrap();
        for key in 0..200 {
            let d = disjoint.disks_for(key);
            assert!(racks.is_rack_disjoint(&d), "{d:?}");
            let a = aware.disks_for(key);
            let mut used: Vec<usize> = a.iter().map(|&x| racks.rack_of(x).unwrap()).collect();
            used.sort_unstable();
            used.dedup();
            // Grouped: 6 shards over 2-disk racks use exactly 3 racks.
            assert_eq!(used.len(), 3, "{a:?}");
        }
    }

    #[test]
    fn rack_aware_uses_minimal_racks_on_non_uniform_maps() {
        // One 4-disk rack plus a solo disk: a width-4 stripe must fit in
        // the big rack alone, never spill onto the solo rack.
        let racks = RackMap::new(vec![
            ("big".into(), vec![0, 1, 2, 3]),
            ("solo".into(), vec![4]),
        ])
        .unwrap();
        let map = PlacementMap::new(racks.clone(), PlacementPolicy::RackAware, 4, 3).unwrap();
        for key in 0..100 {
            let disks = map.disks_for(key);
            let mut used: Vec<usize> = disks.iter().map(|&d| racks.rack_of(d).unwrap()).collect();
            used.sort_unstable();
            used.dedup();
            assert_eq!(used, vec![0], "key {key}: {disks:?}");
        }
        // Width 5 needs both racks.
        let map = PlacementMap::new(racks.clone(), PlacementPolicy::RackAware, 5, 3).unwrap();
        assert_eq!(map.disks_for(9).len(), 5);
    }

    #[test]
    fn identity_is_the_fixed_layout() {
        let map =
            PlacementMap::new(RackMap::per_disk(6), PlacementPolicy::Identity, 6, 99).unwrap();
        for key in 0..10 {
            assert_eq!(map.disks_for(key), vec![0, 1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn placements_use_the_whole_pool_over_time() {
        let map = PlacementMap::new(RackMap::uniform(10, 3), PlacementPolicy::RackDisjoint, 6, 5)
            .unwrap();
        let mut seen = [false; 30];
        for key in 0..500 {
            for d in map.disks_for(key) {
                seen[d] = true;
            }
        }
        assert!(
            seen.iter().filter(|&&s| s).count() >= 29,
            "placement should spread across the pool"
        );
    }

    #[test]
    fn object_stripe_keys_differ() {
        // Distinct objects and stripes produce distinct keys (collisions
        // are possible in principle, but not among these).
        let mut keys = std::collections::HashSet::new();
        for object in ["a", "b", "obj-1", "obj-2"] {
            for stripe in 0..100 {
                assert!(keys.insert(object_stripe_key(object, stripe)));
            }
        }
    }
}
