//! Property tests: every placement policy yields valid, in-bounds,
//! policy-conformant disk sets for every feasible geometry and seed.

use proptest::prelude::*;

use pbrs_placement::{PlacementMap, PlacementPolicy, RackMap};

/// Checks the invariants every placement shares: right width, in-bounds
/// disks, no disk used twice.
fn assert_well_formed(map: &RackMap, disks: &[usize], width: usize) -> Result<(), TestCaseError> {
    prop_assert_eq!(disks.len(), width);
    prop_assert!(disks.iter().all(|&d| d < map.disk_count()));
    let mut unique = disks.to_vec();
    unique.sort_unstable();
    unique.dedup();
    prop_assert_eq!(unique.len(), width);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rack_disjoint_placements_conform(
        racks in 1usize..12,
        per in 1usize..5,
        width_pick in any::<u64>(),
        seed in any::<u64>(),
        key in any::<u64>(),
    ) {
        // Any feasible width: 1..=racks.
        let width = 1 + (width_pick as usize) % racks;
        let map = RackMap::uniform(racks, per);
        let placement =
            PlacementMap::new(map.clone(), PlacementPolicy::RackDisjoint, width, seed).unwrap();
        let disks = placement.disks_for(key);
        assert_well_formed(&map, &disks, width)?;
        // The policy's defining property: all racks distinct.
        prop_assert!(map.is_rack_disjoint(&disks));
    }

    #[test]
    fn rack_aware_placements_conform(
        racks in 1usize..12,
        per in 1usize..5,
        width_pick in any::<u64>(),
        seed in any::<u64>(),
        key in any::<u64>(),
    ) {
        // Any feasible width: 1..=pool.
        let map = RackMap::uniform(racks, per);
        let width = 1 + (width_pick as usize) % map.disk_count();
        let placement =
            PlacementMap::new(map.clone(), PlacementPolicy::RackAware, width, seed).unwrap();
        let disks = placement.disks_for(key);
        assert_well_formed(&map, &disks, width)?;
        // Grouped: uses exactly the minimum rack count a uniform map allows.
        let mut used: Vec<usize> = disks.iter().map(|&d| map.rack_of(d).unwrap()).collect();
        used.sort_unstable();
        used.dedup();
        prop_assert_eq!(used.len(), width.div_ceil(per));
    }

    #[test]
    fn identity_placements_are_fixed(
        pool in 1usize..40,
        seed in any::<u64>(),
        key in any::<u64>(),
    ) {
        let map = RackMap::per_disk(pool);
        let placement = PlacementMap::new(map, PlacementPolicy::Identity, pool, seed).unwrap();
        prop_assert_eq!(placement.disks_for(key), (0..pool).collect::<Vec<_>>());
    }

    #[test]
    fn infeasible_widths_are_typed_errors(
        racks in 1usize..8,
        per in 1usize..4,
        seed in any::<u64>(),
    ) {
        let map = RackMap::uniform(racks, per);
        // One wider than the rack count: rack-disjoint must refuse.
        prop_assert!(
            PlacementMap::new(map.clone(), PlacementPolicy::RackDisjoint, racks + 1, seed)
                .is_err()
        );
        // One wider than the pool: everything must refuse.
        let over = map.disk_count() + 1;
        prop_assert!(
            PlacementMap::new(map.clone(), PlacementPolicy::RackAware, over, seed).is_err()
        );
        prop_assert!(PlacementMap::new(map, PlacementPolicy::Identity, over, seed).is_err());
    }

    #[test]
    fn placement_is_a_pure_function_of_seed_and_key(
        racks in 1usize..12,
        per in 1usize..5,
        width_pick in any::<u64>(),
        seed in any::<u64>(),
        key in any::<u64>(),
    ) {
        let width = 1 + (width_pick as usize) % racks;
        let a = PlacementMap::new(
            RackMap::uniform(racks, per), PlacementPolicy::RackDisjoint, width, seed,
        ).unwrap();
        let b = PlacementMap::new(
            RackMap::uniform(racks, per), PlacementPolicy::RackDisjoint, width, seed,
        ).unwrap();
        prop_assert_eq!(a.disks_for(key), b.disks_for(key));
    }
}
