//! Property-based tests of the warehouse-cluster simulator: determinism,
//! accounting invariants and the RS-vs-Piggybacked comparison under random
//! small configurations.

use pbrs_cluster::config::{CodeChoice, SimConfig};
use pbrs_cluster::sim::paired_rs_vs_piggybacked;
use pbrs_cluster::Simulator;
use proptest::prelude::*;

/// A small random-but-valid configuration.
fn small_config(seed: u64, racks: usize, events_per_day: f64, days: usize) -> SimConfig {
    let mut config = SimConfig::small_test();
    config.racks = racks;
    config.machines_per_rack = 8;
    config.unavailability.machines = config.machines();
    config.unavailability.base_events_per_day = events_per_day;
    config.mean_rs_blocks_per_machine = 300.0;
    config.sampled_stripes = 200;
    config.days = days;
    config.seed = seed;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The simulator is a pure function of its configuration.
    #[test]
    fn runs_are_deterministic(
        seed in any::<u64>(),
        racks in 14usize..30,
        events in 2.0f64..20.0,
    ) {
        let config = small_config(seed, racks, events, 2);
        let a = Simulator::new(config.clone()).run();
        let b = Simulator::new(config).run();
        prop_assert_eq!(a, b);
    }

    /// Per-day accounting invariants hold for every simulated day: traffic
    /// only occurs when blocks are reconstructed, bytes per block stay within
    /// the bounds implied by the code and the block-size model, and the
    /// flagged count never exceeds the raw event count upper bound.
    #[test]
    fn per_day_accounting_is_bounded(
        seed in any::<u64>(),
        racks in 14usize..30,
        events in 2.0f64..25.0,
        days in 2usize..5,
    ) {
        let config = small_config(seed, racks, events, days);
        let block = config.block_size_bytes as f64;
        let report = Simulator::new(config).run();
        prop_assert_eq!(report.days.len(), days);
        for day in &report.days {
            if day.blocks_reconstructed == 0 {
                prop_assert_eq!(day.cross_rack_bytes, 0);
                continue;
            }
            let per_block = day.cross_rack_bytes as f64 / day.blocks_reconstructed as f64;
            // RS(10,4): at most 10 full blocks, at least 10 minimal tail blocks.
            prop_assert!(per_block <= 10.0 * block + 1.0);
            prop_assert!(per_block > 0.0);
            prop_assert_eq!(day.disk_bytes_read, day.cross_rack_bytes);
        }
        // The census never records more degraded observations than
        // censuses x sampled stripes.
        prop_assert!(report.degradation.total() <= report.censuses * 200);
    }

    /// On the same failure trace the Piggybacked-RS run never moves more
    /// bytes per reconstructed block than the RS run, and both flag the same
    /// machines.
    #[test]
    fn piggybacked_never_worse_per_block(
        seed in any::<u64>(),
        events in 4.0f64..20.0,
    ) {
        let config = small_config(seed, 20, events, 3);
        let (rs, pb) = paired_rs_vs_piggybacked(config);
        let rs_flagged: u64 = rs.days.iter().map(|d| d.machines_flagged).sum();
        let pb_flagged: u64 = pb.days.iter().map(|d| d.machines_flagged).sum();
        prop_assert_eq!(rs_flagged, pb_flagged);
        if rs.total_blocks_reconstructed() > 0 && pb.total_blocks_reconstructed() > 0 {
            let rs_per_block =
                rs.total_cross_rack_bytes() as f64 / rs.total_blocks_reconstructed() as f64;
            let pb_per_block =
                pb.total_cross_rack_bytes() as f64 / pb.total_blocks_reconstructed() as f64;
            prop_assert!(pb_per_block <= rs_per_block * 1.001);
        }
    }

    /// Replication and LRC configurations also run to completion with sane
    /// accounting (no panics, traffic consistent with their repair costs).
    #[test]
    fn alternative_codes_simulate_cleanly(
        seed in any::<u64>(),
        use_lrc in any::<bool>(),
    ) {
        let mut config = small_config(seed, 20, 8.0, 2);
        config.code = if use_lrc {
            CodeChoice::Lrc { k: 10, l: 2, g: 4 }
        } else {
            CodeChoice::Replication { copies: 3 }
        };
        let report = Simulator::new(config.clone()).run();
        let expected_max_per_block = if use_lrc { 10.0 } else { 1.0 };
        if report.total_blocks_reconstructed() > 0 {
            let per_block = report.total_cross_rack_bytes() as f64
                / report.total_blocks_reconstructed() as f64;
            prop_assert!(per_block <= expected_max_per_block * config.block_size_bytes as f64 + 1.0);
        }
        prop_assert!(report.average_blocks_per_repair <= expected_max_per_block + 1e-9);
    }
}
