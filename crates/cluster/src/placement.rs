//! Rack-disjoint block placement.
//!
//! "The 14 blocks belonging to a particular stripe are placed on 14
//! different (randomly chosen) machines. In order to secure the data against
//! rack-failures, these machines are chosen from different racks." (§2.1)
//!
//! The placement policy here reproduces exactly that: every block of a
//! stripe goes to a distinct, randomly chosen rack, and to a random machine
//! within that rack. Because of this policy, every helper block read during
//! a recovery is on a different rack from the rebuilding node, so all
//! recovery traffic crosses the TOR switches.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::topology::{MachineId, Topology};

/// The rack-disjoint placement policy.
#[derive(Debug, Clone)]
pub struct PlacementPolicy {
    topology: Topology,
}

impl PlacementPolicy {
    /// Creates the policy for a topology.
    pub fn new(topology: Topology) -> Self {
        PlacementPolicy { topology }
    }

    /// The topology this policy places onto.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Places the `width` blocks of one stripe on `width` machines in
    /// `width` distinct racks.
    ///
    /// # Panics
    ///
    /// Panics if `width` exceeds the number of racks (validated by
    /// [`crate::config::SimConfig::validate`]).
    pub fn place_stripe<R: Rng + ?Sized>(&self, rng: &mut R, width: usize) -> Vec<MachineId> {
        assert!(
            width <= self.topology.racks(),
            "stripe width {} exceeds rack count {}",
            width,
            self.topology.racks()
        );
        let mut racks: Vec<usize> = (0..self.topology.racks()).collect();
        racks.shuffle(rng);
        racks
            .into_iter()
            .take(width)
            .map(|rack| {
                let offset = rng.random_range(0..self.topology.machines_per_rack());
                MachineId(rack * self.topology.machines_per_rack() + offset)
            })
            .collect()
    }

    /// Checks that a placement is rack-disjoint (used by tests and debug
    /// assertions).
    pub fn is_rack_disjoint(&self, placement: &[MachineId]) -> bool {
        let mut racks: Vec<usize> = placement
            .iter()
            .map(|&m| self.topology.rack_of(m).0)
            .collect();
        racks.sort_unstable();
        racks.windows(2).all(|w| w[0] != w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn placements_are_rack_disjoint_and_in_range() {
        let policy = PlacementPolicy::new(Topology::new(20, 10));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let placement = policy.place_stripe(&mut rng, 14);
            assert_eq!(placement.len(), 14);
            assert!(policy.is_rack_disjoint(&placement));
            assert!(placement.iter().all(|m| m.0 < 200));
            // Distinct machines follow from distinct racks.
            let mut ids: Vec<usize> = placement.iter().map(|m| m.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 14);
        }
    }

    #[test]
    fn placement_uses_many_racks_over_time() {
        let policy = PlacementPolicy::new(Topology::new(30, 5));
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 30];
        for _ in 0..100 {
            for m in policy.place_stripe(&mut rng, 14) {
                seen[policy.topology().rack_of(m).0] = true;
            }
        }
        assert!(
            seen.iter().filter(|&&s| s).count() >= 29,
            "placement should spread across racks"
        );
    }

    #[test]
    fn non_disjoint_placement_detected() {
        let policy = PlacementPolicy::new(Topology::new(4, 4));
        assert!(!policy.is_rack_disjoint(&[MachineId(0), MachineId(1)]));
        assert!(policy.is_rack_disjoint(&[MachineId(0), MachineId(5)]));
    }

    #[test]
    #[should_panic(expected = "exceeds rack count")]
    fn too_wide_stripe_panics() {
        let policy = PlacementPolicy::new(Topology::new(4, 4));
        let mut rng = StdRng::seed_from_u64(3);
        policy.place_stripe(&mut rng, 5);
    }
}
