//! Rack-disjoint block placement over the simulated topology.
//!
//! "The 14 blocks belonging to a particular stripe are placed on 14
//! different (randomly chosen) machines. In order to secure the data against
//! rack-failures, these machines are chosen from different racks." (§2.1)
//!
//! The placement *model* lives in the shared `pbrs-placement` crate — the
//! same [`RackMap`] / policy machinery the block store places real chunks
//! with — and this module is only the adapter binding it to the simulator's
//! [`Topology`] and [`MachineId`]s. Because of the rack-disjoint policy,
//! every helper block read during a recovery is on a different rack from
//! the rebuilding node, so all recovery traffic crosses the TOR switches.

use rand::Rng;

use pbrs_placement::{place_stripe, PlacementPolicy as Policy};
pub use pbrs_placement::{PlacementError, RackMap};

use crate::topology::{MachineId, Topology};

/// The rack-disjoint placement policy for a simulated topology.
#[derive(Debug, Clone)]
pub struct PlacementPolicy {
    topology: Topology,
    racks: RackMap,
}

impl PlacementPolicy {
    /// Creates the policy for a topology.
    pub fn new(topology: Topology) -> Self {
        let racks = RackMap::uniform(topology.racks(), topology.machines_per_rack());
        PlacementPolicy { topology, racks }
    }

    /// The topology this policy places onto.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The shared rack map (machine `i` is "disk" `i` of the placement
    /// model).
    pub fn rack_map(&self) -> &RackMap {
        &self.racks
    }

    /// Places the `width` blocks of one stripe on `width` machines in
    /// `width` distinct racks.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::WidthExceedsRacks`] when `width` exceeds
    /// the number of racks (also surfaced up front by
    /// [`crate::config::SimConfig::validate`]).
    pub fn place_stripe<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        width: usize,
    ) -> Result<Vec<MachineId>, PlacementError> {
        let machines = place_stripe(&self.racks, Policy::RackDisjoint, width, rng.random(), 0)?;
        Ok(machines.into_iter().map(MachineId).collect())
    }

    /// Checks that a placement is rack-disjoint (used by tests and debug
    /// assertions).
    pub fn is_rack_disjoint(&self, placement: &[MachineId]) -> bool {
        let disks: Vec<usize> = placement.iter().map(|&m| m.0).collect();
        self.racks.is_rack_disjoint(&disks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn placements_are_rack_disjoint_and_in_range() {
        let policy = PlacementPolicy::new(Topology::new(20, 10));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let placement = policy.place_stripe(&mut rng, 14).unwrap();
            assert_eq!(placement.len(), 14);
            assert!(policy.is_rack_disjoint(&placement));
            assert!(placement.iter().all(|m| m.0 < 200));
            // Distinct machines follow from distinct racks.
            let mut ids: Vec<usize> = placement.iter().map(|m| m.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 14);
        }
    }

    #[test]
    fn placement_uses_many_racks_over_time() {
        let policy = PlacementPolicy::new(Topology::new(30, 5));
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 30];
        for _ in 0..100 {
            for m in policy.place_stripe(&mut rng, 14).unwrap() {
                seen[policy.topology().rack_of(m).0] = true;
            }
        }
        assert!(
            seen.iter().filter(|&&s| s).count() >= 29,
            "placement should spread across racks"
        );
    }

    #[test]
    fn non_disjoint_placement_detected() {
        let policy = PlacementPolicy::new(Topology::new(4, 4));
        assert!(!policy.is_rack_disjoint(&[MachineId(0), MachineId(1)]));
        assert!(policy.is_rack_disjoint(&[MachineId(0), MachineId(5)]));
    }

    #[test]
    fn too_wide_stripe_is_a_typed_error_not_a_panic() {
        let policy = PlacementPolicy::new(Topology::new(4, 4));
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            policy.place_stripe(&mut rng, 5),
            Err(PlacementError::WidthExceedsRacks { width: 5, racks: 4 })
        );
    }
}
