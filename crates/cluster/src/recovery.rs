//! The HDFS-RAID-style recovery pipeline.
//!
//! When a machine has been unavailable for longer than the 15-minute
//! detection timeout, the blocks it stores are queued for reconstruction.
//! A bounded pool of recovery slots works through the queue; each task
//! rebuilds a batch of blocks by downloading helper data according to the
//! configured code's repair plan, at a bandwidth-bound rate. If the machine
//! returns before its queue drains, the remaining work is cancelled (the
//! blocks were never lost, only unavailable). This matches the behaviour the
//! paper measures: the recovery traffic is driven by how many blocks get
//! reconstructed while machines are away, not by the raw number of blocks on
//! failed machines.

use std::collections::VecDeque;

use rand::Rng;

use pbrs_core::registry;
use pbrs_erasure::{CodeError, CodeSpec, ErasureCode};
use pbrs_trace::distributions;

use crate::network::TransferModel;
use crate::topology::MachineId;

/// Per-stripe-position repair cost, precomputed from the configured code's
/// single-failure repair plans so the hot path never re-plans.
#[derive(Debug, Clone)]
pub struct RepairCostTable {
    /// Human-readable code name.
    pub code_name: String,
    /// Shards per stripe (`k + r` for MDS codes).
    pub stripe_width: usize,
    /// For every stripe position, the fraction of a whole block that must be
    /// read from each helper, summed over helpers (i.e. blocks-worth of
    /// helper data per repaired block).
    pub blocks_downloaded: Vec<f64>,
    /// For every stripe position, the number of helpers contacted.
    pub helpers: Vec<usize>,
}

impl RepairCostTable {
    /// Builds the table by asking `code` for a single-failure repair plan of
    /// every stripe position.
    ///
    /// # Panics
    ///
    /// Panics if the code cannot produce a single-failure plan (impossible
    /// for valid codes).
    pub fn for_code(code: &dyn ErasureCode) -> Self {
        let n = code.params().total_shards();
        let mut blocks_downloaded = Vec::with_capacity(n);
        let mut helpers = Vec::with_capacity(n);
        for target in 0..n {
            let mut available = vec![true; n];
            available[target] = false;
            let plan = code
                .repair_plan(target, &available)
                // pbrs-lint: allow(panic-hygiene) -- every Code guarantees a plan for a single failure
                .expect("single-failure repair plan must exist");
            blocks_downloaded.push(plan.total_fraction());
            helpers.push(plan.helper_count());
        }
        RepairCostTable {
            code_name: code.name(),
            stripe_width: n,
            blocks_downloaded,
            helpers,
        }
    }

    /// Builds the table for the code a [`CodeSpec`] names, through the
    /// unified registry — the uniform entry point the simulator and the
    /// experiment binaries share.
    ///
    /// # Errors
    ///
    /// Propagates construction errors for invalid specs.
    pub fn for_spec(spec: &CodeSpec) -> Result<Self, CodeError> {
        Ok(Self::for_code(registry::build(spec)?.as_ref()))
    }

    /// Average helper blocks downloaded per repaired block, over all stripe
    /// positions.
    pub fn average_blocks_downloaded(&self) -> f64 {
        self.blocks_downloaded.iter().sum::<f64>() / self.stripe_width as f64
    }
}

/// Work queued for one flagged machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingRecovery {
    machine: MachineId,
    incarnation: u64,
    blocks_remaining: u64,
}

/// A dispatched recovery task (a batch of block reconstructions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryTask {
    /// The machine whose blocks are being rebuilt.
    pub machine: MachineId,
    /// Blocks rebuilt by this task.
    pub blocks: u64,
    /// Helper bytes read and transferred across racks.
    pub cross_rack_bytes: u64,
    /// Task duration in minutes.
    pub duration_minutes: f64,
}

/// Block-size model: full 256 MB blocks plus a fraction of smaller tail
/// blocks (files do not align to the block size).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockSizeModel {
    /// Nominal block size in bytes.
    pub block_size_bytes: u64,
    /// Fraction of blocks that are partial tail blocks.
    pub tail_fraction: f64,
    /// Mean tail-block size as a fraction of the full block size.
    pub tail_mean_fraction: f64,
}

impl BlockSizeModel {
    /// Samples the size of one recovered block.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if distributions::bernoulli(rng, self.tail_fraction) {
            // Tail blocks are uniform in (0, 2 * mean_fraction] of the full
            // size, capped at the full size.
            let hi = (2.0 * self.tail_mean_fraction).min(1.0);
            let frac = rng.random_range(f64::MIN_POSITIVE..hi);
            ((self.block_size_bytes as f64) * frac) as u64
        } else {
            self.block_size_bytes
        }
    }

    /// Expected recovered-block size.
    pub fn mean_bytes(&self) -> f64 {
        let full = self.block_size_bytes as f64;
        (1.0 - self.tail_fraction) * full + self.tail_fraction * self.tail_mean_fraction * full
    }
}

/// The recovery scheduler: a FIFO of flagged machines' blocks served by a
/// bounded number of concurrent tasks.
#[derive(Debug)]
pub struct RecoveryManager {
    cost_table: RepairCostTable,
    block_sizes: BlockSizeModel,
    transfer: TransferModel,
    max_slots: usize,
    blocks_per_task: u64,
    pending: VecDeque<PendingRecovery>,
    active_tasks: usize,
    /// Blocks whose recovery was cancelled because the machine returned.
    cancelled_blocks: u64,
    /// Blocks ever enqueued.
    enqueued_blocks: u64,
}

impl RecoveryManager {
    /// Creates a manager.
    pub fn new(
        cost_table: RepairCostTable,
        block_sizes: BlockSizeModel,
        transfer: TransferModel,
        max_slots: usize,
        blocks_per_task: u64,
    ) -> Self {
        RecoveryManager {
            cost_table,
            block_sizes,
            transfer,
            max_slots,
            blocks_per_task,
            pending: VecDeque::new(),
            active_tasks: 0,
            cancelled_blocks: 0,
            enqueued_blocks: 0,
        }
    }

    /// The repair-cost table in use.
    pub fn cost_table(&self) -> &RepairCostTable {
        &self.cost_table
    }

    /// Queues recovery of `blocks` blocks stored on `machine`.
    pub fn enqueue(&mut self, machine: MachineId, incarnation: u64, blocks: u64) {
        if blocks == 0 {
            return;
        }
        self.enqueued_blocks += blocks;
        self.pending.push_back(PendingRecovery {
            machine,
            incarnation,
            blocks_remaining: blocks,
        });
    }

    /// Removes queued (not yet dispatched) work for a machine that returned.
    pub fn cancel_machine(&mut self, machine: MachineId, incarnation: u64) {
        let mut cancelled = 0;
        self.pending.retain(|p| {
            if p.machine == machine && p.incarnation == incarnation {
                cancelled += p.blocks_remaining;
                false
            } else {
                true
            }
        });
        self.cancelled_blocks += cancelled;
    }

    /// Marks one task as finished, freeing its slot.
    pub fn task_finished(&mut self) {
        debug_assert!(self.active_tasks > 0, "no task to finish");
        self.active_tasks = self.active_tasks.saturating_sub(1);
    }

    /// Dispatches as many tasks as free slots and queued work allow,
    /// returning the newly started tasks. `is_still_down` lets the manager
    /// drop stale queue entries for machines that already returned.
    pub fn dispatch<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        mut is_still_down: impl FnMut(MachineId, u64) -> bool,
    ) -> Vec<RecoveryTask> {
        let mut started = Vec::new();
        while self.active_tasks < self.max_slots {
            let Some(mut entry) = self.pending.pop_front() else {
                break;
            };
            if !is_still_down(entry.machine, entry.incarnation) {
                self.cancelled_blocks += entry.blocks_remaining;
                continue;
            }
            let batch = entry.blocks_remaining.min(self.blocks_per_task);
            entry.blocks_remaining -= batch;
            if entry.blocks_remaining > 0 {
                // Round-robin between flagged machines.
                self.pending.push_back(entry);
            }
            let task = self.build_task(rng, entry.machine, batch);
            self.active_tasks += 1;
            started.push(task);
        }
        started
    }

    fn build_task<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        machine: MachineId,
        blocks: u64,
    ) -> RecoveryTask {
        let mut bytes = 0u64;
        let mut seconds = 0.0;
        for _ in 0..blocks {
            let size = self.block_sizes.sample(rng);
            // The failed block occupies a uniformly random stripe position
            // (every block of a stripe is equally likely to be the one on the
            // failed machine).
            let position = rng.random_range(0..self.cost_table.stripe_width);
            let helper_bytes = (self.cost_table.blocks_downloaded[position] * size as f64) as u64;
            bytes += helper_bytes;
            seconds += self
                .transfer
                .recovery_seconds(helper_bytes, self.cost_table.helpers[position]);
        }
        RecoveryTask {
            machine,
            blocks,
            cross_rack_bytes: bytes,
            duration_minutes: seconds / 60.0,
        }
    }

    /// Number of currently running tasks.
    pub fn active_tasks(&self) -> usize {
        self.active_tasks
    }

    /// Blocks currently queued (not yet dispatched).
    pub fn queued_blocks(&self) -> u64 {
        self.pending.iter().map(|p| p.blocks_remaining).sum()
    }

    /// Blocks whose recovery was cancelled because their machine returned.
    pub fn cancelled_blocks(&self) -> u64 {
        self.cancelled_blocks
    }

    /// Blocks ever enqueued.
    pub fn enqueued_blocks(&self) -> u64 {
        self.enqueued_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbrs_core::PiggybackedRs;
    use pbrs_erasure::ReedSolomon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn manager(code: &dyn ErasureCode, slots: usize, per_task: u64) -> RecoveryManager {
        RecoveryManager::new(
            RepairCostTable::for_code(code),
            BlockSizeModel {
                block_size_bytes: 64 * 1024 * 1024,
                tail_fraction: 0.0,
                tail_mean_fraction: 0.5,
            },
            TransferModel::cluster_default(40.0 * 1024.0 * 1024.0),
            slots,
            per_task,
        )
    }

    #[test]
    fn cost_table_for_rs_and_piggybacked() {
        let rs = ReedSolomon::new(10, 4).unwrap();
        let pb = PiggybackedRs::new(10, 4).unwrap();
        let rs_table = RepairCostTable::for_code(&rs);
        let pb_table = RepairCostTable::for_code(&pb);
        assert_eq!(rs_table.stripe_width, 14);
        assert!(rs_table.blocks_downloaded.iter().all(|&b| b == 10.0));
        assert!((rs_table.average_blocks_downloaded() - 10.0).abs() < 1e-12);
        assert!((pb_table.average_blocks_downloaded() - 7.642857).abs() < 1e-3);
        assert_eq!(pb_table.helpers[0], 11);
        assert_eq!(pb_table.helpers[13], 10);
        assert_eq!(pb_table.code_name, "Piggybacked-RS(10, 4)");
    }

    #[test]
    fn cost_table_from_spec_matches_direct_construction() {
        let direct = RepairCostTable::for_code(&PiggybackedRs::new(10, 4).unwrap());
        let via_spec = RepairCostTable::for_spec(&"piggyback-10-4".parse().unwrap()).unwrap();
        assert_eq!(via_spec.code_name, direct.code_name);
        assert_eq!(via_spec.blocks_downloaded, direct.blocks_downloaded);
        assert_eq!(via_spec.helpers, direct.helpers);
        assert!(RepairCostTable::for_spec(&CodeSpec::ReedSolomon { k: 0, r: 1 }).is_err());
    }

    #[test]
    fn block_size_model_mean_and_range() {
        let model = BlockSizeModel {
            block_size_bytes: 100,
            tail_fraction: 0.5,
            tail_mean_fraction: 0.5,
        };
        assert_eq!(model.mean_bytes(), 75.0);
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<u64> = (0..20_000).map(|_| model.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| s <= 100));
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((mean - 75.0).abs() < 2.0, "{mean}");
    }

    #[test]
    fn dispatch_respects_slot_limit_and_batching() {
        let rs = ReedSolomon::new(10, 4).unwrap();
        let mut m = manager(&rs, 3, 10);
        let mut rng = StdRng::seed_from_u64(1);
        m.enqueue(MachineId(0), 1, 100);
        let tasks = m.dispatch(&mut rng, |_, _| true);
        assert_eq!(tasks.len(), 3, "only 3 slots");
        assert!(tasks.iter().all(|t| t.blocks == 10));
        assert_eq!(m.active_tasks(), 3);
        assert_eq!(m.queued_blocks(), 70);

        // Finishing a task frees a slot for the next batch.
        m.task_finished();
        let more = m.dispatch(&mut rng, |_, _| true);
        assert_eq!(more.len(), 1);
        assert_eq!(m.queued_blocks(), 60);
    }

    #[test]
    fn returned_machines_are_cancelled_at_dispatch() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let mut m = manager(&rs, 2, 5);
        let mut rng = StdRng::seed_from_u64(2);
        m.enqueue(MachineId(7), 1, 20);
        let tasks = m.dispatch(&mut rng, |_, _| false);
        assert!(tasks.is_empty());
        assert_eq!(m.cancelled_blocks(), 20);
        assert_eq!(m.queued_blocks(), 0);
    }

    #[test]
    fn explicit_cancellation_removes_queued_work() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let mut m = manager(&rs, 1, 5);
        m.enqueue(MachineId(1), 1, 10);
        m.enqueue(MachineId(2), 1, 10);
        m.cancel_machine(MachineId(1), 1);
        assert_eq!(m.cancelled_blocks(), 10);
        assert_eq!(m.queued_blocks(), 10);
        // Cancelling a different incarnation does nothing.
        m.cancel_machine(MachineId(2), 9);
        assert_eq!(m.queued_blocks(), 10);
        assert_eq!(m.enqueued_blocks(), 20);
    }

    #[test]
    fn task_costs_reflect_the_code() {
        let rs = ReedSolomon::new(10, 4).unwrap();
        let pb = PiggybackedRs::new(10, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut m_rs = manager(&rs, 1, 50);
        let mut m_pb = manager(&pb, 1, 50);
        m_rs.enqueue(MachineId(0), 1, 50);
        m_pb.enqueue(MachineId(0), 1, 50);
        let t_rs = m_rs.dispatch(&mut rng, |_, _| true).remove(0);
        let t_pb = m_pb.dispatch(&mut rng, |_, _| true).remove(0);
        // RS moves 10 blocks of helper data per block; the piggybacked code
        // moves ~7.6 on average, so both bytes and duration drop.
        assert!(t_pb.cross_rack_bytes < t_rs.cross_rack_bytes);
        assert!(t_pb.duration_minutes < t_rs.duration_minutes);
        let ratio = t_pb.cross_rack_bytes as f64 / t_rs.cross_rack_bytes as f64;
        assert!(ratio > 0.6 && ratio < 0.9, "{ratio}");
    }

    #[test]
    fn zero_block_enqueue_is_ignored() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let mut m = manager(&rs, 1, 5);
        m.enqueue(MachineId(0), 1, 0);
        assert_eq!(m.queued_blocks(), 0);
        assert_eq!(m.enqueued_blocks(), 0);
    }
}
