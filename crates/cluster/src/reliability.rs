//! A Markov MTTDL model backing the paper's reliability argument (§3.2).
//!
//! The paper argues qualitatively that because Piggybacked-RS repairs a
//! block faster than RS (it reads and transfers ~30 % less data, and
//! recovery is bandwidth-bound), the mean time to data loss (MTTDL) of the
//! system should be *higher*. This module quantifies that with the standard
//! birth–death Markov chain for a stripe: state `i` means `i` blocks of the
//! stripe are currently lost, block failures arrive at rate `(n − i)·λ`,
//! repairs complete at rate `μ_i`, and data loss is the absorbing state
//! `r + 1`.

/// Parameters of the per-stripe Markov model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MttdlModel {
    /// Total blocks per stripe (`k + r`).
    pub stripe_width: usize,
    /// Failures the code tolerates (`r` for MDS codes).
    pub fault_tolerance: usize,
    /// Per-block failure rate in events per hour (permanent losses, not
    /// transient unavailability).
    pub block_failure_rate_per_hour: f64,
    /// Time to repair a single failed block, in hours (bandwidth-bound:
    /// helper bytes / recovery bandwidth).
    pub single_repair_hours: f64,
    /// Time to repair one block when several are missing (full-stripe
    /// decode), in hours.
    pub degraded_repair_hours: f64,
}

impl MttdlModel {
    /// Mean time to data loss of a single stripe, in hours, starting from
    /// the all-healthy state.
    ///
    /// Solves the expected-absorption-time recurrence of the birth–death
    /// chain directly.
    ///
    /// # Panics
    ///
    /// Panics if rates are non-positive or the width/tolerance are
    /// inconsistent.
    pub fn stripe_mttdl_hours(&self) -> f64 {
        let n = self.stripe_width as f64;
        let r = self.fault_tolerance;
        assert!(
            self.stripe_width > self.fault_tolerance,
            "width must exceed tolerance"
        );
        assert!(
            self.block_failure_rate_per_hour > 0.0,
            "failure rate must be positive"
        );
        assert!(
            self.single_repair_hours > 0.0 && self.degraded_repair_hours > 0.0,
            "repair times must be positive"
        );
        // States 0..=r are transient; r+1 is absorbing. With failure rate
        // f_i = (n − i)·λ and repair rate m_i (0 for i = 0), the expected
        // absorption times satisfy
        //   (f_i + m_i) T_i − m_i T_{i−1} − f_i T_{i+1} = 1,   T_{r+1} = 0.
        // Setting d_i = T_i − T_{i+1} turns this into the numerically stable
        // forward recurrence d_0 = 1/f_0, d_i = (1 + m_i d_{i−1}) / f_i, and
        // T_0 = Σ d_i (all terms positive, no cancellation — a direct
        // Gaussian solve would lose to the ~(m/f)^r condition number).
        let lambda = self.block_failure_rate_per_hour;
        let mut total = 0.0f64;
        let mut d_prev = 0.0f64;
        for i in 0..=r {
            let f_i = (n - i as f64) * lambda;
            let m_i = if i == 0 {
                0.0
            } else if i == 1 {
                1.0 / self.single_repair_hours
            } else {
                1.0 / self.degraded_repair_hours
            };
            let d_i = (1.0 + m_i * d_prev) / f_i;
            total += d_i;
            d_prev = d_i;
        }
        total
    }

    /// MTTDL of a system storing `stripes` independent stripes, in hours
    /// (first loss anywhere, assuming independence).
    pub fn system_mttdl_hours(&self, stripes: u64) -> f64 {
        self.stripe_mttdl_hours() / stripes.max(1) as f64
    }

    /// Convenience: MTTDL in years.
    pub fn stripe_mttdl_years(&self) -> f64 {
        self.stripe_mttdl_hours() / (24.0 * 365.25)
    }
}

/// Builds the MTTDL model for a code given its single-failure repair volume.
///
/// * `stripe_width`, `fault_tolerance` — the code's parameters.
/// * `single_repair_bytes` — helper bytes read for a single-block repair.
/// * `degraded_repair_bytes` — helper bytes for a repair when several blocks
///   are missing (full-stripe decode).
/// * `repair_bandwidth_bytes_per_sec` — the bandwidth-bound repair rate.
/// * `block_mtbf_hours` — mean time between permanent losses of one block.
pub fn model_for_code(
    stripe_width: usize,
    fault_tolerance: usize,
    single_repair_bytes: f64,
    degraded_repair_bytes: f64,
    repair_bandwidth_bytes_per_sec: f64,
    block_mtbf_hours: f64,
) -> MttdlModel {
    MttdlModel {
        stripe_width,
        fault_tolerance,
        block_failure_rate_per_hour: 1.0 / block_mtbf_hours,
        single_repair_hours: single_repair_bytes / repair_bandwidth_bytes_per_sec / 3600.0,
        degraded_repair_hours: degraded_repair_bytes / repair_bandwidth_bytes_per_sec / 3600.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_model() -> MttdlModel {
        // (10, 4) stripe of 256MB blocks, 40 MB/s repair bandwidth, one
        // permanent block loss per ~4 years.
        model_for_code(
            14,
            4,
            10.0 * 256.0 * 1024.0 * 1024.0,
            10.0 * 256.0 * 1024.0 * 1024.0,
            40.0 * 1024.0 * 1024.0,
            4.0 * 365.25 * 24.0,
        )
    }

    #[test]
    fn mttdl_is_astronomically_large_for_four_parities() {
        let m = base_model();
        let years = m.stripe_mttdl_years();
        // Repair takes ~64s against a ~4-year MTBF; losing 5 blocks within
        // overlapping repair windows is essentially impossible.
        assert!(years > 1e12, "{years}");
        // System MTTDL scales down with the number of stripes but stays huge.
        let system = m.system_mttdl_hours(4_000_000) / (24.0 * 365.25);
        assert!(system > 1e5, "{system}");
    }

    #[test]
    fn faster_repair_improves_mttdl() {
        let slow = base_model();
        let fast = MttdlModel {
            single_repair_hours: slow.single_repair_hours * 0.7,
            ..slow
        };
        assert!(
            fast.stripe_mttdl_hours() > slow.stripe_mttdl_hours(),
            "cutting repair time must raise MTTDL"
        );
        // Only the single-failure repair rate changed, so the dominant term
        // of the MTTDL scales by roughly the inverse of the repair-time cut.
        let ratio = fast.stripe_mttdl_hours() / slow.stripe_mttdl_hours();
        assert!(ratio > 1.3, "{ratio}");
    }

    #[test]
    fn more_parities_mean_higher_mttdl() {
        let two = MttdlModel {
            stripe_width: 12,
            fault_tolerance: 2,
            ..base_model()
        };
        let four = base_model();
        assert!(four.stripe_mttdl_hours() > two.stripe_mttdl_hours() * 1e3);
    }

    #[test]
    fn higher_failure_rate_lowers_mttdl() {
        let base = base_model();
        let risky = MttdlModel {
            block_failure_rate_per_hour: base.block_failure_rate_per_hour * 10.0,
            ..base
        };
        assert!(risky.stripe_mttdl_hours() < base.stripe_mttdl_hours());
    }

    #[test]
    fn replication_is_far_less_durable_than_rs_at_same_storage() {
        // 3-replication: width 3, tolerance 2.
        let replication = MttdlModel {
            stripe_width: 3,
            fault_tolerance: 2,
            ..base_model()
        };
        let rs = base_model();
        assert!(rs.stripe_mttdl_hours() > replication.stripe_mttdl_hours());
    }

    #[test]
    #[should_panic(expected = "repair times must be positive")]
    fn invalid_repair_time_panics() {
        let mut m = base_model();
        m.single_repair_hours = 0.0;
        m.stripe_mttdl_hours();
    }
}
