//! A discrete-event simulator of the warehouse cluster studied in the paper.
//!
//! The paper's measurement study (its Figs. 3a/3b and §2.2 statistics) comes
//! from Facebook's production warehouse cluster: a few thousand machines in
//! racks behind oversubscribed top-of-rack (TOR) switches, storing >10 PB of
//! (10, 4) RS-coded HDFS blocks whose recovery traffic the authors measured.
//! Production traces are not available, so this crate rebuilds the machinery
//! those measurements came from:
//!
//! * [`topology`] — racks, machines, TOR/aggregation switches;
//! * [`config`] — cluster and workload parameters, with a
//!   [`config::SimConfig::facebook`] profile calibrated to the paper;
//! * [`failure`] — the machine-unavailability process (delegating to
//!   `pbrs-trace`);
//! * [`placement`] + [`stripes`] — rack-disjoint block placement and the
//!   sampled stripe census used for the §2.2 degradation statistics;
//! * [`recovery`] — the HDFS-RAID-style recovery pipeline: 15-minute
//!   detection, a bounded pool of recovery slots, cancellation when machines
//!   return, and per-block repair plans taken from the configured erasure
//!   code;
//! * [`network`] — cross-rack traffic accounting and the bandwidth-bound
//!   recovery-time model of §3.2;
//! * [`event`] — the discrete-event engine;
//! * [`metrics`] — per-day metrics and report types;
//! * [`reliability`] — the Markov MTTDL model backing the paper's
//!   reliability argument;
//! * [`sim`] — the [`sim::Simulator`] that ties everything together.
//!
//! # Example
//!
//! ```
//! use pbrs_cluster::config::{CodeChoice, SimConfig};
//! use pbrs_cluster::sim::Simulator;
//!
//! // A small cluster, one simulated week, RS(10,4) recovery.
//! let mut config = SimConfig::small_test();
//! config.days = 7;
//! config.code = CodeChoice::ReedSolomon { k: 10, r: 4 };
//! let report = Simulator::new(config).run();
//! assert_eq!(report.days.len(), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod event;
pub mod failure;
pub mod metrics;
pub mod network;
pub mod placement;
pub mod recovery;
pub mod reliability;
pub mod sim;
pub mod stripes;
pub mod topology;

pub use config::{CodeChoice, SimConfig};
pub use metrics::{ClusterReport, DayMetrics};
pub use sim::Simulator;
