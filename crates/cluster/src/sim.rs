//! The warehouse-cluster simulator.
//!
//! [`Simulator::run`] executes the discrete-event loop: machine outages
//! arrive from the calibrated unavailability process, outages longer than
//! the detection timeout enqueue the machine's RS-coded blocks for
//! reconstruction, a bounded pool of recovery slots works through the queue
//! at a bandwidth-bound rate using the configured code's repair plans, and
//! every completed reconstruction adds its helper bytes to that day's
//! cross-rack traffic. Periodic censuses of a sampled stripe population
//! produce the §2.2 degradation statistics.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::SimConfig;
use crate::event::{Event, EventQueue, SimTime};
use crate::failure::MachineFleet;
use crate::metrics::{ClusterReport, DayMetrics};
use crate::network::TransferModel;
use crate::placement::PlacementPolicy;
use crate::recovery::{BlockSizeModel, RecoveryManager, RepairCostTable};
use crate::stripes::StripeSample;
use crate::topology::{MachineId, Topology};

/// Minutes per simulated day.
const MINUTES_PER_DAY: f64 = 24.0 * 60.0;

/// The discrete-event warehouse-cluster simulator.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use [`Simulator::try_new`] to
    /// handle the error instead.
    pub fn new(config: SimConfig) -> Self {
        // pbrs-lint: allow(panic-hygiene) -- documented panicking convenience constructor; try_new is the fallible path
        Self::try_new(config).expect("invalid simulation configuration")
    }

    /// Creates a simulator, returning the configuration error if any.
    ///
    /// # Errors
    ///
    /// Returns the validation error from [`SimConfig::validate`].
    pub fn try_new(config: SimConfig) -> Result<Self, pbrs_erasure::CodeError> {
        config.validate()?;
        Ok(Simulator { config })
    }

    /// The configuration this simulator will run.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(self) -> ClusterReport {
        let config = self.config;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let horizon = config.days as f64 * MINUTES_PER_DAY;

        // Static cluster state.
        let topology = Topology::new(config.racks, config.machines_per_rack);
        let mut fleet = MachineFleet::new(
            &mut rng,
            topology.machines(),
            config.mean_rs_blocks_per_machine,
        );
        let policy = PlacementPolicy::new(topology);
        // pbrs-lint: allow(panic-hygiene) -- config.code was validated by try_new before reaching here
        let code = config.code.build().expect("configuration was validated");
        let cost_table = RepairCostTable::for_code(code.as_ref());
        let stripe_width = cost_table.stripe_width;
        let mut stripes =
            StripeSample::generate(&mut rng, &policy, config.sampled_stripes, stripe_width);
        let mut recovery = RecoveryManager::new(
            cost_table,
            BlockSizeModel {
                block_size_bytes: config.block_size_bytes,
                tail_fraction: config.tail_block_fraction,
                tail_mean_fraction: config.tail_block_mean_fraction,
            },
            TransferModel::cluster_default(config.recovery_bandwidth_bytes_per_sec),
            config.recovery_slots,
            config.blocks_per_recovery_task as u64,
        );

        // Metrics.
        let mut days: Vec<DayMetrics> = (0..config.days)
            .map(|day| DayMetrics {
                day,
                ..DayMetrics::default()
            })
            .collect();
        let mut cancelled_seen = 0u64;

        // Event bootstrap.
        let mut queue = EventQueue::new();
        for e in config.unavailability.generate(&mut rng, config.days) {
            queue.schedule(
                e.start_minute,
                Event::MachineDown {
                    machine: MachineId(e.machine),
                    until: e.start_minute + e.duration_minutes,
                },
            );
        }
        let census_interval = config.census_interval_hours * 60.0;
        if !stripes.is_empty() && census_interval > 0.0 {
            queue.schedule(census_interval, Event::StripeCensus);
        }
        for day in 0..config.days {
            queue.schedule(
                (day + 1) as f64 * MINUTES_PER_DAY - 1e-6,
                Event::DayEnd { day },
            );
        }

        // Main loop.
        while let Some((now, event)) = queue.pop() {
            if now >= horizon {
                break;
            }
            let day = Self::day_of(now, config.days);
            match event {
                Event::MachineDown { machine, until } => {
                    if let Some(incarnation) = fleet.mark_down(machine, now) {
                        queue.schedule_in(
                            config.detection_timeout_minutes,
                            Event::DetectFailure {
                                machine,
                                incarnation,
                            },
                        );
                        if until.is_finite() {
                            queue.schedule(
                                until.max(now),
                                Event::MachineUp {
                                    machine,
                                    incarnation,
                                },
                            );
                        }
                    }
                }
                Event::MachineUp {
                    machine,
                    incarnation,
                } => {
                    if fleet.mark_up(machine, incarnation) {
                        recovery.cancel_machine(machine, incarnation);
                        Self::sync_cancelled(&recovery, &mut cancelled_seen, &mut days[day]);
                    }
                }
                Event::DetectFailure {
                    machine,
                    incarnation,
                } => {
                    if fleet.is_down_with(machine, incarnation) {
                        days[day].machines_flagged += 1;
                        recovery.enqueue(machine, incarnation, fleet.rs_blocks(machine));
                        Self::dispatch(&mut recovery, &mut rng, &fleet, &mut queue);
                        Self::sync_cancelled(&recovery, &mut cancelled_seen, &mut days[day]);
                    }
                }
                Event::RecoveryTaskDone {
                    blocks,
                    cross_rack_bytes,
                    ..
                } => {
                    recovery.task_finished();
                    days[day].blocks_reconstructed += blocks;
                    days[day].cross_rack_bytes += cross_rack_bytes;
                    days[day].disk_bytes_read += cross_rack_bytes;
                    days[day].tasks_completed += 1;
                    Self::dispatch(&mut recovery, &mut rng, &fleet, &mut queue);
                    Self::sync_cancelled(&recovery, &mut cancelled_seen, &mut days[day]);
                }
                Event::StripeCensus => {
                    stripes.census(&fleet.down_mask_recent(now, config.census_heal_minutes));
                    if now + census_interval < horizon {
                        queue.schedule_in(census_interval, Event::StripeCensus);
                    }
                }
                Event::DayEnd { day } => {
                    days[day].machines_down_at_day_end = fleet.down_count() as u64;
                }
            }
        }

        let average_blocks_per_repair = recovery.cost_table().average_blocks_downloaded();
        ClusterReport {
            code_name: recovery.cost_table().code_name.clone(),
            days,
            degradation: *stripes.degradation(),
            censuses: stripes.censuses(),
            total_rs_blocks: fleet.total_rs_blocks(),
            average_blocks_per_repair,
        }
    }

    fn day_of(now: SimTime, days: usize) -> usize {
        ((now / MINUTES_PER_DAY) as usize).min(days.saturating_sub(1))
    }

    fn dispatch(
        recovery: &mut RecoveryManager,
        rng: &mut StdRng,
        fleet: &MachineFleet,
        queue: &mut EventQueue,
    ) {
        let tasks = recovery.dispatch(rng, |machine, incarnation| {
            fleet.is_down_with(machine, incarnation)
        });
        for task in tasks {
            queue.schedule_in(
                task.duration_minutes,
                Event::RecoveryTaskDone {
                    machine: task.machine,
                    blocks: task.blocks,
                    cross_rack_bytes: task.cross_rack_bytes,
                },
            );
        }
    }

    fn sync_cancelled(recovery: &RecoveryManager, seen: &mut u64, day: &mut DayMetrics) {
        let total = recovery.cancelled_blocks();
        day.blocks_cancelled += total - *seen;
        *seen = total;
    }
}

/// Runs the same configuration twice — once with the production RS code and
/// once with the paper's Piggybacked-RS code — using the same seed, so the
/// two runs see the identical failure trace. Returns `(rs_report,
/// piggybacked_report)`. This is the paired experiment behind the paper's
/// "> 50 TB/day of cross-rack traffic saved" estimate (E6).
pub fn paired_rs_vs_piggybacked(mut config: SimConfig) -> (ClusterReport, ClusterReport) {
    config.code = crate::config::CodeChoice::production_rs();
    let rs = Simulator::new(config.clone()).run();
    config.code = crate::config::CodeChoice::proposed_piggybacked();
    let pb = Simulator::new(config).run();
    (rs, pb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CodeChoice;

    #[test]
    fn small_run_produces_sane_metrics() {
        let config = SimConfig::small_test();
        let report = Simulator::new(config.clone()).run();
        assert_eq!(report.days.len(), config.days);
        assert_eq!(report.code_name, "RS(10, 4)");
        assert!((report.average_blocks_per_repair - 10.0).abs() < 1e-12);
        assert!(report.total_rs_blocks > 0);
        // Some machines get flagged and some blocks get reconstructed.
        let flagged: u64 = report.days.iter().map(|d| d.machines_flagged).sum();
        let blocks = report.total_blocks_reconstructed();
        assert!(flagged > 0, "{report:?}");
        assert!(blocks > 0, "{report:?}");
        // Bytes are consistent with ~10 helper blocks per reconstructed block
        // of at most the configured block size.
        let bytes = report.total_cross_rack_bytes();
        assert!(bytes > 0);
        assert!(bytes <= blocks * 10 * config.block_size_bytes);
        assert!(report.censuses > 0);
    }

    #[test]
    fn identical_seeds_give_identical_reports() {
        let config = SimConfig::small_test();
        let a = Simulator::new(config.clone()).run();
        let b = Simulator::new(config).run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut config = SimConfig::small_test();
        let a = Simulator::new(config.clone()).run();
        config.seed += 1;
        let b = Simulator::new(config).run();
        assert_ne!(a, b);
    }

    #[test]
    fn piggybacked_code_reduces_cross_rack_traffic_on_the_same_trace() {
        let mut config = SimConfig::small_test();
        config.days = 4;
        let (rs, pb) = paired_rs_vs_piggybacked(config);
        // Same failure process (same seed) -> same flagged machines.
        let rs_flagged: u64 = rs.days.iter().map(|d| d.machines_flagged).sum();
        let pb_flagged: u64 = pb.days.iter().map(|d| d.machines_flagged).sum();
        assert_eq!(rs_flagged, pb_flagged);
        // The piggybacked run moves meaningfully fewer bytes per block.
        let rs_per_block =
            rs.total_cross_rack_bytes() as f64 / rs.total_blocks_reconstructed().max(1) as f64;
        let pb_per_block =
            pb.total_cross_rack_bytes() as f64 / pb.total_blocks_reconstructed().max(1) as f64;
        assert!(
            pb_per_block < rs_per_block * 0.85,
            "rs {rs_per_block} pb {pb_per_block}"
        );
        assert!(pb.average_blocks_per_repair < rs.average_blocks_per_repair);
    }

    #[test]
    fn replication_recovers_with_one_block_per_block() {
        let mut config = SimConfig::small_test();
        config.code = CodeChoice::Replication { copies: 3 };
        let report = Simulator::new(config).run();
        assert!((report.average_blocks_per_repair - 1.0).abs() < 1e-12);
        if report.total_blocks_reconstructed() > 0 {
            let per_block =
                report.total_cross_rack_bytes() as f64 / report.total_blocks_reconstructed() as f64;
            // One helper block (possibly a tail block) per recovery.
            assert!(per_block <= 64.0 * 1024.0 * 1024.0 + 1.0);
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut config = SimConfig::small_test();
        config.days = 0;
        assert!(Simulator::try_new(config).is_err());
    }

    #[test]
    fn degradation_census_is_dominated_by_single_failures() {
        let mut config = SimConfig::small_test();
        config.days = 6;
        config.sampled_stripes = 2000;
        config.census_interval_hours = 2.0;
        let report = Simulator::new(config).run();
        let d = report.degradation;
        if d.total() > 50 {
            assert!(
                d.one_missing_pct() > 80.0,
                "single failures should dominate: {d:?}"
            );
            assert!(d.one_missing_pct() > d.two_missing_pct());
        }
    }
}
