//! Sampled stripes and the degradation census.
//!
//! The cluster stores tens of millions of RS-coded blocks; the simulator
//! keeps only aggregate per-machine block counts for traffic accounting
//! (§ DESIGN.md), but the §2.2 statistic — how many blocks of a degraded
//! stripe are missing at once — needs explicit stripe→machine placements.
//! A configurable sample of stripes is therefore placed explicitly and
//! censused periodically; the sample is large enough (default 20,000) that
//! the conditional distribution is stable.

use rand::Rng;

use pbrs_trace::stripe_failures::StripeDegradation;

use crate::placement::PlacementPolicy;
use crate::topology::MachineId;

/// A sampled stripe: which machine stores each of its blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampledStripe {
    /// Machine holding block `i` of the stripe.
    pub machines: Vec<MachineId>,
}

/// The set of explicitly placed stripes used for degradation statistics.
#[derive(Debug, Clone, Default)]
pub struct StripeSample {
    stripes: Vec<SampledStripe>,
    /// Accumulated census results over the whole run.
    degradation: StripeDegradation,
    censuses: u64,
}

impl StripeSample {
    /// Places `count` stripes of `width` blocks each using `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `width` stripes cannot be placed rack-disjointly on the
    /// policy's topology — callers validate this up front through
    /// [`crate::config::SimConfig::validate`], which surfaces the same
    /// constraint as a typed error.
    pub fn generate<R: Rng + ?Sized>(
        rng: &mut R,
        policy: &PlacementPolicy,
        count: usize,
        width: usize,
    ) -> Self {
        let stripes = (0..count)
            .map(|_| SampledStripe {
                machines: policy
                    .place_stripe(rng, width)
                    // pbrs-lint: allow(panic-hygiene) -- stripe width was validated against the topology at simulation build time
                    .expect("stripe width validated against the topology"),
            })
            .collect();
        StripeSample {
            stripes,
            degradation: StripeDegradation::default(),
            censuses: 0,
        }
    }

    /// Number of sampled stripes.
    pub fn len(&self) -> usize {
        self.stripes.len()
    }

    /// `true` if no stripes are sampled (the census is then skipped).
    pub fn is_empty(&self) -> bool {
        self.stripes.is_empty()
    }

    /// Runs one census: for every sampled stripe, counts how many of its
    /// blocks sit on currently-unavailable machines and records degraded
    /// stripes into the running distribution.
    pub fn census(&mut self, machine_down: &[bool]) {
        for stripe in &self.stripes {
            let missing = stripe.machines.iter().filter(|m| machine_down[m.0]).count();
            self.degradation.record(missing);
        }
        self.censuses += 1;
    }

    /// The accumulated degradation distribution.
    pub fn degradation(&self) -> &StripeDegradation {
        &self.degradation
    }

    /// Number of censuses taken.
    pub fn censuses(&self) -> u64 {
        self.censuses
    }

    /// The sampled stripes (used by tests).
    pub fn stripes(&self) -> &[SampledStripe] {
        &self.stripes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(count: usize) -> StripeSample {
        let policy = PlacementPolicy::new(Topology::new(20, 10));
        let mut rng = StdRng::seed_from_u64(11);
        StripeSample::generate(&mut rng, &policy, count, 14)
    }

    #[test]
    fn generation_places_requested_stripes() {
        let s = sample(100);
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
        assert_eq!(s.censuses(), 0);
        assert!(s.stripes().iter().all(|st| st.machines.len() == 14));
    }

    #[test]
    fn census_counts_degraded_stripes_only() {
        let mut s = sample(50);
        // No machines down: nothing recorded.
        let all_up = vec![false; 200];
        s.census(&all_up);
        assert_eq!(s.degradation().total(), 0);
        assert_eq!(s.censuses(), 1);

        // Take down one machine: every sampled stripe using it has exactly
        // one missing block.
        let victim = s.stripes()[0].machines[3];
        let mut down = vec![false; 200];
        down[victim.0] = true;
        s.census(&down);
        let using_victim = s
            .stripes()
            .iter()
            .filter(|st| st.machines.contains(&victim))
            .count() as u64;
        assert_eq!(s.degradation().total(), using_victim);
        assert_eq!(s.degradation().one_missing, using_victim);
        assert_eq!(s.degradation().two_missing, 0);
    }

    #[test]
    fn census_detects_multi_block_degradation() {
        let mut s = sample(20);
        // Take down two machines of the same stripe.
        let m0 = s.stripes()[0].machines[0];
        let m1 = s.stripes()[0].machines[1];
        let mut down = vec![false; 200];
        down[m0.0] = true;
        down[m1.0] = true;
        s.census(&down);
        assert!(s.degradation().two_missing >= 1);
    }

    #[test]
    fn empty_sample_is_harmless() {
        let mut s = StripeSample::default();
        assert!(s.is_empty());
        s.census(&[false; 10]);
        assert_eq!(s.degradation().total(), 0);
    }
}
