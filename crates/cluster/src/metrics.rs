//! Per-day metrics and the simulation report.

use pbrs_trace::calibration::bytes_to_tb;
use pbrs_trace::recovery_trace::{DailyRecovery, RecoveryTrace};
use pbrs_trace::stats::Summary;
use pbrs_trace::stripe_failures::StripeDegradation;

/// Everything the simulator measures for one day — the union of the series
/// plotted in Fig. 3a and Fig. 3b plus bookkeeping used by the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DayMetrics {
    /// Day index (0-based).
    pub day: usize,
    /// Machines flagged unavailable for more than the detection timeout
    /// (the Fig. 3a series).
    pub machines_flagged: u64,
    /// RS-coded blocks reconstructed (the first Fig. 3b series).
    pub blocks_reconstructed: u64,
    /// Cross-rack bytes transferred for those reconstructions (the second
    /// Fig. 3b series).
    pub cross_rack_bytes: u64,
    /// Bytes read from helper disks.
    pub disk_bytes_read: u64,
    /// Block recoveries cancelled because their machine returned first.
    pub blocks_cancelled: u64,
    /// Recovery tasks completed.
    pub tasks_completed: u64,
    /// Machines down at the end of the day.
    pub machines_down_at_day_end: u64,
}

impl DayMetrics {
    /// Cross-rack traffic in (binary) terabytes.
    pub fn cross_rack_tb(&self) -> f64 {
        bytes_to_tb(self.cross_rack_bytes)
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Name of the erasure code the run used.
    pub code_name: String,
    /// Per-day metrics, in day order.
    pub days: Vec<DayMetrics>,
    /// Accumulated stripe-degradation census (§2.2 statistic).
    pub degradation: StripeDegradation,
    /// Number of censuses taken.
    pub censuses: u64,
    /// Total RS blocks stored in the simulated cluster.
    pub total_rs_blocks: u64,
    /// Average helper blocks downloaded per repaired block under the
    /// configured code (10.0 for RS(10,4)).
    pub average_blocks_per_repair: f64,
}

impl ClusterReport {
    /// Summary of the machines-flagged-per-day series (Fig. 3a).
    pub fn flagged_summary(&self) -> Summary {
        Summary::of_counts(
            &self
                .days
                .iter()
                .map(|d| d.machines_flagged)
                .collect::<Vec<_>>(),
        )
    }

    /// Summary of the blocks-reconstructed-per-day series (Fig. 3b).
    pub fn blocks_summary(&self) -> Summary {
        Summary::of_counts(
            &self
                .days
                .iter()
                .map(|d| d.blocks_reconstructed)
                .collect::<Vec<_>>(),
        )
    }

    /// Summary of the cross-rack-terabytes-per-day series (Fig. 3b).
    pub fn cross_rack_tb_summary(&self) -> Summary {
        Summary::of(
            &self
                .days
                .iter()
                .map(|d| d.cross_rack_tb())
                .collect::<Vec<_>>(),
        )
    }

    /// Total cross-rack bytes over the run.
    pub fn total_cross_rack_bytes(&self) -> u64 {
        self.days.iter().map(|d| d.cross_rack_bytes).sum()
    }

    /// Total blocks reconstructed over the run.
    pub fn total_blocks_reconstructed(&self) -> u64 {
        self.days.iter().map(|d| d.blocks_reconstructed).sum()
    }

    /// Converts to the shared [`RecoveryTrace`] type used by `pbrs-trace`
    /// consumers and the report writers.
    pub fn to_recovery_trace(&self) -> RecoveryTrace {
        RecoveryTrace::new(
            self.days
                .iter()
                .map(|d| DailyRecovery {
                    day: d.day,
                    machines_flagged: d.machines_flagged,
                    blocks_reconstructed: d.blocks_reconstructed,
                    cross_rack_bytes: d.cross_rack_bytes,
                    disk_bytes_read: d.disk_bytes_read,
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ClusterReport {
        ClusterReport {
            code_name: "RS(10, 4)".into(),
            days: vec![
                DayMetrics {
                    day: 0,
                    machines_flagged: 40,
                    blocks_reconstructed: 90_000,
                    cross_rack_bytes: 170 * 1024u64.pow(4),
                    disk_bytes_read: 170 * 1024u64.pow(4),
                    blocks_cancelled: 1000,
                    tasks_completed: 4500,
                    machines_down_at_day_end: 2,
                },
                DayMetrics {
                    day: 1,
                    machines_flagged: 60,
                    blocks_reconstructed: 110_000,
                    cross_rack_bytes: 210 * 1024u64.pow(4),
                    disk_bytes_read: 210 * 1024u64.pow(4),
                    blocks_cancelled: 500,
                    tasks_completed: 5500,
                    machines_down_at_day_end: 1,
                },
            ],
            degradation: StripeDegradation {
                one_missing: 981,
                two_missing: 18,
                three_plus_missing: 1,
            },
            censuses: 8,
            total_rs_blocks: 18_000_000,
            average_blocks_per_repair: 10.0,
        }
    }

    #[test]
    fn summaries_and_totals() {
        let r = report();
        assert_eq!(r.flagged_summary().median, 50.0);
        assert_eq!(r.blocks_summary().median, 100_000.0);
        assert!((r.cross_rack_tb_summary().median - 190.0).abs() < 1e-9);
        assert_eq!(r.total_blocks_reconstructed(), 200_000);
        assert_eq!(r.total_cross_rack_bytes(), 380 * 1024u64.pow(4));
        assert!((r.days[0].cross_rack_tb() - 170.0).abs() < 1e-9);
    }

    #[test]
    fn conversion_to_recovery_trace() {
        let r = report();
        let trace = r.to_recovery_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.days[1].blocks_reconstructed, 110_000);
        assert_eq!(trace.days[1].machines_flagged, 60);
        assert_eq!(trace.total_cross_rack_bytes(), r.total_cross_rack_bytes());
    }

    #[test]
    fn degradation_percentages_follow_from_counts() {
        let r = report();
        assert!((r.degradation.one_missing_pct() - 98.1).abs() < 0.1);
    }
}
