//! Simulation configuration and the erasure-code choice.

use core::str::FromStr;

use pbrs_core::registry;
use pbrs_erasure::{CodeError, CodeSpec};
use pbrs_trace::calibration::{PaperConstants, MB};
use pbrs_trace::unavailability::UnavailabilityModel;

/// Which storage scheme the simulated cluster uses for its cold data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeChoice {
    /// A `(k, r)` Reed–Solomon code (the production scheme: `(10, 4)`).
    ReedSolomon {
        /// Data blocks per stripe.
        k: usize,
        /// Parity blocks per stripe.
        r: usize,
    },
    /// The paper's proposed `(k, r)` Piggybacked-RS code.
    PiggybackedRs {
        /// Data blocks per stripe.
        k: usize,
        /// Parity blocks per stripe.
        r: usize,
    },
    /// An LRC baseline with `k` data blocks, `l` local and `g` global
    /// parities.
    Lrc {
        /// Data blocks per stripe.
        k: usize,
        /// Local parity blocks (one per group).
        l: usize,
        /// Global parity blocks.
        g: usize,
    },
    /// N-way replication.
    Replication {
        /// Total copies stored.
        copies: usize,
    },
}

impl CodeChoice {
    /// The [`CodeSpec`] naming this choice in the unified registry.
    pub fn spec(&self) -> CodeSpec {
        match *self {
            CodeChoice::ReedSolomon { k, r } => CodeSpec::ReedSolomon { k, r },
            CodeChoice::PiggybackedRs { k, r } => CodeSpec::PiggybackedRs { k, r },
            CodeChoice::Lrc { k, l, g } => CodeSpec::Lrc {
                k,
                local_groups: l,
                global_parities: g,
            },
            CodeChoice::Replication { copies } => CodeSpec::Replication { copies },
        }
    }

    /// Builds the erasure code this choice describes, through the unified
    /// registry (`pbrs_core::registry`).
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation errors from the code constructors.
    pub fn build(&self) -> Result<registry::DynCode, CodeError> {
        registry::build(&self.spec())
    }

    /// The production configuration: RS(10, 4).
    pub fn production_rs() -> Self {
        CodeSpec::FACEBOOK_RS.into()
    }

    /// The paper's proposal: Piggybacked-RS(10, 4).
    pub fn proposed_piggybacked() -> Self {
        CodeSpec::FACEBOOK_PIGGYBACK.into()
    }
}

impl From<CodeSpec> for CodeChoice {
    fn from(spec: CodeSpec) -> Self {
        match spec {
            CodeSpec::ReedSolomon { k, r } => CodeChoice::ReedSolomon { k, r },
            CodeSpec::PiggybackedRs { k, r } => CodeChoice::PiggybackedRs { k, r },
            CodeSpec::Lrc {
                k,
                local_groups,
                global_parities,
            } => CodeChoice::Lrc {
                k,
                l: local_groups,
                g: global_parities,
            },
            CodeSpec::Replication { copies } => CodeChoice::Replication { copies },
        }
    }
}

impl From<CodeChoice> for CodeSpec {
    fn from(choice: CodeChoice) -> Self {
        choice.spec()
    }
}

impl FromStr for CodeChoice {
    type Err = CodeError;

    fn from_str(s: &str) -> Result<Self, CodeError> {
        Ok(CodeSpec::from_str(s)?.into())
    }
}

/// Full configuration of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of racks.
    pub racks: usize,
    /// Machines per rack.
    pub machines_per_rack: usize,
    /// Mean RS-coded blocks per machine that need reconstruction when the
    /// machine is flagged (Poisson-distributed per machine at setup). This is
    /// the *recovery demand* per qualifying outage, not the machine's total
    /// block population: HDFS-RAID's periodic scan only rebuilds blocks that
    /// are still missing when it runs, so outages that end quickly leave most
    /// of a machine's blocks untouched.
    pub mean_rs_blocks_per_machine: f64,
    /// Nominal HDFS block size in bytes (256 MiB in production).
    pub block_size_bytes: u64,
    /// Fraction of recovered blocks that are partial "tail" blocks (files do
    /// not align to 256 MiB, so the last block of a file is smaller).
    pub tail_block_fraction: f64,
    /// Mean size of a tail block, as a fraction of the full block size.
    pub tail_block_mean_fraction: f64,
    /// The storage scheme under test.
    pub code: CodeChoice,
    /// The machine-unavailability process.
    pub unavailability: UnavailabilityModel,
    /// Minutes a machine must be unavailable before recovery starts.
    pub detection_timeout_minutes: f64,
    /// Number of cluster-wide concurrent recovery tasks.
    pub recovery_slots: usize,
    /// Per-task recovery bandwidth in bytes per second (read + transfer of
    /// helper data; recovery time is bandwidth-bound, §3.2).
    pub recovery_bandwidth_bytes_per_sec: f64,
    /// Blocks grouped into one recovery task (scheduling granularity).
    pub blocks_per_recovery_task: usize,
    /// Number of stripes tracked explicitly for the degradation census
    /// (§2.2's 98.08 / 1.87 / 0.05 split).
    pub sampled_stripes: usize,
    /// Hours between degradation censuses.
    pub census_interval_hours: f64,
    /// Minutes after which an outage no longer degrades its stripes in the
    /// census (the blocks have been rebuilt elsewhere by then); applies to
    /// permanent failures in particular.
    pub census_heal_minutes: f64,
    /// Days to simulate.
    pub days: usize,
    /// RNG seed (fixed seed ⇒ reproducible runs; pairing seeds across code
    /// choices gives the paired comparison used for the >50 TB/day estimate).
    pub seed: u64,
}

impl SimConfig {
    /// The calibration matching the paper's warehouse cluster: 3,000
    /// machines in 150 racks, ~1,800 blocks needing reconstruction per
    /// qualifying outage, 256 MiB blocks with a tail-block mix, 15-minute
    /// detection, and a recovery pipeline sized so the RS(10,4)
    /// configuration lands on the published medians (~95,500 blocks and
    /// more than 180 TB cross-rack per day) while remaining demand-limited
    /// on a typical day (the assumption behind the paper's 50 TB/day saving
    /// estimate).
    pub fn facebook() -> Self {
        let constants = PaperConstants::published();
        let machines = constants.approx_machines;
        SimConfig {
            racks: 150,
            machines_per_rack: machines / 150,
            mean_rs_blocks_per_machine: 1900.0,
            block_size_bytes: constants.block_size_bytes,
            tail_block_fraction: 0.35,
            tail_block_mean_fraction: 0.45,
            code: CodeChoice::production_rs(),
            unavailability: UnavailabilityModel::facebook(machines),
            detection_timeout_minutes: constants.detection_timeout_minutes,
            recovery_slots: 100,
            recovery_bandwidth_bytes_per_sec: 40.0 * MB as f64,
            blocks_per_recovery_task: 20,
            sampled_stripes: 20_000,
            census_interval_hours: 6.0,
            census_heal_minutes: 6.0 * 60.0,
            days: constants.recovery_window_days,
            seed: 0x2013_0228,
        }
    }

    /// A deliberately small configuration for fast unit and integration
    /// tests (hundreds of machines, few sampled stripes, 3 days).
    pub fn small_test() -> Self {
        let machines = 200;
        SimConfig {
            racks: 20,
            machines_per_rack: 10,
            mean_rs_blocks_per_machine: 500.0,
            block_size_bytes: 64 * MB,
            tail_block_fraction: 0.3,
            tail_block_mean_fraction: 0.5,
            code: CodeChoice::production_rs(),
            unavailability: UnavailabilityModel {
                machines,
                base_events_per_day: 10.0,
                // The production spike magnitude (~130 machines) would take
                // down most of a 200-machine test cluster at once; scale it.
                spike_probability: 0.05,
                spike_extra_events: 10.0,
                ..UnavailabilityModel::facebook(machines)
            },
            detection_timeout_minutes: 15.0,
            recovery_slots: 20,
            recovery_bandwidth_bytes_per_sec: 40.0 * MB as f64,
            blocks_per_recovery_task: 10,
            sampled_stripes: 500,
            census_interval_hours: 6.0,
            census_heal_minutes: 6.0 * 60.0,
            days: 3,
            seed: 7,
        }
    }

    /// Total machines in the cluster.
    pub fn machines(&self) -> usize {
        self.racks * self.machines_per_rack
    }

    /// Average recovered-block size implied by the tail-block model.
    pub fn mean_block_size_bytes(&self) -> f64 {
        let full = self.block_size_bytes as f64;
        (1.0 - self.tail_block_fraction) * full
            + self.tail_block_fraction * self.tail_block_mean_fraction * full
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] for zero-sized dimensions or an
    /// unbuildable code choice, with a message naming the offending field.
    pub fn validate(&self) -> Result<(), CodeError> {
        if self.racks == 0 || self.machines_per_rack == 0 {
            return Err(CodeError::InvalidParams {
                reason: "racks and machines_per_rack must be positive".into(),
            });
        }
        if self.days == 0 {
            return Err(CodeError::InvalidParams {
                reason: "must simulate at least one day".into(),
            });
        }
        if self.recovery_slots == 0 || self.blocks_per_recovery_task == 0 {
            return Err(CodeError::InvalidParams {
                reason: "recovery_slots and blocks_per_recovery_task must be positive".into(),
            });
        }
        if self.recovery_bandwidth_bytes_per_sec <= 0.0 {
            return Err(CodeError::InvalidParams {
                reason: "recovery bandwidth must be positive".into(),
            });
        }
        let code = self.code.build()?;
        let width = code.params().total_shards();
        // The shared placement model owns this constraint: rack-disjoint
        // stripes need at least one rack per shard. Its typed error is
        // surfaced here instead of panicking deep in stripe generation.
        let racks = pbrs_placement::RackMap::uniform(self.racks, self.machines_per_rack);
        if let Err(e) = pbrs_placement::PlacementPolicy::RackDisjoint.validate_width(&racks, width)
        {
            return Err(CodeError::InvalidParams {
                reason: e.to_string(),
            });
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::facebook()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facebook_profile_is_valid_and_matches_paper_constants() {
        let c = SimConfig::facebook();
        c.validate().unwrap();
        assert_eq!(c.machines(), 3000);
        assert_eq!(c.block_size_bytes, 256 * 1024 * 1024);
        assert_eq!(c.days, 24);
        assert_eq!(c.detection_timeout_minutes, 15.0);
        assert_eq!(c.code, CodeChoice::production_rs());
        // The tail-block model implies an average recovered block around
        // 200 MB, consistent with the gap between 95,500x10x256MB and the
        // measured ~180 TB/day.
        let mean_mb = c.mean_block_size_bytes() / MB as f64;
        assert!(mean_mb > 180.0 && mean_mb < 220.0, "{mean_mb}");
        assert_eq!(SimConfig::default(), c);
    }

    #[test]
    fn small_test_profile_is_valid() {
        SimConfig::small_test().validate().unwrap();
    }

    #[test]
    fn code_choice_builders() {
        assert_eq!(
            CodeChoice::production_rs().build().unwrap().name(),
            "RS(10, 4)"
        );
        assert_eq!(
            CodeChoice::proposed_piggybacked().build().unwrap().name(),
            "Piggybacked-RS(10, 4)"
        );
        assert_eq!(
            CodeChoice::Lrc { k: 10, l: 2, g: 4 }
                .build()
                .unwrap()
                .name(),
            "LRC(10, 2, 4)"
        );
        assert_eq!(
            CodeChoice::Replication { copies: 3 }
                .build()
                .unwrap()
                .name(),
            "3-replication"
        );
        assert!(CodeChoice::ReedSolomon { k: 0, r: 1 }.build().is_err());
    }

    #[test]
    fn code_choice_round_trips_through_spec_strings() {
        let choices = [
            CodeChoice::production_rs(),
            CodeChoice::proposed_piggybacked(),
            CodeChoice::Lrc { k: 10, l: 2, g: 4 },
            CodeChoice::Replication { copies: 3 },
        ];
        for choice in choices {
            let text = choice.spec().to_string();
            let parsed: CodeChoice = text.parse().unwrap();
            assert_eq!(parsed, choice, "{text}");
        }
        assert_eq!(
            "piggyback-10-4".parse::<CodeChoice>().unwrap(),
            CodeChoice::proposed_piggybacked()
        );
        assert!("rs-10".parse::<CodeChoice>().is_err());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = SimConfig::small_test();
        c.racks = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::small_test();
        c.days = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::small_test();
        c.recovery_slots = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::small_test();
        c.recovery_bandwidth_bytes_per_sec = 0.0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::small_test();
        c.code = CodeChoice::ReedSolomon { k: 300, r: 10 };
        assert!(c.validate().is_err());

        // Stripe wider than the rack count cannot be placed rack-disjointly.
        let mut c = SimConfig::small_test();
        c.racks = 8;
        c.machines_per_rack = 25;
        c.unavailability.machines = 200;
        assert!(c.validate().is_err());
    }
}
