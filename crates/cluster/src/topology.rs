//! Cluster topology: racks, machines and the switch hierarchy.
//!
//! The paper's Fig. 1 shows the relevant structure: machines sit in racks
//! behind top-of-rack (TOR) switches, which connect through an aggregation
//! switch. Because every block of a stripe is placed on a different rack,
//! every helper byte of a recovery crosses a TOR switch — that is exactly the
//! traffic the measurement study quantifies.

/// Identifier of a machine within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MachineId(pub usize);

/// Identifier of a rack within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RackId(pub usize);

/// The static shape of the cluster: `racks × machines_per_rack` machines,
/// with machine `i` living in rack `i / machines_per_rack`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    racks: usize,
    machines_per_rack: usize,
}

impl Topology {
    /// Creates a topology with the given rack count and rack size.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(racks: usize, machines_per_rack: usize) -> Self {
        assert!(racks > 0, "topology needs at least one rack");
        assert!(machines_per_rack > 0, "racks need at least one machine");
        Topology {
            racks,
            machines_per_rack,
        }
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.racks
    }

    /// Machines per rack.
    pub fn machines_per_rack(&self) -> usize {
        self.machines_per_rack
    }

    /// Total machines in the cluster.
    pub fn machines(&self) -> usize {
        self.racks * self.machines_per_rack
    }

    /// The rack a machine lives in.
    ///
    /// # Panics
    ///
    /// Panics if the machine id is out of range.
    pub fn rack_of(&self, machine: MachineId) -> RackId {
        assert!(machine.0 < self.machines(), "machine id out of range");
        RackId(machine.0 / self.machines_per_rack)
    }

    /// The machines of one rack.
    ///
    /// # Panics
    ///
    /// Panics if the rack id is out of range.
    pub fn machines_in_rack(&self, rack: RackId) -> impl Iterator<Item = MachineId> {
        assert!(rack.0 < self.racks, "rack id out of range");
        let start = rack.0 * self.machines_per_rack;
        (start..start + self.machines_per_rack).map(MachineId)
    }

    /// `true` when two machines are in different racks, i.e. traffic between
    /// them crosses the TOR switches.
    pub fn crosses_racks(&self, a: MachineId, b: MachineId) -> bool {
        self.rack_of(a) != self.rack_of(b)
    }

    /// Iterator over all machine ids.
    pub fn all_machines(&self) -> impl Iterator<Item = MachineId> {
        (0..self.machines()).map(MachineId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_and_rack_mapping() {
        let t = Topology::new(150, 20);
        assert_eq!(t.racks(), 150);
        assert_eq!(t.machines_per_rack(), 20);
        assert_eq!(t.machines(), 3000);
        assert_eq!(t.rack_of(MachineId(0)), RackId(0));
        assert_eq!(t.rack_of(MachineId(19)), RackId(0));
        assert_eq!(t.rack_of(MachineId(20)), RackId(1));
        assert_eq!(t.rack_of(MachineId(2999)), RackId(149));
    }

    #[test]
    fn machines_in_rack_enumeration() {
        let t = Topology::new(3, 4);
        let rack1: Vec<usize> = t.machines_in_rack(RackId(1)).map(|m| m.0).collect();
        assert_eq!(rack1, vec![4, 5, 6, 7]);
        assert_eq!(t.all_machines().count(), 12);
    }

    #[test]
    fn cross_rack_detection() {
        let t = Topology::new(2, 3);
        assert!(!t.crosses_racks(MachineId(0), MachineId(2)));
        assert!(t.crosses_racks(MachineId(0), MachineId(3)));
    }

    #[test]
    #[should_panic(expected = "at least one rack")]
    fn zero_racks_rejected() {
        Topology::new(0, 5);
    }

    #[test]
    #[should_panic(expected = "machine id out of range")]
    fn out_of_range_machine_rejected() {
        Topology::new(2, 2).rack_of(MachineId(4));
    }
}
