//! The discrete-event engine.
//!
//! Time is measured in minutes (f64) from the start of the simulation. The
//! queue is a binary heap keyed on time; ties are broken by insertion order
//! so runs are fully deterministic for a fixed seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::topology::MachineId;

/// Simulation time in minutes since the start of the run.
pub type SimTime = f64;

/// Events processed by the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A machine becomes unavailable; `until` is the scheduled return time
    /// (`f64::INFINITY` for permanent failures).
    MachineDown {
        /// The affected machine.
        machine: MachineId,
        /// When the machine will come back.
        until: SimTime,
    },
    /// A machine returns to service.
    MachineUp {
        /// The returning machine.
        machine: MachineId,
        /// The down event this return corresponds to (guards against stale
        /// events when a machine fails again while already down).
        incarnation: u64,
    },
    /// The detection timeout for a down machine expired; if it is still down
    /// the recovery pipeline starts work for its blocks.
    DetectFailure {
        /// The machine to check.
        machine: MachineId,
        /// The down event this detection corresponds to.
        incarnation: u64,
    },
    /// A recovery task (a batch of block reconstructions) finished.
    RecoveryTaskDone {
        /// The machine whose blocks were being rebuilt.
        machine: MachineId,
        /// Blocks rebuilt by this task.
        blocks: u64,
        /// Helper bytes read and transferred across racks by this task.
        cross_rack_bytes: u64,
    },
    /// Periodic census of the sampled stripes (for the §2.2 degradation
    /// statistics).
    StripeCensus,
    /// End of a simulated day: daily metrics are rolled over.
    DayEnd {
        /// The day (0-based) that just ended.
        day: usize,
    },
}

#[derive(Debug, Clone, PartialEq)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time pops first,
        // breaking ties by insertion order.
        other
            .time
            .partial_cmp(&self.time)
            // pbrs-lint: allow(panic-hygiene) -- event times are finite simulation instants; NaN is structurally impossible
            .expect("event times are never NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    now: SimTime,
}

impl EventQueue {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// The current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or earlier than the current time.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Schedules `event` `delay` minutes from now.
    pub fn schedule_in(&mut self, delay: f64, event: Event) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| {
            self.now = s.time;
            (s.time, s.event)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(10.0, Event::StripeCensus);
        q.schedule(5.0, Event::DayEnd { day: 0 });
        q.schedule(7.5, Event::StripeCensus);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![5.0, 7.5, 10.0]);
        assert_eq!(q.now(), 10.0);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, Event::DayEnd { day: 1 });
        q.schedule(1.0, Event::DayEnd { day: 2 });
        q.schedule(1.0, Event::DayEnd { day: 3 });
        let days: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::DayEnd { day } => day,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(days, vec![1, 2, 3]);
    }

    #[test]
    fn schedule_in_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(3.0, Event::StripeCensus);
        q.pop();
        q.schedule_in(2.0, Event::StripeCensus);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 5.0);
    }

    #[test]
    fn len_tracks_pending_events() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.schedule(1.0, Event::StripeCensus);
        q.schedule(2.0, Event::StripeCensus);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10.0, Event::StripeCensus);
        q.pop();
        q.schedule(5.0, Event::StripeCensus);
    }

    #[test]
    fn infinite_times_sort_last() {
        let mut q = EventQueue::new();
        q.schedule(
            f64::INFINITY,
            Event::MachineUp {
                machine: MachineId(1),
                incarnation: 0,
            },
        );
        q.schedule(1.0, Event::StripeCensus);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 1.0);
        let (t, _) = q.pop().unwrap();
        assert!(t.is_infinite());
    }
}
