//! Network traffic accounting and the bandwidth-bound recovery-time model.
//!
//! Two observations from the paper shape this module:
//!
//! * §2.1/§2.2 — because every block of a stripe lives on a different rack,
//!   every helper byte of a recovery crosses the TOR switches. The
//!   [`TrafficAccountant`] therefore attributes all recovery reads to the
//!   cross-rack counter of the day they complete in.
//! * §3.2 ("Time taken for recovery") — "At the scale of multiple megabytes,
//!   the system is limited by the network and disk bandwidths, making the
//!   recovery time dependent only on the total amount of data read and
//!   transferred." The [`TransferModel`] encodes exactly that: recovery time
//!   is `bytes / bandwidth` plus a small per-helper connection setup cost,
//!   so contacting more helpers (as Piggybacked-RS does) barely matters
//!   while moving fewer bytes does.

/// Per-day traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DayTraffic {
    /// Bytes that crossed the TOR/aggregation switches.
    pub cross_rack_bytes: u64,
    /// Bytes served within a rack (zero under rack-disjoint placement, kept
    /// for completeness and for replication experiments with rack-local
    /// copies).
    pub intra_rack_bytes: u64,
    /// Bytes read from helper disks.
    pub disk_bytes_read: u64,
}

/// Accumulates traffic per simulated day.
#[derive(Debug, Clone, Default)]
pub struct TrafficAccountant {
    days: Vec<DayTraffic>,
}

impl TrafficAccountant {
    /// Creates an accountant covering `days` days.
    pub fn new(days: usize) -> Self {
        TrafficAccountant {
            days: vec![DayTraffic::default(); days],
        }
    }

    /// Records a cross-rack transfer of `bytes` on `day` (clamped to the last
    /// tracked day so late-finishing recoveries are not lost).
    pub fn record_cross_rack(&mut self, day: usize, bytes: u64) {
        let idx = day.min(self.days.len().saturating_sub(1));
        if let Some(d) = self.days.get_mut(idx) {
            d.cross_rack_bytes += bytes;
            d.disk_bytes_read += bytes;
        }
    }

    /// Records an intra-rack transfer of `bytes` on `day`.
    pub fn record_intra_rack(&mut self, day: usize, bytes: u64) {
        let idx = day.min(self.days.len().saturating_sub(1));
        if let Some(d) = self.days.get_mut(idx) {
            d.intra_rack_bytes += bytes;
            d.disk_bytes_read += bytes;
        }
    }

    /// The per-day counters.
    pub fn days(&self) -> &[DayTraffic] {
        &self.days
    }

    /// Total cross-rack bytes over the whole run.
    pub fn total_cross_rack_bytes(&self) -> u64 {
        self.days.iter().map(|d| d.cross_rack_bytes).sum()
    }
}

/// The bandwidth-bound transfer/recovery-time model of §3.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferModel {
    /// Sustained read+transfer bandwidth available to one recovery task, in
    /// bytes per second (disk and network are the joint bottleneck).
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed cost of opening a connection to one helper, in seconds.
    pub per_helper_setup_secs: f64,
}

impl TransferModel {
    /// The defaults used by the simulator: 40 MB/s per recovery task and
    /// 20 ms per helper connection.
    pub fn cluster_default(bandwidth_bytes_per_sec: f64) -> Self {
        TransferModel {
            bandwidth_bytes_per_sec,
            per_helper_setup_secs: 0.02,
        }
    }

    /// Time (seconds) to recover one block given the helper bytes to read
    /// and the number of helpers contacted.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive.
    pub fn recovery_seconds(&self, bytes: u64, helpers: usize) -> f64 {
        assert!(
            self.bandwidth_bytes_per_sec > 0.0,
            "bandwidth must be positive"
        );
        bytes as f64 / self.bandwidth_bytes_per_sec + helpers as f64 * self.per_helper_setup_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accountant_attributes_bytes_to_days() {
        let mut t = TrafficAccountant::new(3);
        t.record_cross_rack(0, 100);
        t.record_cross_rack(1, 200);
        t.record_intra_rack(1, 50);
        // Day beyond the horizon is clamped to the last day.
        t.record_cross_rack(9, 7);
        assert_eq!(t.days()[0].cross_rack_bytes, 100);
        assert_eq!(t.days()[1].cross_rack_bytes, 200);
        assert_eq!(t.days()[1].intra_rack_bytes, 50);
        assert_eq!(t.days()[1].disk_bytes_read, 250);
        assert_eq!(t.days()[2].cross_rack_bytes, 7);
        assert_eq!(t.total_cross_rack_bytes(), 307);
    }

    #[test]
    fn empty_accountant_is_harmless() {
        let mut t = TrafficAccountant::new(0);
        t.record_cross_rack(0, 10);
        assert_eq!(t.total_cross_rack_bytes(), 0);
    }

    #[test]
    fn recovery_time_is_dominated_by_bytes_not_helpers() {
        // The §3.2 argument: at multi-MB scale, contacting 13 helpers instead
        // of 10 is negligible next to moving 30% fewer bytes.
        let model = TransferModel::cluster_default(40.0 * 1024.0 * 1024.0);
        let block = 256u64 * 1024 * 1024;
        let rs_time = model.recovery_seconds(10 * block, 10);
        let pb_time = model.recovery_seconds((6.5 * block as f64) as u64, 11);
        assert!(pb_time < rs_time);
        assert!((rs_time / pb_time) > 1.4, "rs {rs_time} pb {pb_time}");
        // Helper setup is a tiny fraction of the total.
        let setup = 11.0 * model.per_helper_setup_secs;
        assert!(setup / pb_time < 0.01);
    }

    #[test]
    fn recovery_time_scales_linearly_with_bytes() {
        let model = TransferModel::cluster_default(100.0);
        let t1 = model.recovery_seconds(1000, 0);
        let t2 = model.recovery_seconds(2000, 0);
        assert!((t2 - 2.0 * t1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        TransferModel::cluster_default(0.0).recovery_seconds(1, 1);
    }
}
