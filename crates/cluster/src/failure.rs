//! Machine fleet state: who is up, who is down, and how many RS-coded
//! blocks each machine holds.
//!
//! The unavailability *process* itself (how often machines go down, for how
//! long) lives in `pbrs_trace::unavailability`; this module tracks the
//! resulting state inside the simulator, including the incarnation counters
//! that guard against stale detection/return events when a machine fails
//! again while a previous outage is still being processed.

use rand::Rng;

use pbrs_trace::distributions;

use crate::topology::MachineId;

/// State of one machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineState {
    /// Whether the machine is currently unavailable.
    pub down: bool,
    /// Simulation time (minutes) at which the current outage started
    /// (meaningless when `down` is false).
    pub down_since: f64,
    /// Incremented every time the machine goes down; detection and return
    /// events carry the incarnation they belong to.
    pub incarnation: u64,
    /// Number of RS-coded blocks stored on the machine.
    pub rs_blocks: u64,
}

/// The whole fleet.
#[derive(Debug, Clone)]
pub struct MachineFleet {
    states: Vec<MachineState>,
}

impl MachineFleet {
    /// Creates a fleet of `machines` machines, each holding a
    /// Poisson-distributed number of RS blocks around `mean_rs_blocks`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, machines: usize, mean_rs_blocks: f64) -> Self {
        let states = (0..machines)
            .map(|_| MachineState {
                down: false,
                down_since: 0.0,
                incarnation: 0,
                rs_blocks: distributions::poisson(rng, mean_rs_blocks),
            })
            .collect();
        MachineFleet { states }
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if the fleet has no machines.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// State of one machine.
    ///
    /// # Panics
    ///
    /// Panics if the machine id is out of range.
    pub fn state(&self, machine: MachineId) -> MachineState {
        self.states[machine.0]
    }

    /// Marks a machine as down at time `now` (minutes) and returns the new
    /// incarnation number. Returns `None` if the machine was already down
    /// (overlapping events are ignored, as in the real cluster's monitoring).
    pub fn mark_down(&mut self, machine: MachineId, now: f64) -> Option<u64> {
        let state = &mut self.states[machine.0];
        if state.down {
            return None;
        }
        state.down = true;
        state.down_since = now;
        state.incarnation += 1;
        Some(state.incarnation)
    }

    /// Marks a machine as up again, if `incarnation` matches its current
    /// outage. Returns `true` if the machine actually transitioned.
    pub fn mark_up(&mut self, machine: MachineId, incarnation: u64) -> bool {
        let state = &mut self.states[machine.0];
        if state.down && state.incarnation == incarnation {
            state.down = false;
            true
        } else {
            false
        }
    }

    /// `true` if the machine is currently down with the given incarnation.
    pub fn is_down_with(&self, machine: MachineId, incarnation: u64) -> bool {
        let state = self.states[machine.0];
        state.down && state.incarnation == incarnation
    }

    /// `true` if the machine is currently down.
    pub fn is_down(&self, machine: MachineId) -> bool {
        self.states[machine.0].down
    }

    /// Number of machines currently down.
    pub fn down_count(&self) -> usize {
        self.states.iter().filter(|s| s.down).count()
    }

    /// Boolean down-mask indexed by machine id (used by the stripe census).
    pub fn down_mask(&self) -> Vec<bool> {
        self.states.iter().map(|s| s.down).collect()
    }

    /// Down-mask that only counts machines whose current outage started less
    /// than `heal_minutes` ago. Machines unavailable for longer than that
    /// (in particular permanently failed ones) have had their blocks rebuilt
    /// elsewhere, so their stripes are no longer degraded — this is the mask
    /// the stripe census uses.
    pub fn down_mask_recent(&self, now: f64, heal_minutes: f64) -> Vec<bool> {
        self.states
            .iter()
            .map(|s| s.down && now - s.down_since < heal_minutes)
            .collect()
    }

    /// RS blocks stored on one machine.
    pub fn rs_blocks(&self, machine: MachineId) -> u64 {
        self.states[machine.0].rs_blocks
    }

    /// Total RS blocks across the fleet.
    pub fn total_rs_blocks(&self) -> u64 {
        self.states.iter().map(|s| s.rs_blocks).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fleet(n: usize) -> MachineFleet {
        let mut rng = StdRng::seed_from_u64(5);
        MachineFleet::new(&mut rng, n, 1000.0)
    }

    #[test]
    fn construction_distributes_blocks() {
        let f = fleet(100);
        assert_eq!(f.len(), 100);
        assert!(!f.is_empty());
        let total = f.total_rs_blocks();
        assert!(total > 90_000 && total < 110_000, "{total}");
        // Every machine starts up with zero incarnations.
        assert!((0..100).all(|i| !f.is_down(MachineId(i))));
        assert_eq!(f.down_count(), 0);
        assert_eq!(f.state(MachineId(3)).incarnation, 0);
    }

    #[test]
    fn down_up_cycle_with_incarnations() {
        let mut f = fleet(4);
        let m = MachineId(2);
        let inc1 = f.mark_down(m, 100.0).unwrap();
        assert_eq!(inc1, 1);
        assert!(f.is_down(m));
        assert!(f.is_down_with(m, 1));
        assert!(!f.is_down_with(m, 0));
        assert_eq!(f.down_count(), 1);
        assert!(f.down_mask()[2]);

        // Overlapping down event is ignored.
        assert_eq!(f.mark_down(m, 120.0), None);
        assert_eq!(f.state(m).down_since, 100.0);

        // Wrong incarnation does not bring the machine up.
        assert!(!f.mark_up(m, 0));
        assert!(f.is_down(m));
        assert!(f.mark_up(m, 1));
        assert!(!f.is_down(m));
        // Second up with the same incarnation is a no-op.
        assert!(!f.mark_up(m, 1));

        // A new outage gets a new incarnation.
        let inc2 = f.mark_down(m, 500.0).unwrap();
        assert_eq!(inc2, 2);
        assert_eq!(f.state(m).down_since, 500.0);
    }

    #[test]
    fn recent_mask_heals_long_outages() {
        let mut f = fleet(3);
        f.mark_down(MachineId(0), 0.0);
        f.mark_down(MachineId(1), 900.0);
        // At t=1000 with a 6-hour (360-minute) healing horizon, machine 0's
        // blocks have been rebuilt elsewhere but machine 1 is still degraded.
        assert_eq!(f.down_mask_recent(1000.0, 360.0), vec![false, true, false]);
        assert_eq!(f.down_mask(), vec![true, true, false]);
    }

    #[test]
    fn block_counts_are_stable() {
        let f = fleet(10);
        let before: Vec<u64> = (0..10).map(|i| f.rs_blocks(MachineId(i))).collect();
        let mut f2 = f.clone();
        f2.mark_down(MachineId(0), 1.0);
        let after: Vec<u64> = (0..10).map(|i| f2.rs_blocks(MachineId(i))).collect();
        assert_eq!(before, after, "state transitions never change block counts");
    }
}
