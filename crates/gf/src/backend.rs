//! Runtime selection of the GF(2^8) bulk-kernel backend.
//!
//! The slice kernels in [`crate::slice_ops`] exist in several
//! implementations of increasing speed:
//!
//! * [`Backend::Scalar`] — one 256-entry table lookup per byte. Always
//!   available; it is the reference oracle every other backend is tested
//!   against.
//! * [`Backend::Swar`] — portable bit-sliced blocks: the shift-and-add
//!   product is hoisted over a 128-byte block, so every step is a
//!   straight-line pass of lane-parallel byte shifts, masks and XORs with
//!   no table traffic — "SIMD within a register" arithmetic the compiler
//!   lowers to whatever wide registers the target baseline guarantees
//!   (SSE2 on x86-64, NEON on aarch64, `u64` words elsewhere).
//! * [`Backend::Ssse3`] / [`Backend::Avx2`] — x86-64 `pshufb` split-nibble
//!   multiply (the technique behind Intel ISA-L and the "Screaming Fast
//!   Galois Field Arithmetic" paper): two 16-entry tables, one for each
//!   nibble of the source byte, looked up 16 (SSSE3) or 32 (AVX2) bytes
//!   per instruction. Selected only when the CPU reports the feature.
//!
//! The active backend is chosen once per process: the `PBRS_GF_BACKEND`
//! environment variable wins if it names a supported backend
//! (`scalar`, `swar`, `ssse3`, `avx2`, or `auto`); otherwise the fastest
//! supported backend is used. An override naming an *unsupported* backend
//! falls back to auto-detection rather than failing, so a pinned CI
//! environment never aborts on older hardware. Benchmarks and tests can
//! switch backends programmatically with [`force`].

use core::fmt;
use core::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

/// One implementation of the bulk GF(2^8) kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Per-byte 256-entry lookup rows (the portable reference oracle).
    Scalar,
    /// Portable bit-sliced blocks (lane-parallel shift-and-add).
    Swar,
    /// x86-64 SSSE3 `pshufb` split-nibble tables, 16 bytes per step.
    Ssse3,
    /// x86-64 AVX2 `vpshufb` split-nibble tables, 32 bytes per step.
    Avx2,
}

/// Every backend, slowest first.
pub const ALL: [Backend; 4] = [
    Backend::Scalar,
    Backend::Swar,
    Backend::Ssse3,
    Backend::Avx2,
];

impl Backend {
    /// Short lowercase name, matching the `PBRS_GF_BACKEND` values.
    pub const fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Swar => "swar",
            Backend::Ssse3 => "ssse3",
            Backend::Avx2 => "avx2",
        }
    }

    /// Whether this backend can run on the current CPU.
    pub fn is_supported(self) -> bool {
        match self {
            Backend::Scalar | Backend::Swar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Ssse3 => std::arch::is_x86_feature_detected!("ssse3"),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Ssse3 | Backend::Avx2 => false,
        }
    }

    const fn to_u8(self) -> u8 {
        match self {
            Backend::Scalar => 1,
            Backend::Swar => 2,
            Backend::Ssse3 => 3,
            Backend::Avx2 => 4,
        }
    }

    fn from_u8(v: u8) -> Option<Backend> {
        match v {
            1 => Some(Backend::Scalar),
            2 => Some(Backend::Swar),
            3 => Some(Backend::Ssse3),
            4 => Some(Backend::Avx2),
            _ => None,
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The error returned when parsing an unknown backend name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBackend {
    /// The string that did not name a backend.
    pub input: String,
}

impl fmt::Display for UnknownBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown GF backend {:?} (expected scalar, swar, ssse3, avx2 or auto)",
            self.input
        )
    }
}

impl std::error::Error for UnknownBackend {}

impl FromStr for Backend {
    type Err = UnknownBackend;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(Backend::Scalar),
            "swar" => Ok(Backend::Swar),
            "ssse3" => Ok(Backend::Ssse3),
            "avx2" => Ok(Backend::Avx2),
            other => Err(UnknownBackend {
                input: other.to_string(),
            }),
        }
    }
}

/// The fastest backend the current CPU supports.
pub fn detect_best() -> Backend {
    for candidate in [Backend::Avx2, Backend::Ssse3] {
        if candidate.is_supported() {
            return candidate;
        }
    }
    Backend::Swar
}

/// Backends supported on the current CPU, slowest first.
pub fn supported() -> Vec<Backend> {
    ALL.into_iter().filter(|b| b.is_supported()).collect()
}

/// The cached process-wide choice; 0 means "not chosen yet".
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn choose() -> Backend {
    match std::env::var("PBRS_GF_BACKEND") {
        Ok(value) if !value.trim().eq_ignore_ascii_case("auto") => match value.parse::<Backend>() {
            Ok(requested) if requested.is_supported() => requested,
            Ok(requested) => {
                // A valid name this CPU lacks: the documented portable
                // fallback, but say so — a pinned CI row silently running
                // a different backend would be worse than the message.
                let fallback = detect_best();
                eprintln!(
                    "[pbrs-gf] PBRS_GF_BACKEND={requested} is not supported on this CPU; \
                     using {fallback}"
                );
                fallback
            }
            Err(err) => {
                // A typo names nothing; don't let it masquerade as a choice.
                let fallback = detect_best();
                eprintln!("[pbrs-gf] ignoring PBRS_GF_BACKEND: {err}; using {fallback}");
                fallback
            }
        },
        _ => detect_best(),
    }
}

/// The backend every dispatching kernel in [`crate::slice_ops`] uses.
///
/// Resolved once per process from `PBRS_GF_BACKEND` (falling back to
/// [`detect_best`]) and cached; [`force`] replaces the cached choice.
pub fn active() -> Backend {
    // Relaxed: a self-contained cache cell. Racing initialisers compute
    // the same value, and every backend yields identical bytes anyway.
    if let Some(backend) = Backend::from_u8(ACTIVE.load(Ordering::Relaxed)) {
        return backend;
    }
    let chosen = choose();
    // Relaxed: idempotent publish of the cache cell read above.
    ACTIVE.store(chosen.to_u8(), Ordering::Relaxed);
    chosen
}

/// Forces the process-wide backend, returning `false` (and changing
/// nothing) if the CPU does not support it.
///
/// Intended for benchmarks and backend-comparison tests; production
/// callers should rely on [`active`]'s env-plus-detection policy. Note the
/// choice is global: concurrent threads observing different backends mid
/// switch still compute identical bytes, since every backend implements
/// the same field arithmetic.
pub fn force(backend: Backend) -> bool {
    if !backend.is_supported() {
        return false;
    }
    // Relaxed: see the doc comment — a mid-switch stale read is benign
    // because all backends compute the same field arithmetic.
    ACTIVE.store(backend.to_u8(), Ordering::Relaxed);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for backend in ALL {
            assert_eq!(backend.name().parse::<Backend>().unwrap(), backend);
            assert_eq!(backend.to_string(), backend.name());
        }
        assert!("pshufb".parse::<Backend>().is_err());
        let err = "bogus".parse::<Backend>().unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn portable_backends_always_supported() {
        assert!(Backend::Scalar.is_supported());
        assert!(Backend::Swar.is_supported());
        let supported = supported();
        assert!(supported.contains(&Backend::Scalar));
        assert!(supported.contains(&Backend::Swar));
        assert!(supported.contains(&detect_best()));
    }

    #[test]
    fn force_and_active_agree() {
        // Whatever is active is supported. Remember it: this test must
        // restore the process-wide choice afterwards, or a PBRS_GF_BACKEND
        // pin (the CI backend matrix) would stop covering every test that
        // happens to run after this one in the same binary.
        let original = active();
        assert!(original.is_supported());
        for backend in supported() {
            assert!(force(backend));
            assert_eq!(active(), backend);
        }
        // Unsupported forces are rejected without changing the choice.
        #[cfg(not(target_arch = "x86_64"))]
        {
            let before = active();
            assert!(!force(Backend::Avx2));
            assert_eq!(active(), before);
        }
        // Leave the process exactly as this test found it.
        assert!(force(original));
    }
}
