//! Polynomials over GF(2^8).
//!
//! Used to cross-check the matrix-based Reed–Solomon construction: encoding k
//! data symbols with an RS code is equivalent to evaluating the degree-(k−1)
//! polynomial interpolating them, and decoding is Lagrange interpolation.

use crate::Gf256;

/// A polynomial with coefficients in GF(2^8), stored lowest degree first.
///
/// # Example
///
/// ```
/// use pbrs_gf::{Gf256, Polynomial};
///
/// // p(x) = 3 + 2x
/// let p = Polynomial::new(vec![Gf256::new(3), Gf256::new(2)]);
/// assert_eq!(p.evaluate(Gf256::ZERO), Gf256::new(3));
/// assert_eq!(p.degree(), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Polynomial {
    coeffs: Vec<Gf256>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients (lowest degree first).
    /// Trailing zero coefficients are trimmed.
    pub fn new(coeffs: Vec<Gf256>) -> Self {
        let mut p = Polynomial { coeffs };
        p.trim();
        p
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: Gf256) -> Self {
        Polynomial::new(vec![c])
    }

    /// The monomial `c * x^degree`.
    pub fn monomial(c: Gf256, degree: usize) -> Self {
        if c.is_zero() {
            return Polynomial::zero();
        }
        let mut coeffs = vec![Gf256::ZERO; degree + 1];
        coeffs[degree] = c;
        Polynomial { coeffs }
    }

    fn trim(&mut self) {
        while self.coeffs.last().is_some_and(|c| c.is_zero()) {
            self.coeffs.pop();
        }
    }

    /// The coefficients, lowest degree first (no trailing zeros).
    pub fn coefficients(&self) -> &[Gf256] {
        &self.coeffs
    }

    /// The degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        if self.coeffs.is_empty() {
            None
        } else {
            Some(self.coeffs.len() - 1)
        }
    }

    /// Returns `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Evaluates the polynomial at `x` using Horner's method.
    pub fn evaluate(&self, x: Gf256) -> Gf256 {
        let mut acc = Gf256::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Adds two polynomials.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = vec![Gf256::ZERO; n];
        for (i, c) in coeffs.iter_mut().enumerate() {
            let a = self.coeffs.get(i).copied().unwrap_or(Gf256::ZERO);
            let b = other.coeffs.get(i).copied().unwrap_or(Gf256::ZERO);
            *c = a + b;
        }
        Polynomial::new(coeffs)
    }

    /// Multiplies two polynomials.
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        if self.is_zero() || other.is_zero() {
            return Polynomial::zero();
        }
        let mut coeffs = vec![Gf256::ZERO; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Polynomial::new(coeffs)
    }

    /// Multiplies by a scalar.
    pub fn scale(&self, c: Gf256) -> Polynomial {
        Polynomial::new(self.coeffs.iter().map(|&a| a * c).collect())
    }

    /// Lagrange interpolation: the unique polynomial of degree `< points.len()`
    /// passing through all `(x, y)` points.
    ///
    /// # Panics
    ///
    /// Panics if two points share an x-coordinate.
    pub fn interpolate(points: &[(Gf256, Gf256)]) -> Polynomial {
        let mut result = Polynomial::zero();
        for (i, &(xi, yi)) in points.iter().enumerate() {
            if yi.is_zero() {
                continue;
            }
            // Build the Lagrange basis polynomial for point i.
            let mut basis = Polynomial::constant(Gf256::ONE);
            let mut denom = Gf256::ONE;
            for (j, &(xj, _)) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                assert_ne!(xi, xj, "interpolation points must have distinct x values");
                // (x - xj) == (x + xj) in characteristic 2.
                basis = basis.mul(&Polynomial::new(vec![xj, Gf256::ONE]));
                denom *= xi + xj;
            }
            // pbrs-lint: allow(panic-hygiene) -- interpolation points are distinct, so the denominator is non-zero
            let scale = yi * denom.inverse().expect("denominator is non-zero");
            result = result.add(&basis.scale(scale));
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(v: u8) -> Gf256 {
        Gf256::new(v)
    }

    #[test]
    fn zero_and_constant() {
        let z = Polynomial::zero();
        assert!(z.is_zero());
        assert_eq!(z.degree(), None);
        assert_eq!(z.evaluate(g(7)), Gf256::ZERO);

        let c = Polynomial::constant(g(9));
        assert_eq!(c.degree(), Some(0));
        assert_eq!(c.evaluate(g(200)), g(9));

        // Constant zero collapses to the zero polynomial.
        assert!(Polynomial::constant(Gf256::ZERO).is_zero());
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p = Polynomial::new(vec![g(1), g(2), Gf256::ZERO, Gf256::ZERO]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(p.coefficients().len(), 2);
    }

    #[test]
    fn monomial_evaluation() {
        let m = Polynomial::monomial(g(3), 4);
        assert_eq!(m.degree(), Some(4));
        let x = g(5);
        assert_eq!(m.evaluate(x), g(3) * x.pow(4));
        assert!(Polynomial::monomial(Gf256::ZERO, 10).is_zero());
    }

    #[test]
    fn addition_and_multiplication_consistency() {
        // (p + q)(x) == p(x) + q(x), (p * q)(x) == p(x) * q(x)
        let p = Polynomial::new(vec![g(1), g(7), g(3)]);
        let q = Polynomial::new(vec![g(9), g(0), g(0xAB), g(4)]);
        for xv in [0u8, 1, 2, 50, 100, 200, 255] {
            let x = g(xv);
            assert_eq!(p.add(&q).evaluate(x), p.evaluate(x) + q.evaluate(x));
            assert_eq!(p.mul(&q).evaluate(x), p.evaluate(x) * q.evaluate(x));
        }
    }

    #[test]
    fn addition_is_self_inverse() {
        let p = Polynomial::new(vec![g(1), g(7), g(3)]);
        assert!(p.add(&p).is_zero());
    }

    #[test]
    fn scaling() {
        let p = Polynomial::new(vec![g(2), g(4)]);
        let s = p.scale(g(3));
        for xv in [0u8, 1, 9, 77] {
            assert_eq!(s.evaluate(g(xv)), p.evaluate(g(xv)) * g(3));
        }
        assert!(p.scale(Gf256::ZERO).is_zero());
    }

    #[test]
    fn interpolation_recovers_polynomial() {
        let p = Polynomial::new(vec![g(5), g(9), g(0x1D), g(200)]);
        let points: Vec<(Gf256, Gf256)> = (0..4)
            .map(|i| {
                let x = Gf256::alpha(i);
                (x, p.evaluate(x))
            })
            .collect();
        let q = Polynomial::interpolate(&points);
        assert_eq!(p, q);
    }

    #[test]
    fn interpolation_through_arbitrary_points() {
        let points = vec![(g(1), g(10)), (g(2), g(20)), (g(3), g(30)), (g(4), g(1))];
        let p = Polynomial::interpolate(&points);
        assert!(p.degree().unwrap() <= 3);
        for (x, y) in points {
            assert_eq!(p.evaluate(x), y);
        }
    }

    #[test]
    #[should_panic(expected = "distinct x values")]
    fn interpolation_rejects_duplicate_x() {
        let _ = Polynomial::interpolate(&[(g(1), g(1)), (g(1), g(2))]);
    }

    #[test]
    fn interpolation_with_zero_values() {
        let points = vec![(g(1), Gf256::ZERO), (g(2), Gf256::ZERO)];
        let p = Polynomial::interpolate(&points);
        assert!(p.is_zero());
    }
}
