//! The [`Gf256`] field-element newtype.

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::tables;

/// An element of GF(2^8).
///
/// Addition and subtraction are both XOR; multiplication and division use the
/// exp/log tables in [`crate::tables`]. The type is a transparent wrapper over
/// `u8`, so it can be freely converted to and from raw bytes.
///
/// # Example
///
/// ```
/// use pbrs_gf::Gf256;
///
/// let a = Gf256::new(7);
/// let b = Gf256::new(200);
/// assert_eq!(a - b, a + b); // characteristic 2
/// assert_eq!((a / b) * b, a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The canonical multiplicative generator (`0x02`).
    pub const GENERATOR: Gf256 = Gf256(tables::GENERATOR);

    /// Wraps a raw byte as a field element.
    #[inline]
    pub const fn new(value: u8) -> Self {
        Gf256(value)
    }

    /// Returns the raw byte value.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Returns `true` if this is the additive identity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `generator^i`, the i-th power of the canonical generator.
    ///
    /// Useful for constructing Vandermonde evaluation points.
    #[inline]
    pub const fn alpha(i: usize) -> Self {
        Gf256(tables::EXP[i % 255])
    }

    /// The multiplicative inverse, or `None` for zero.
    #[inline]
    pub const fn inverse(self) -> Option<Self> {
        match tables::inverse(self.0) {
            Some(v) => Some(Gf256(v)),
            None => None,
        }
    }

    /// Raises the element to the power `n` (with `x^0 == 1` for all `x`).
    #[inline]
    pub const fn pow(self, n: u32) -> Self {
        Gf256(tables::pow(self.0, n))
    }

    /// Discrete logarithm with respect to the canonical generator.
    ///
    /// Returns `None` for zero.
    #[inline]
    pub const fn log(self) -> Option<u8> {
        if self.0 == 0 {
            None
        } else {
            Some(tables::LOG[self.0 as usize])
        }
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256({:#04x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#04x}", self.0)
    }
}

impl fmt::LowerHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

impl From<u8> for Gf256 {
    #[inline]
    fn from(value: u8) -> Self {
        Gf256(value)
    }
}

impl From<Gf256> for u8 {
    #[inline]
    fn from(value: Gf256) -> Self {
        value.0
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // GF(2^8) addition is XOR
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    #[inline]
    #[allow(clippy::suspicious_op_assign_impl)] // GF(2^8) addition is XOR
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // subtraction equals addition in GF(2^8)
    fn sub(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf256 {
    #[inline]
    #[allow(clippy::suspicious_op_assign_impl)] // subtraction equals addition in GF(2^8)
    fn sub_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    #[inline]
    fn neg(self) -> Gf256 {
        // In characteristic 2 every element is its own additive inverse.
        self
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Gf256) -> Gf256 {
        Gf256(tables::mul(self.0, rhs.0))
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf256) {
        self.0 = tables::mul(self.0, rhs.0);
    }
}

impl Div for Gf256 {
    type Output = Gf256;
    /// # Panics
    ///
    /// Panics when dividing by zero.
    #[inline]
    fn div(self, rhs: Gf256) -> Gf256 {
        Gf256(tables::div(self.0, rhs.0))
    }
}

impl DivAssign for Gf256 {
    #[inline]
    fn div_assign(&mut self, rhs: Gf256) {
        self.0 = tables::div(self.0, rhs.0);
    }
}

impl Sum for Gf256 {
    fn sum<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ZERO, |acc, x| acc + x)
    }
}

impl<'a> Sum<&'a Gf256> for Gf256 {
    fn sum<I: Iterator<Item = &'a Gf256>>(iter: I) -> Gf256 {
        iter.copied().sum()
    }
}

impl Product for Gf256 {
    fn product<I: Iterator<Item = Gf256>>(iter: I) -> Gf256 {
        iter.fold(Gf256::ONE, |acc, x| acc * x)
    }
}

impl<'a> Product<&'a Gf256> for Gf256 {
    fn product<I: Iterator<Item = &'a Gf256>>(iter: I) -> Gf256 {
        iter.copied().product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(Gf256::ZERO.value(), 0);
        assert_eq!(Gf256::ONE.value(), 1);
        assert!(Gf256::ZERO.is_zero());
        assert!(!Gf256::ONE.is_zero());
        assert_eq!(Gf256::default(), Gf256::ZERO);
    }

    #[test]
    fn addition_is_xor() {
        assert_eq!(Gf256::new(0b1010) + Gf256::new(0b0110), Gf256::new(0b1100));
        let mut x = Gf256::new(0xAB);
        x += Gf256::new(0xAB);
        assert_eq!(x, Gf256::ZERO);
    }

    #[test]
    fn subtraction_equals_addition() {
        for a in 0..=255u8 {
            for b in [0u8, 1, 17, 0xFE, 0xFF] {
                assert_eq!(Gf256::new(a) - Gf256::new(b), Gf256::new(a) + Gf256::new(b));
            }
        }
    }

    #[test]
    fn negation_is_identity() {
        for a in 0..=255u8 {
            assert_eq!(-Gf256::new(a), Gf256::new(a));
        }
    }

    #[test]
    fn field_axioms_exhaustive_sample() {
        let sample = [0u8, 1, 2, 3, 5, 7, 0x10, 0x53, 0x8E, 0xCA, 0xFE, 0xFF];
        for &a in &sample {
            for &b in &sample {
                for &c in &sample {
                    let (a, b, c) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
                    assert_eq!(a + b, b + a);
                    assert_eq!(a * b, b * a);
                    assert_eq!((a + b) + c, a + (b + c));
                    assert_eq!((a * b) * c, a * (b * c));
                    assert_eq!(a * (b + c), a * b + a * c);
                }
            }
        }
    }

    #[test]
    fn division_inverts_multiplication() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                let (a, b) = (Gf256::new(a), Gf256::new(b));
                assert_eq!((a * b) / b, a);
                let mut x = a;
                x *= b;
                x /= b;
                assert_eq!(x, a);
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Gf256::ONE / Gf256::ZERO;
    }

    #[test]
    fn inverse_and_pow() {
        assert_eq!(Gf256::ZERO.inverse(), None);
        for a in 1..=255u8 {
            let a = Gf256::new(a);
            assert_eq!(a * a.inverse().unwrap(), Gf256::ONE);
            assert_eq!(a.pow(255), Gf256::ONE, "Fermat's little theorem analogue");
            assert_eq!(a.pow(0), Gf256::ONE);
            assert_eq!(a.pow(1), a);
        }
    }

    #[test]
    fn alpha_powers_are_exp_table() {
        assert_eq!(Gf256::alpha(0), Gf256::ONE);
        assert_eq!(Gf256::alpha(1), Gf256::GENERATOR);
        for i in 0..512 {
            assert_eq!(Gf256::alpha(i), Gf256::GENERATOR.pow(i as u32));
        }
    }

    #[test]
    fn log_round_trips() {
        assert_eq!(Gf256::ZERO.log(), None);
        for a in 1..=255u8 {
            let a = Gf256::new(a);
            let l = a.log().unwrap();
            assert_eq!(Gf256::alpha(l as usize), a);
        }
    }

    #[test]
    fn sum_and_product_iterators() {
        let xs = [Gf256::new(1), Gf256::new(2), Gf256::new(3)];
        let s: Gf256 = xs.iter().sum();
        assert_eq!(s, Gf256::new(1 ^ 2 ^ 3));
        let p: Gf256 = xs.iter().product();
        assert_eq!(p, Gf256::new(1) * Gf256::new(2) * Gf256::new(3));
        let empty: [Gf256; 0] = [];
        assert_eq!(empty.iter().sum::<Gf256>(), Gf256::ZERO);
        assert_eq!(empty.iter().product::<Gf256>(), Gf256::ONE);
    }

    #[test]
    fn conversions_and_formatting() {
        let a: Gf256 = 0xAB_u8.into();
        let b: u8 = a.into();
        assert_eq!(b, 0xAB);
        assert_eq!(format!("{a}"), "0xab");
        assert_eq!(format!("{a:?}"), "Gf256(0xab)");
        assert_eq!(format!("{a:x}"), "ab");
        assert_eq!(format!("{a:X}"), "AB");
        assert_eq!(format!("{:b}", Gf256::new(5)), "101");
        assert_eq!(format!("{:o}", Gf256::new(9)), "11");
    }
}
