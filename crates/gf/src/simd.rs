//! x86-64 `pshufb` split-nibble GF(2^8) kernels (SSSE3 and AVX2).
//!
//! The classic vectorised multiply from Intel ISA-L and Plank et al.'s
//! "Screaming Fast Galois Field Arithmetic Using Intel SIMD Instructions":
//! for a fixed scalar `c`, precompute two 16-entry tables
//!
//! * `lo[x] = c · x` for the low nibble `x` in `0..16`, and
//! * `hi[x] = c · (x << 4)` for the high nibble,
//!
//! so that `c · byte = lo[byte & 0xF] ⊕ hi[byte >> 4]`. `pshufb` performs
//! sixteen (SSSE3) or thirty-two (AVX2, two 128-bit lanes) of those table
//! lookups per instruction, turning the whole multiply-accumulate into a
//! handful of loads, shuffles and XORs per 16/32-byte block.
//!
//! # Safety
//!
//! This is the only module in the crate that uses `unsafe`: the intrinsics
//! need raw-pointer loads/stores and the `#[target_feature]` functions must
//! only run on CPUs that support the feature. Both obligations are
//! discharged locally — every pointer is derived from an in-bounds slice
//! range, and the public wrappers are only reachable through
//! [`crate::backend`] dispatch, which verifies the feature at runtime with
//! `is_x86_feature_detected!` (debug-asserted again here).

#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m128i, __m256i, _mm256_and_si256, _mm256_broadcastsi128_si256, _mm256_loadu_si256,
    _mm256_set1_epi8, _mm256_shuffle_epi8, _mm256_srli_epi64, _mm256_storeu_si256,
    _mm256_xor_si256, _mm_and_si128, _mm_loadu_si128, _mm_set1_epi8, _mm_shuffle_epi8,
    _mm_srli_epi64, _mm_storeu_si128, _mm_xor_si128,
};

use crate::tables;

/// The two 16-entry half-byte product tables for one scalar.
struct NibbleTables {
    lo: [u8; 16],
    hi: [u8; 16],
}

#[inline]
fn nibble_tables(c: u8) -> NibbleTables {
    let mut lo = [0u8; 16];
    let mut hi = [0u8; 16];
    for x in 0..16u8 {
        lo[x as usize] = tables::mul(c, x);
        hi[x as usize] = tables::mul(c, x << 4);
    }
    NibbleTables { lo, hi }
}

/// `dst[i] ^= c * src[i]` on SSSE3; `c` must not be 0 or 1.
pub(crate) fn mul_add_ssse3(c: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert!(std::arch::is_x86_feature_detected!("ssse3"));
    // SAFETY: the dispatcher only selects this backend after runtime
    // detection confirmed SSSE3 (debug-asserted above).
    unsafe { ssse3_kernel::<true>(&nibble_tables(c), src, dst) }
    tail_scalar::<true>(c, src, dst, src.len() - src.len() % 16);
}

/// `dst[i] = c * src[i]` on SSSE3; `c` must not be 0 or 1.
pub(crate) fn mul_ssse3(c: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert!(std::arch::is_x86_feature_detected!("ssse3"));
    // SAFETY: as in `mul_add_ssse3`.
    unsafe { ssse3_kernel::<false>(&nibble_tables(c), src, dst) }
    tail_scalar::<false>(c, src, dst, src.len() - src.len() % 16);
}

/// `dst[i] ^= c * src[i]` on AVX2; `c` must not be 0 or 1.
pub(crate) fn mul_add_avx2(c: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: as in `mul_add_ssse3`, for the AVX2 feature.
    unsafe { avx2_kernel::<true>(&nibble_tables(c), src, dst) }
    tail_scalar::<true>(c, src, dst, src.len() - src.len() % 32);
}

/// `dst[i] = c * src[i]` on AVX2; `c` must not be 0 or 1.
pub(crate) fn mul_avx2(c: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: as in `mul_add_ssse3`, for the AVX2 feature.
    unsafe { avx2_kernel::<false>(&nibble_tables(c), src, dst) }
    tail_scalar::<false>(c, src, dst, src.len() - src.len() % 32);
}

/// Finishes the sub-vector tail starting at `from` with scalar lookups.
#[inline]
fn tail_scalar<const ACCUMULATE: bool>(c: u8, src: &[u8], dst: &mut [u8], from: usize) {
    for (s, d) in src[from..].iter().zip(dst[from..].iter_mut()) {
        if ACCUMULATE {
            *d ^= tables::mul(c, *s);
        } else {
            *d = tables::mul(c, *s);
        }
    }
}

/// # Safety
///
/// Requires SSSE3. `src` and `dst` must have equal lengths.
#[target_feature(enable = "ssse3")]
unsafe fn ssse3_kernel<const ACCUMULATE: bool>(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len(), dst.len());
    // SAFETY: the table arrays are 16 bytes, exactly one unaligned load.
    let lo_t = unsafe { _mm_loadu_si128(t.lo.as_ptr().cast::<__m128i>()) };
    let hi_t = unsafe { _mm_loadu_si128(t.hi.as_ptr().cast::<__m128i>()) };
    let mask = _mm_set1_epi8(0x0F);
    let blocks = src.len() / 16;
    for block in 0..blocks {
        let at = block * 16;
        // SAFETY: `at + 16 <= src.len() == dst.len()`, so every 16-byte
        // unaligned load/store below stays inside the slices.
        unsafe {
            let v = _mm_loadu_si128(src.as_ptr().add(at).cast::<__m128i>());
            let lo = _mm_and_si128(v, mask);
            let hi = _mm_and_si128(_mm_srli_epi64::<4>(v), mask);
            let product = _mm_xor_si128(_mm_shuffle_epi8(lo_t, lo), _mm_shuffle_epi8(hi_t, hi));
            let out = dst.as_mut_ptr().add(at).cast::<__m128i>();
            let value = if ACCUMULATE {
                _mm_xor_si128(_mm_loadu_si128(out), product)
            } else {
                product
            };
            _mm_storeu_si128(out, value);
        }
    }
}

/// # Safety
///
/// Requires AVX2. `src` and `dst` must have equal lengths.
#[target_feature(enable = "avx2")]
unsafe fn avx2_kernel<const ACCUMULATE: bool>(t: &NibbleTables, src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len(), dst.len());
    // SAFETY: the table arrays are 16 bytes, exactly one unaligned load
    // each, broadcast into both 128-bit lanes (vpshufb looks up within
    // each lane independently).
    let (lo_t, hi_t): (__m256i, __m256i) = unsafe {
        (
            _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo.as_ptr().cast::<__m128i>())),
            _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi.as_ptr().cast::<__m128i>())),
        )
    };
    let mask = _mm256_set1_epi8(0x0F);
    let blocks = src.len() / 32;
    for block in 0..blocks {
        let at = block * 32;
        // SAFETY: `at + 32 <= src.len() == dst.len()`, so every 32-byte
        // unaligned load/store below stays inside the slices.
        unsafe {
            let v = _mm256_loadu_si256(src.as_ptr().add(at).cast::<__m256i>());
            let lo = _mm256_and_si256(v, mask);
            let hi = _mm256_and_si256(_mm256_srli_epi64::<4>(v), mask);
            let product =
                _mm256_xor_si256(_mm256_shuffle_epi8(lo_t, lo), _mm256_shuffle_epi8(hi_t, hi));
            let out = dst.as_mut_ptr().add(at).cast::<__m256i>();
            let value = if ACCUMULATE {
                _mm256_xor_si256(_mm256_loadu_si256(out), product)
            } else {
                product
            };
            _mm256_storeu_si256(out, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(n: usize, seed: u8) -> Vec<u8> {
        (0..n)
            .map(|i| (i as u8).wrapping_mul(41).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn nibble_tables_compose_the_full_product() {
        for c in [2u8, 0x1D, 0x53, 0xFF] {
            let t = nibble_tables(c);
            for x in 0..=255u8 {
                let via_tables = t.lo[(x & 0x0F) as usize] ^ t.hi[(x >> 4) as usize];
                assert_eq!(via_tables, tables::mul(c, x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn simd_kernels_match_scalar_on_awkward_lengths() {
        for len in [1usize, 15, 16, 17, 31, 32, 33, 100, 255] {
            let src = buf(len, 7);
            for c in [2u8, 0x1D, 0x8E, 0xFF] {
                let expect_mul: Vec<u8> = src.iter().map(|&s| tables::mul(c, s)).collect();
                if std::arch::is_x86_feature_detected!("ssse3") {
                    let mut dst = buf(len, 31);
                    let base = dst.clone();
                    mul_add_ssse3(c, &src, &mut dst);
                    for i in 0..len {
                        assert_eq!(dst[i], base[i] ^ expect_mul[i], "ssse3 len={len} c={c}");
                    }
                    let mut out = vec![0xAAu8; len];
                    mul_ssse3(c, &src, &mut out);
                    assert_eq!(out, expect_mul);
                }
                if std::arch::is_x86_feature_detected!("avx2") {
                    let mut dst = buf(len, 31);
                    let base = dst.clone();
                    mul_add_avx2(c, &src, &mut dst);
                    for i in 0..len {
                        assert_eq!(dst[i], base[i] ^ expect_mul[i], "avx2 len={len} c={c}");
                    }
                    let mut out = vec![0xAAu8; len];
                    mul_avx2(c, &src, &mut out);
                    assert_eq!(out, expect_mul);
                }
            }
        }
    }
}
