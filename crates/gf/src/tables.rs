//! Precomputed exponent/logarithm tables for GF(2^8).
//!
//! The field is defined by the primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (`0x11D`), the same polynomial used by most
//! storage erasure-code implementations (ISA-L, Jerasure, HDFS-RAID). The
//! generator element is `0x02`.
//!
//! All tables are computed in `const` context so there is no runtime
//! initialisation and no synchronisation.

/// The reduction polynomial (with the leading `x^8` term), `0x11D`.
pub const POLYNOMIAL: u16 = 0x11D;

/// The multiplicative generator used to build the exp/log tables.
pub const GENERATOR: u8 = 0x02;

/// Order of the multiplicative group (number of non-zero elements).
pub const GROUP_ORDER: usize = 255;

/// Number of elements in the field.
pub const FIELD_SIZE: usize = 256;

const fn build_exp_log() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLYNOMIAL;
        }
        i += 1;
    }
    // Duplicate the cycle so `exp[log(a) + log(b)]` never needs a modulo.
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_exp_log();

/// `EXP[i] = generator^i` for `i in 0..255`, duplicated once so that indices
/// up to 509 (the largest possible `log(a) + log(b)`) stay in range.
pub const EXP: [u8; 512] = TABLES.0;

/// `LOG[a] = log_generator(a)` for non-zero `a`. `LOG[0]` is 0 and must never
/// be used; callers are responsible for special-casing zero.
pub const LOG: [u8; 256] = TABLES.1;

/// Multiply two field elements using the exp/log tables.
///
/// This is the scalar kernel used everywhere; the slice kernels in
/// [`crate::slice_ops`] build per-scalar lookup rows on top of it.
#[inline]
pub const fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
}

/// Divide `a` by `b` in the field.
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
pub const fn div(a: u8, b: u8) -> u8 {
    if b == 0 {
        // pbrs-lint: allow(panic-hygiene) -- documented panic on a zero divisor, mirroring integer division
        panic!("division by zero in GF(2^8)");
    }
    if a == 0 {
        return 0;
    }
    EXP[LOG[a as usize] as usize + 255 - LOG[b as usize] as usize]
}

/// Multiplicative inverse of `a`, or `None` for zero.
#[inline]
pub const fn inverse(a: u8) -> Option<u8> {
    if a == 0 {
        None
    } else {
        Some(EXP[255 - LOG[a as usize] as usize])
    }
}

/// Raise `a` to the power `n` (with `0^0 == 1`).
#[inline]
pub const fn pow(a: u8, n: u32) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let l = LOG[a as usize] as u32;
    let e = (l * n) % 255;
    EXP[e as usize]
}

/// A full 256-entry multiplication row for a fixed scalar `c`:
/// `row[x] = c * x`. Used to speed up slice kernels.
#[inline]
pub fn mul_row(c: u8) -> [u8; 256] {
    let mut row = [0u8; 256];
    if c == 0 {
        return row;
    }
    let lc = LOG[c as usize] as usize;
    for (x, slot) in row.iter_mut().enumerate().skip(1) {
        *slot = EXP[lc + LOG[x] as usize];
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference multiplication by carry-less shift-and-add with reduction.
    fn slow_mul(mut a: u8, mut b: u8) -> u8 {
        let mut result = 0u8;
        while b != 0 {
            if b & 1 != 0 {
                result ^= a;
            }
            let high = a & 0x80 != 0;
            a <<= 1;
            if high {
                a ^= (POLYNOMIAL & 0xFF) as u8;
            }
            b >>= 1;
        }
        result
    }

    #[test]
    fn exp_log_are_inverse_maps() {
        for (i, &e) in EXP.iter().enumerate().take(255) {
            assert_ne!(e, 0, "generator powers are never zero");
            assert_eq!(LOG[e as usize] as usize, i);
        }
    }

    #[test]
    fn exp_table_wraps() {
        for i in 0..255usize {
            assert_eq!(EXP[i], EXP[i + 255]);
        }
    }

    #[test]
    fn exp_values_are_distinct() {
        let mut seen = [false; 256];
        for i in 0..255usize {
            assert!(!seen[EXP[i] as usize], "duplicate exp value at {i}");
            seen[EXP[i] as usize] = true;
        }
        assert!(!seen[0], "zero never appears in the exp table");
    }

    #[test]
    fn table_mul_matches_reference() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), slow_mul(a, b), "mismatch at {a} * {b}");
            }
        }
    }

    #[test]
    fn mul_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(1, a), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
        }
    }

    #[test]
    fn div_inverts_mul() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                assert_eq!(div(mul(a, b), b), a);
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = div(3, 0);
    }

    #[test]
    fn inverse_round_trips() {
        assert_eq!(inverse(0), None);
        for a in 1..=255u8 {
            let inv = inverse(a).unwrap();
            assert_eq!(mul(a, inv), 1, "a={a}");
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in 0..=255u8 {
            let mut acc = 1u8;
            for n in 0..600u32 {
                assert_eq!(pow(a, n), acc, "a={a} n={n}");
                acc = mul(acc, a);
            }
        }
    }

    #[test]
    fn pow_zero_exponent_is_one() {
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(17, 0), 1);
    }

    #[test]
    fn mul_row_matches_scalar_mul() {
        for c in [0u8, 1, 2, 5, 0x1D, 0x80, 0xFF] {
            let row = mul_row(c);
            for x in 0..=255u8 {
                assert_eq!(row[x as usize], mul(c, x));
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        // 0x02 must generate all 255 non-zero elements.
        let mut x = 1u8;
        let mut count = 0;
        loop {
            x = mul(x, GENERATOR);
            count += 1;
            if x == 1 {
                break;
            }
        }
        assert_eq!(count, 255);
    }
}
