//! Dense matrices over GF(2^8).
//!
//! The matrices here are small (at most 256×256 for any supported erasure
//! code), so a simple row-major `Vec<u8>` representation with Gauss–Jordan
//! elimination is both adequate and easy to audit.

use core::fmt;

use crate::tables;
use crate::Gf256;

/// Errors produced by matrix operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixError {
    /// The matrix is not square, but the operation requires a square matrix.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// The matrix is singular and cannot be inverted.
    Singular,
    /// Dimensions of the operands are incompatible.
    DimensionMismatch {
        /// Description of the mismatch.
        context: &'static str,
    },
    /// A requested row or column index is out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The valid bound (exclusive).
        bound: usize,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::NotSquare { rows, cols } => {
                write!(f, "matrix of size {rows}x{cols} is not square")
            }
            MatrixError::Singular => write!(f, "matrix is singular"),
            MatrixError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            MatrixError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (< {bound})")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

/// A dense row-major matrix over GF(2^8).
///
/// # Example
///
/// ```
/// use pbrs_gf::Matrix;
///
/// let v = Matrix::vandermonde(4, 3);
/// // Any 3 rows of a Vandermonde matrix over distinct points are invertible.
/// let top = v.submatrix_rows(&[0, 1, 2]).unwrap();
/// let inv = top.inverted().unwrap();
/// assert_eq!(top.multiply(&inv).unwrap(), Matrix::identity(3));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:02x} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a zero matrix of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major byte vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<u8>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from nested slices, one per row.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or the input is empty.
    pub fn from_nested(rows: &[&[u8]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// A `rows`×`cols` Vandermonde matrix whose row `i` is
    /// `[α_i^0, α_i^1, ..., α_i^(cols-1)]` with `α_i = generator^i`, so all
    /// evaluation points are distinct for `rows ≤ 255`.
    ///
    /// # Panics
    ///
    /// Panics if `rows > 255` (evaluation points would repeat).
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        assert!(rows <= 255, "at most 255 distinct evaluation points exist");
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            let x = Gf256::alpha(r);
            let mut acc = Gf256::ONE;
            for c in 0..cols {
                m.set(r, c, acc.value());
                acc *= x;
            }
        }
        m
    }

    /// A `rows`×`cols` Cauchy matrix with entries `1 / (x_i + y_j)` where the
    /// `x_i` and `y_j` are distinct field elements. Every square submatrix of
    /// a Cauchy matrix is invertible.
    ///
    /// # Panics
    ///
    /// Panics if `rows + cols > 256`.
    pub fn cauchy(rows: usize, cols: usize) -> Self {
        assert!(rows + cols <= 256, "need rows + cols distinct elements");
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            // x_i = cols + r, y_j = j: disjoint index ranges give distinct sums.
            for c in 0..cols {
                let denom = Gf256::new((cols + r) as u8) + Gf256::new(c as u8);
                // pbrs-lint: allow(panic-hygiene) -- Cauchy points are drawn from disjoint sets, so the sum is non-zero
                let v = denom.inverse().expect("x_i + y_j is never zero");
                m.set(r, c, v.value());
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Entry accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> u8 {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Entry mutator.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: u8) {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// A view of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()`.
    pub fn row(&self, row: usize) -> &[u8] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[u8]> {
        self.data.chunks_exact(self.cols)
    }

    /// The underlying row-major data.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `self.cols() != rhs.rows()`.
    pub fn multiply(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::DimensionMismatch {
                context: "lhs.cols must equal rhs.rows",
            });
        }
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    let prod = tables::mul(a, rhs.get(k, c));
                    let idx = r * out.cols + c;
                    out.data[idx] ^= prod;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `v.len() != cols()`.
    pub fn multiply_vec(&self, v: &[u8]) -> Result<Vec<u8>, MatrixError> {
        if v.len() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                context: "vector length must equal matrix cols",
            });
        }
        let mut out = vec![0u8; self.rows];
        for (r, slot) in out.iter_mut().enumerate() {
            let mut acc = 0u8;
            for (c, &vc) in v.iter().enumerate() {
                acc ^= tables::mul(self.get(r, c), vc);
            }
            *slot = acc;
        }
        Ok(out)
    }

    /// Horizontal concatenation `[self | rhs]`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if the row counts differ.
    pub fn augment(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.rows != rhs.rows {
            return Err(MatrixError::DimensionMismatch {
                context: "augment requires equal row counts",
            });
        }
        let mut out = Matrix::zero(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(r, c, self.get(r, c));
            }
            for c in 0..rhs.cols {
                out.set(r, self.cols + c, rhs.get(r, c));
            }
        }
        Ok(out)
    }

    /// Vertical concatenation of `self` on top of `bottom`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if the column counts differ.
    pub fn stack(&self, bottom: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != bottom.cols {
            return Err(MatrixError::DimensionMismatch {
                context: "stack requires equal column counts",
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&bottom.data);
        Ok(Matrix {
            rows: self.rows + bottom.rows,
            cols: self.cols,
            data,
        })
    }

    /// Extracts the submatrix made of the given rows, in the given order.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfBounds`] for an invalid row index.
    pub fn submatrix_rows(&self, rows: &[usize]) -> Result<Matrix, MatrixError> {
        let mut out = Matrix::zero(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            if r >= self.rows {
                return Err(MatrixError::IndexOutOfBounds {
                    index: r,
                    bound: self.rows,
                });
            }
            out.data[i * self.cols..(i + 1) * self.cols].copy_from_slice(self.row(r));
        }
        Ok(out)
    }

    /// Extracts a rectangular region `[row0, row1) x [col0, col1)`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::IndexOutOfBounds`] if the region exceeds the
    /// matrix bounds or is empty.
    pub fn submatrix(
        &self,
        row0: usize,
        col0: usize,
        row1: usize,
        col1: usize,
    ) -> Result<Matrix, MatrixError> {
        if row1 > self.rows || row0 >= row1 {
            return Err(MatrixError::IndexOutOfBounds {
                index: row1,
                bound: self.rows,
            });
        }
        if col1 > self.cols || col0 >= col1 {
            return Err(MatrixError::IndexOutOfBounds {
                index: col1,
                bound: self.cols,
            });
        }
        let mut out = Matrix::zero(row1 - row0, col1 - col0);
        for r in row0..row1 {
            for c in col0..col1 {
                out.set(r - row0, c - col0, self.get(r, c));
            }
        }
        Ok(out)
    }

    /// The transpose of the matrix.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zero(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Swaps two rows in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (first, second) = self.data.split_at_mut(hi * self.cols);
        first[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut second[..self.cols]);
    }

    /// The rank of the matrix (dimension of its row space).
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        let mut rank = 0;
        let mut pivot_row = 0;
        for col in 0..m.cols {
            // Find a pivot at or below pivot_row.
            let mut pivot = None;
            for r in pivot_row..m.rows {
                if m.get(r, col) != 0 {
                    pivot = Some(r);
                    break;
                }
            }
            let Some(p) = pivot else { continue };
            m.swap_rows(pivot_row, p);
            // pbrs-lint: allow(panic-hygiene) -- pivot was chosen as a non-zero entry by the search above
            let inv = tables::inverse(m.get(pivot_row, col)).expect("pivot is non-zero");
            for c in col..m.cols {
                let v = tables::mul(m.get(pivot_row, c), inv);
                m.set(pivot_row, c, v);
            }
            for r in 0..m.rows {
                if r != pivot_row && m.get(r, col) != 0 {
                    let factor = m.get(r, col);
                    for c in col..m.cols {
                        let v = m.get(r, c) ^ tables::mul(factor, m.get(pivot_row, c));
                        m.set(r, c, v);
                    }
                }
            }
            rank += 1;
            pivot_row += 1;
            if pivot_row == m.rows {
                break;
            }
        }
        rank
    }

    /// Returns `true` if the matrix is square and invertible.
    pub fn is_invertible(&self) -> bool {
        self.is_square() && self.rank() == self.rows
    }

    /// The inverse of the matrix, computed by Gauss–Jordan elimination.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::NotSquare`] for non-square inputs and
    /// [`MatrixError::Singular`] when no inverse exists.
    pub fn inverted(&self) -> Result<Matrix, MatrixError> {
        if !self.is_square() {
            return Err(MatrixError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let n = self.rows;
        let mut work = self.augment(&Matrix::identity(n))?;
        // Forward elimination with partial "pivoting" (any non-zero pivot).
        for col in 0..n {
            let pivot = (col..n).find(|&r| work.get(r, col) != 0);
            let Some(pivot) = pivot else {
                return Err(MatrixError::Singular);
            };
            work.swap_rows(col, pivot);
            // pbrs-lint: allow(panic-hygiene) -- pivot was chosen as a non-zero entry by the search above
            let inv = tables::inverse(work.get(col, col)).expect("pivot is non-zero");
            for c in 0..2 * n {
                let v = tables::mul(work.get(col, c), inv);
                work.set(col, c, v);
            }
            for r in 0..n {
                if r != col && work.get(r, col) != 0 {
                    let factor = work.get(r, col);
                    for c in 0..2 * n {
                        let v = work.get(r, c) ^ tables::mul(factor, work.get(col, c));
                        work.set(r, c, v);
                    }
                }
            }
        }
        work.submatrix(0, n, n, 2 * n)
    }

    /// Solves `self * x = b` for `x` when `self` is square and invertible.
    ///
    /// # Errors
    ///
    /// Propagates [`MatrixError::NotSquare`] / [`MatrixError::Singular`] from
    /// inversion, and [`MatrixError::DimensionMismatch`] if `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[u8]) -> Result<Vec<u8>, MatrixError> {
        if b.len() != self.rows {
            return Err(MatrixError::DimensionMismatch {
                context: "rhs length must equal matrix rows",
            });
        }
        let inv = self.inverted()?;
        inv.multiply_vec(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication() {
        let id = Matrix::identity(4);
        let m = Matrix::vandermonde(4, 4);
        assert_eq!(id.multiply(&m).unwrap(), m);
        assert_eq!(m.multiply(&id).unwrap(), m);
    }

    #[test]
    fn vandermonde_rows_and_values() {
        let v = Matrix::vandermonde(5, 3);
        assert_eq!(v.rows(), 5);
        assert_eq!(v.cols(), 3);
        for r in 0..5 {
            assert_eq!(v.get(r, 0), 1);
            let x = Gf256::alpha(r);
            assert_eq!(v.get(r, 1), x.value());
            assert_eq!(v.get(r, 2), (x * x).value());
        }
    }

    #[test]
    fn any_k_rows_of_vandermonde_are_invertible() {
        let v = Matrix::vandermonde(8, 4);
        // Exhaustively test all 4-row subsets of 8 rows (70 subsets).
        let mut subsets = vec![];
        for a in 0..8 {
            for b in a + 1..8 {
                for c in b + 1..8 {
                    for d in c + 1..8 {
                        subsets.push([a, b, c, d]);
                    }
                }
            }
        }
        assert_eq!(subsets.len(), 70);
        for s in subsets {
            let sub = v.submatrix_rows(&s).unwrap();
            assert!(sub.is_invertible(), "subset {s:?} should be invertible");
        }
    }

    #[test]
    fn cauchy_square_submatrices_invertible() {
        let m = Matrix::cauchy(4, 6);
        for a in 0..4 {
            for b in a + 1..4 {
                let sub = m
                    .submatrix_rows(&[a, b])
                    .unwrap()
                    .submatrix(0, 0, 2, 2)
                    .unwrap();
                assert!(sub.is_invertible());
            }
        }
    }

    #[test]
    fn inverse_round_trip() {
        let m = Matrix::vandermonde(6, 6);
        let inv = m.inverted().unwrap();
        assert_eq!(m.multiply(&inv).unwrap(), Matrix::identity(6));
        assert_eq!(inv.multiply(&m).unwrap(), Matrix::identity(6));
    }

    #[test]
    fn singular_matrix_rejected() {
        let mut m = Matrix::zero(3, 3);
        // Two identical rows -> singular.
        for c in 0..3 {
            m.set(0, c, c as u8 + 1);
            m.set(1, c, c as u8 + 1);
            m.set(2, c, (c as u8 + 1) * 2);
        }
        assert_eq!(m.inverted().unwrap_err(), MatrixError::Singular);
        assert!(!m.is_invertible());
        assert!(m.rank() < 3);
    }

    #[test]
    fn non_square_inversion_rejected() {
        let m = Matrix::zero(2, 3);
        assert_eq!(
            m.inverted().unwrap_err(),
            MatrixError::NotSquare { rows: 2, cols: 3 }
        );
    }

    #[test]
    fn multiply_dimension_mismatch() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        assert!(matches!(
            a.multiply(&b).unwrap_err(),
            MatrixError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn multiply_vec_matches_multiply() {
        let m = Matrix::vandermonde(5, 4);
        let v = vec![9u8, 0, 0xAB, 3];
        let as_col = Matrix::from_rows(4, 1, v.clone());
        let prod = m.multiply(&as_col).unwrap();
        let vecprod = m.multiply_vec(&v).unwrap();
        for (r, &expect) in vecprod.iter().enumerate() {
            assert_eq!(prod.get(r, 0), expect);
        }
    }

    #[test]
    fn augment_and_stack_and_submatrix() {
        let a = Matrix::identity(2);
        let b = Matrix::from_nested(&[&[5, 6], &[7, 8]]);
        let aug = a.augment(&b).unwrap();
        assert_eq!(aug.cols(), 4);
        assert_eq!(aug.get(0, 2), 5);
        assert_eq!(aug.get(1, 3), 8);
        let st = a.stack(&b).unwrap();
        assert_eq!(st.rows(), 4);
        assert_eq!(st.get(2, 0), 5);
        let sub = st.submatrix(2, 0, 4, 2).unwrap();
        assert_eq!(sub, b);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::cauchy(3, 5);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed().rows(), 5);
    }

    #[test]
    fn solve_linear_system() {
        let m = Matrix::vandermonde(4, 4);
        let x = vec![1u8, 2, 3, 4];
        let b = m.multiply_vec(&x).unwrap();
        let solved = m.solve(&b).unwrap();
        assert_eq!(solved, x);
    }

    #[test]
    fn rank_of_rectangular() {
        let v = Matrix::vandermonde(6, 3);
        assert_eq!(v.rank(), 3);
        assert_eq!(v.transposed().rank(), 3);
        let z = Matrix::zero(4, 4);
        assert_eq!(z.rank(), 0);
    }

    #[test]
    fn swap_rows_works() {
        let mut m = Matrix::from_nested(&[&[1, 2], &[3, 4], &[5, 6]]);
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[5, 6]);
        assert_eq!(m.row(2), &[1, 2]);
        m.swap_rows(1, 1);
        assert_eq!(m.row(1), &[3, 4]);
    }

    #[test]
    fn debug_output_contains_dimensions() {
        let m = Matrix::identity(2);
        let s = format!("{m:?}");
        assert!(s.contains("2x2"));
    }

    #[test]
    fn submatrix_rows_out_of_bounds() {
        let m = Matrix::identity(2);
        assert!(matches!(
            m.submatrix_rows(&[0, 5]).unwrap_err(),
            MatrixError::IndexOutOfBounds { index: 5, bound: 2 }
        ));
    }
}
