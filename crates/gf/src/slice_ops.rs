//! Bulk kernels over byte slices.
//!
//! Erasure-code encode/decode is dominated by operations of the form
//! `dst ^= c * src` applied to whole shards. These kernels use a per-scalar
//! 256-entry lookup row so the inner loop is a single table lookup and XOR
//! per byte, which is the classic software approach used by HDFS-RAID and
//! Jerasure.

use crate::tables;

/// `dst[i] ^= src[i]` for all `i`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_slice length mismatch");
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= *s;
    }
}

/// `dst[i] = c * src[i]` for all `i`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_slice length mismatch");
    if c == 0 {
        dst.fill(0);
        return;
    }
    if c == 1 {
        dst.copy_from_slice(src);
        return;
    }
    let row = tables::mul_row(c);
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = row[*s as usize];
    }
}

/// `dst[i] ^= c * src[i]` for all `i` — the fused multiply-accumulate used by
/// matrix-vector products over shards.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_add_slice length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_slice(dst, src);
        return;
    }
    let row = tables::mul_row(c);
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= row[*s as usize];
    }
}

/// Multiply a slice by `c` in place.
#[inline]
pub fn mul_slice_in_place(c: u8, data: &mut [u8]) {
    if c == 0 {
        data.fill(0);
        return;
    }
    if c == 1 {
        return;
    }
    let row = tables::mul_row(c);
    for d in data.iter_mut() {
        *d = row[*d as usize];
    }
}

/// Computes `out[i] = Σ_j coeffs[j] * srcs[j][i]`, i.e. one output shard as a
/// linear combination of input shards.
///
/// # Panics
///
/// Panics if `coeffs.len() != srcs.len()` or if any source length differs
/// from `out.len()`.
pub fn linear_combination(coeffs: &[u8], srcs: &[&[u8]], out: &mut [u8]) {
    assert_eq!(
        coeffs.len(),
        srcs.len(),
        "one coefficient is required per source shard"
    );
    out.fill(0);
    for (&c, src) in coeffs.iter().zip(srcs.iter()) {
        mul_add_slice(c, src, out);
    }
}

/// Computes `out[i] = Σ_j coeffs[j] * srcs_j[i]` over any iterator of source
/// shards, without materialising a `&[&[u8]]` table first.
///
/// This is the zero-copy sibling of [`linear_combination`]: codecs that keep
/// their shards in one contiguous backing buffer (shard views) can feed the
/// shard slices straight from the view, so the hot encode/repair path
/// performs no per-shard allocation at all.
///
/// # Panics
///
/// Panics if the iterator does not yield exactly `coeffs.len()` sources or
/// if any source length differs from `out.len()`.
pub fn linear_combination_into<'a, I>(coeffs: &[u8], srcs: I, out: &mut [u8])
where
    I: IntoIterator<Item = &'a [u8]>,
{
    out.fill(0);
    accumulate_combination(coeffs, srcs, out);
}

/// Computes `out[i] ^= Σ_j coeffs[j] * srcs_j[i]`, accumulating a linear
/// combination of source shards onto an existing output.
///
/// Used when one output shard is assembled from several partial
/// combinations (e.g. stripping a piggyback after a substripe decode).
///
/// # Panics
///
/// Panics if the iterator does not yield exactly `coeffs.len()` sources or
/// if any source length differs from `out.len()`.
pub fn accumulate_combination<'a, I>(coeffs: &[u8], srcs: I, out: &mut [u8])
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut remaining = coeffs.iter();
    for src in srcs {
        let &c = remaining
            .next()
            .expect("more source shards than coefficients");
        mul_add_slice(c, src, out);
    }
    assert_eq!(
        remaining.len(),
        0,
        "one source shard is required per coefficient"
    );
}

/// Dot product of two equal-length byte vectors interpreted as GF(2^8)
/// vectors: `Σ_i a[i] * b[i]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[u8], b: &[u8]) -> u8 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = 0u8;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc ^= tables::mul(x, y);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(n: usize, seed: u8) -> Vec<u8> {
        (0..n)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn xor_slice_basic() {
        let mut a = vec![0xFF, 0x00, 0xAA];
        xor_slice(&mut a, &[0x0F, 0xF0, 0xAA]);
        assert_eq!(a, vec![0xF0, 0xF0, 0x00]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_slice_length_mismatch_panics() {
        let mut a = vec![0u8; 3];
        xor_slice(&mut a, &[0u8; 4]);
    }

    #[test]
    fn mul_slice_matches_scalar() {
        let src = buf(257, 3);
        for c in [0u8, 1, 2, 0x1D, 0x8E, 0xFF] {
            let mut dst = vec![0u8; src.len()];
            mul_slice(c, &src, &mut dst);
            for (s, d) in src.iter().zip(dst.iter()) {
                assert_eq!(*d, tables::mul(c, *s));
            }
        }
    }

    #[test]
    fn mul_add_slice_matches_scalar() {
        let src = buf(300, 7);
        for c in [0u8, 1, 2, 0x1D, 0x8E, 0xFF] {
            let mut dst = buf(300, 99);
            let before = dst.clone();
            mul_add_slice(c, &src, &mut dst);
            for i in 0..src.len() {
                assert_eq!(dst[i], before[i] ^ tables::mul(c, src[i]));
            }
        }
    }

    #[test]
    fn mul_slice_in_place_matches() {
        for c in [0u8, 1, 5, 0xFF] {
            let mut a = buf(64, 11);
            let expect: Vec<u8> = a.iter().map(|&x| tables::mul(c, x)).collect();
            mul_slice_in_place(c, &mut a);
            assert_eq!(a, expect);
        }
    }

    #[test]
    fn linear_combination_matches_manual() {
        let s1 = buf(128, 1);
        let s2 = buf(128, 2);
        let s3 = buf(128, 3);
        let coeffs = [3u8, 0, 0x1D];
        let mut out = vec![0u8; 128];
        linear_combination(&coeffs, &[&s1, &s2, &s3], &mut out);
        for i in 0..128 {
            let expect = tables::mul(3, s1[i]) ^ tables::mul(0, s2[i]) ^ tables::mul(0x1D, s3[i]);
            assert_eq!(out[i], expect);
        }
    }

    #[test]
    fn linear_combination_with_no_sources_is_zero() {
        let mut out = vec![0xAAu8; 16];
        linear_combination(&[], &[], &mut out);
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn linear_combination_into_matches_slice_table_variant() {
        let s1 = buf(96, 4);
        let s2 = buf(96, 9);
        let s3 = buf(96, 17);
        let coeffs = [0x02u8, 0x00, 0x8E];
        let mut expect = vec![0u8; 96];
        linear_combination(&coeffs, &[&s1, &s2, &s3], &mut expect);
        let mut out = vec![0xFFu8; 96]; // stale contents must be overwritten
        linear_combination_into(&coeffs, [&s1[..], &s2[..], &s3[..]], &mut out);
        assert_eq!(out, expect);
    }

    #[test]
    fn accumulate_combination_xors_onto_existing_output() {
        let s1 = buf(64, 2);
        let s2 = buf(64, 3);
        let coeffs = [0x1Du8, 0x31];
        let mut out = buf(64, 50);
        let base = out.clone();
        accumulate_combination(&coeffs, [&s1[..], &s2[..]], &mut out);
        for i in 0..64 {
            let expect = base[i] ^ tables::mul(0x1D, s1[i]) ^ tables::mul(0x31, s2[i]);
            assert_eq!(out[i], expect);
        }
    }

    #[test]
    #[should_panic(expected = "one source shard is required per coefficient")]
    fn combination_variants_reject_missing_sources() {
        let s1 = buf(8, 1);
        let mut out = vec![0u8; 8];
        linear_combination_into(&[1u8, 2], [&s1[..]], &mut out);
    }

    #[test]
    #[should_panic(expected = "more source shards than coefficients")]
    fn combination_variants_reject_excess_sources() {
        let s1 = buf(8, 1);
        let s2 = buf(8, 2);
        let mut out = vec![0u8; 8];
        linear_combination_into(&[1u8], [&s1[..], &s2[..]], &mut out);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[], &[]), 0);
        assert_eq!(dot(&[1, 2, 3], &[1, 1, 1]), 1 ^ 2 ^ 3);
        assert_eq!(dot(&[5], &[0]), 0);
        assert_eq!(dot(&[7], &[9]), tables::mul(7, 9));
    }

    #[test]
    fn mul_add_is_linear_in_accumulation() {
        // Applying c1 then c2 over the same src equals applying (c1 ^ c2)
        // because accumulation is XOR and multiplication distributes.
        let src = buf(200, 5);
        let mut d1 = vec![0u8; 200];
        mul_add_slice(0x31, &src, &mut d1);
        mul_add_slice(0x47, &src, &mut d1);
        let mut d2 = vec![0u8; 200];
        mul_add_slice(0x31 ^ 0x47, &src, &mut d2);
        assert_eq!(d1, d2);
    }
}
