//! Bulk kernels over byte slices.
//!
//! Erasure-code encode/decode is dominated by operations of the form
//! `dst ^= c * src` applied to whole shards. Each kernel here exists in
//! several implementations — a per-byte 256-entry lookup oracle, a portable
//! bit-sliced SWAR path, and x86-64 `pshufb` split-nibble paths — selected at
//! runtime by [`crate::backend`] (overridable with the `PBRS_GF_BACKEND`
//! environment variable). The default functions dispatch to the active
//! backend; each also has a `*_using` twin taking an explicit [`Backend`],
//! which benchmarks and the cross-backend equivalence tests use to compare
//! implementations without touching process-global state.
//!
//! For encoding, [`matrix_mul_into`] is the preferred entry point: it
//! produces *all* output shards of a generator-matrix product in one pass
//! over the sources, walking L1-sized column blocks so each source byte is
//! read from memory once instead of once per output.

use crate::backend::{self, Backend};
use crate::swar;
use crate::tables;

#[cfg(target_arch = "x86_64")]
use crate::simd;

/// Column-block width of [`matrix_mul_into`], in bytes.
///
/// Sized so one source block plus the output blocks of a wide code
/// (`r = 4` parities and then some) stay resident in a 32 KiB L1d cache
/// while the kernels stream over them.
pub const MATRIX_BLOCK: usize = 4096;

#[inline]
fn mul_add_kernel(backend: Backend, c: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert!(c > 1, "dispatcher handles 0 and 1");
    match backend {
        Backend::Scalar => {
            let row = tables::mul_row(c);
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d ^= row[*s as usize];
            }
        }
        Backend::Swar => swar::mul_add_slice(c, src, dst),
        #[cfg(target_arch = "x86_64")]
        Backend::Ssse3 => simd::mul_add_ssse3(c, src, dst),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => simd::mul_add_avx2(c, src, dst),
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Ssse3 | Backend::Avx2 => swar::mul_add_slice(c, src, dst),
    }
}

#[inline]
fn mul_kernel(backend: Backend, c: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert!(c > 1, "dispatcher handles 0 and 1");
    match backend {
        Backend::Scalar => {
            let row = tables::mul_row(c);
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d = row[*s as usize];
            }
        }
        Backend::Swar => swar::mul_slice(c, src, dst),
        #[cfg(target_arch = "x86_64")]
        Backend::Ssse3 => simd::mul_ssse3(c, src, dst),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => simd::mul_avx2(c, src, dst),
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Ssse3 | Backend::Avx2 => swar::mul_slice(c, src, dst),
    }
}

/// `dst[i] ^= src[i]` for all `i`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_slice length mismatch");
    swar::xor_slice(dst, src);
}

/// `dst[i] = c * src[i]` for all `i`, on the active backend.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    mul_slice_using(backend::active(), c, src, dst);
}

/// [`mul_slice`] on an explicitly chosen backend.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_slice_using(backend: Backend, c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_slice length mismatch");
    if c == 0 {
        dst.fill(0);
        return;
    }
    if c == 1 {
        dst.copy_from_slice(src);
        return;
    }
    mul_kernel(backend, c, src, dst);
}

/// `dst[i] ^= c * src[i]` for all `i` — the fused multiply-accumulate used by
/// matrix-vector products over shards — on the active backend.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    mul_add_slice_using(backend::active(), c, src, dst);
}

/// [`mul_add_slice`] on an explicitly chosen backend.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_add_slice_using(backend: Backend, c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(dst.len(), src.len(), "mul_add_slice length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        swar::xor_slice(dst, src);
        return;
    }
    mul_add_kernel(backend, c, src, dst);
}

/// Multiply a slice by `c` in place.
#[inline]
pub fn mul_slice_in_place(c: u8, data: &mut [u8]) {
    if c == 0 {
        data.fill(0);
        return;
    }
    if c == 1 {
        return;
    }
    match backend::active() {
        Backend::Scalar => {
            let row = tables::mul_row(c);
            for d in data.iter_mut() {
                *d = row[*d as usize];
            }
        }
        // The in-place form is only used on matrix-sized rows, never on
        // shard-sized buffers; the SWAR word loop is plenty there.
        _ => swar::mul_slice_in_place(c, data),
    }
}

/// Computes `out[i] = Σ_j coeffs[j] * srcs[j][i]`, i.e. one output shard as a
/// linear combination of input shards.
///
/// For producing *several* outputs from the same sources (an encode), prefer
/// [`matrix_mul_into`], which reads each source once for all outputs.
///
/// # Panics
///
/// Panics if `coeffs.len() != srcs.len()` or if any source length differs
/// from `out.len()`.
pub fn linear_combination(coeffs: &[u8], srcs: &[&[u8]], out: &mut [u8]) {
    assert_eq!(
        coeffs.len(),
        srcs.len(),
        "one coefficient is required per source shard"
    );
    out.fill(0);
    for (&c, src) in coeffs.iter().zip(srcs.iter()) {
        mul_add_slice(c, src, out);
    }
}

/// Computes `out[i] = Σ_j coeffs[j] * srcs_j[i]` over any iterator of source
/// shards, without materialising a `&[&[u8]]` table first.
///
/// This is the zero-copy sibling of [`linear_combination`]: codecs that keep
/// their shards in one contiguous backing buffer (shard views) can feed the
/// shard slices straight from the view, so the hot encode/repair path
/// performs no per-shard allocation at all.
///
/// # Panics
///
/// Panics if the iterator does not yield exactly `coeffs.len()` sources or
/// if any source length differs from `out.len()`.
pub fn linear_combination_into<'a, I>(coeffs: &[u8], srcs: I, out: &mut [u8])
where
    I: IntoIterator<Item = &'a [u8]>,
{
    out.fill(0);
    accumulate_combination(coeffs, srcs, out);
}

/// [`linear_combination_into`] on an explicitly chosen backend.
///
/// # Panics
///
/// Same conditions as [`linear_combination_into`].
pub fn linear_combination_into_using<'a, I>(
    backend: Backend,
    coeffs: &[u8],
    srcs: I,
    out: &mut [u8],
) where
    I: IntoIterator<Item = &'a [u8]>,
{
    out.fill(0);
    accumulate_combination_using(backend, coeffs, srcs, out);
}

/// Computes `out[i] ^= Σ_j coeffs[j] * srcs_j[i]`, accumulating a linear
/// combination of source shards onto an existing output.
///
/// Used when one output shard is assembled from several partial
/// combinations (e.g. stripping a piggyback after a substripe decode).
///
/// # Panics
///
/// Panics if the iterator does not yield exactly `coeffs.len()` sources or
/// if any source length differs from `out.len()`.
pub fn accumulate_combination<'a, I>(coeffs: &[u8], srcs: I, out: &mut [u8])
where
    I: IntoIterator<Item = &'a [u8]>,
{
    accumulate_combination_using(backend::active(), coeffs, srcs, out);
}

/// [`accumulate_combination`] on an explicitly chosen backend.
///
/// # Panics
///
/// Same conditions as [`accumulate_combination`].
pub fn accumulate_combination_using<'a, I>(backend: Backend, coeffs: &[u8], srcs: I, out: &mut [u8])
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut remaining = coeffs.iter();
    for src in srcs {
        let &c = remaining
            .next()
            // pbrs-lint: allow(panic-hygiene) -- caller supplies at least one coefficient per source shard
            .expect("more source shards than coefficients");
        mul_add_slice_using(backend, c, src, out);
    }
    assert_eq!(
        remaining.len(),
        0,
        "one source shard is required per coefficient"
    );
}

/// Computes every output shard of a generator-matrix product in one
/// cache-blocked pass: `outs[i] = Σ_j rows[i][j] * srcs[j]`.
///
/// `rows[i]` holds the coefficient row of output `i` (one coefficient per
/// source). This is the encode kernel: where a row-at-a-time loop reads the
/// `k` source shards once *per parity*, this walks the shards in
/// [`MATRIX_BLOCK`]-sized column blocks and applies every row to each
/// source block while it is hot in L1 — the sources cross the memory bus
/// once for all `r` outputs. Prior contents of `outs` are overwritten.
///
/// # Panics
///
/// Panics if `rows.len() != outs.len()`, if any row's length differs from
/// `srcs.len()`, or if any source or output length differs.
pub fn matrix_mul_into(rows: &[&[u8]], srcs: &[&[u8]], outs: &mut [&mut [u8]]) {
    matrix_mul_into_using(backend::active(), rows, srcs, outs);
}

/// [`matrix_mul_into`] on an explicitly chosen backend.
///
/// # Panics
///
/// Same conditions as [`matrix_mul_into`].
pub fn matrix_mul_into_using(
    backend: Backend,
    rows: &[&[u8]],
    srcs: &[&[u8]],
    outs: &mut [&mut [u8]],
) {
    assert_eq!(
        rows.len(),
        outs.len(),
        "one coefficient row is required per output shard"
    );
    for row in rows {
        assert_eq!(
            row.len(),
            srcs.len(),
            "one coefficient is required per source shard"
        );
    }
    let Some(len) = outs.first().map(|o| o.len()) else {
        return;
    };
    for out in outs.iter() {
        assert_eq!(out.len(), len, "output shard length mismatch");
    }
    for src in srcs {
        assert_eq!(src.len(), len, "source shard length mismatch");
    }
    if srcs.is_empty() {
        for out in outs.iter_mut() {
            out.fill(0);
        }
        return;
    }
    let swar_multi = match backend {
        Backend::Swar => true,
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Ssse3 | Backend::Avx2 => true,
        _ => false,
    };
    // Matrices of only 0/1 coefficients (replication, plain XOR parities)
    // reduce entirely to the copy/XOR shortcuts of the generic path; the
    // plane-sharing kernel would only add zeroing and accumulate passes.
    let swar_multi = swar_multi && rows.iter().any(|row| row.iter().any(|&c| c > 1));
    if swar_multi {
        // The bit-sliced backend has a dedicated multi-output kernel that
        // shares each source block's doubling chain across every output.
        for out in outs.iter_mut() {
            out.fill(0);
        }
        swar::matrix_mul_add(rows, srcs, outs);
        return;
    }
    let mut start = 0;
    while start < len {
        let end = len.min(start + MATRIX_BLOCK);
        for (j, src) in srcs.iter().enumerate() {
            let src_block = &src[start..end];
            for (row, out) in rows.iter().zip(outs.iter_mut()) {
                let out_block = &mut out[start..end];
                if j == 0 {
                    // First source initialises the block (also zeroing it
                    // when the leading coefficient is 0).
                    mul_slice_using(backend, row[0], src_block, out_block);
                } else {
                    mul_add_slice_using(backend, row[j], src_block, out_block);
                }
            }
        }
        start = end;
    }
}

/// Dot product of two equal-length byte vectors interpreted as GF(2^8)
/// vectors: `Σ_i a[i] * b[i]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[u8], b: &[u8]) -> u8 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = 0u8;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc ^= tables::mul(x, y);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(n: usize, seed: u8) -> Vec<u8> {
        (0..n)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn xor_slice_basic() {
        let mut a = vec![0xFF, 0x00, 0xAA];
        xor_slice(&mut a, &[0x0F, 0xF0, 0xAA]);
        assert_eq!(a, vec![0xF0, 0xF0, 0x00]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_slice_length_mismatch_panics() {
        let mut a = vec![0u8; 3];
        xor_slice(&mut a, &[0u8; 4]);
    }

    #[test]
    fn mul_slice_matches_scalar() {
        let src = buf(257, 3);
        for c in [0u8, 1, 2, 0x1D, 0x8E, 0xFF] {
            let mut dst = vec![0u8; src.len()];
            mul_slice(c, &src, &mut dst);
            for (s, d) in src.iter().zip(dst.iter()) {
                assert_eq!(*d, tables::mul(c, *s));
            }
        }
    }

    #[test]
    fn mul_add_slice_matches_scalar() {
        let src = buf(300, 7);
        for c in [0u8, 1, 2, 0x1D, 0x8E, 0xFF] {
            let mut dst = buf(300, 99);
            let before = dst.clone();
            mul_add_slice(c, &src, &mut dst);
            for i in 0..src.len() {
                assert_eq!(dst[i], before[i] ^ tables::mul(c, src[i]));
            }
        }
    }

    #[test]
    fn every_supported_backend_agrees_with_the_oracle() {
        let src = buf(1000, 13);
        for backend in crate::backend::supported() {
            for c in [0u8, 1, 2, 0x1D, 0x8E, 0xFF] {
                let mut expect = buf(1000, 55);
                let mut got = expect.clone();
                mul_add_slice_using(Backend::Scalar, c, &src, &mut expect);
                mul_add_slice_using(backend, c, &src, &mut got);
                assert_eq!(got, expect, "mul_add backend={backend} c={c}");
                let mut expect = vec![0u8; 1000];
                let mut got = vec![0xEEu8; 1000];
                mul_slice_using(Backend::Scalar, c, &src, &mut expect);
                mul_slice_using(backend, c, &src, &mut got);
                assert_eq!(got, expect, "mul backend={backend} c={c}");
            }
        }
    }

    #[test]
    fn mul_slice_in_place_matches() {
        for c in [0u8, 1, 5, 0xFF] {
            let mut a = buf(64, 11);
            let expect: Vec<u8> = a.iter().map(|&x| tables::mul(c, x)).collect();
            mul_slice_in_place(c, &mut a);
            assert_eq!(a, expect);
        }
    }

    #[test]
    fn linear_combination_matches_manual() {
        let s1 = buf(128, 1);
        let s2 = buf(128, 2);
        let s3 = buf(128, 3);
        let coeffs = [3u8, 0, 0x1D];
        let mut out = vec![0u8; 128];
        linear_combination(&coeffs, &[&s1, &s2, &s3], &mut out);
        for i in 0..128 {
            let expect = tables::mul(3, s1[i]) ^ tables::mul(0, s2[i]) ^ tables::mul(0x1D, s3[i]);
            assert_eq!(out[i], expect);
        }
    }

    #[test]
    fn linear_combination_with_no_sources_is_zero() {
        let mut out = vec![0xAAu8; 16];
        linear_combination(&[], &[], &mut out);
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn linear_combination_into_matches_slice_table_variant() {
        let s1 = buf(96, 4);
        let s2 = buf(96, 9);
        let s3 = buf(96, 17);
        let coeffs = [0x02u8, 0x00, 0x8E];
        let mut expect = vec![0u8; 96];
        linear_combination(&coeffs, &[&s1, &s2, &s3], &mut expect);
        let mut out = vec![0xFFu8; 96]; // stale contents must be overwritten
        linear_combination_into(&coeffs, [&s1[..], &s2[..], &s3[..]], &mut out);
        assert_eq!(out, expect);
    }

    #[test]
    fn accumulate_combination_xors_onto_existing_output() {
        let s1 = buf(64, 2);
        let s2 = buf(64, 3);
        let coeffs = [0x1Du8, 0x31];
        let mut out = buf(64, 50);
        let base = out.clone();
        accumulate_combination(&coeffs, [&s1[..], &s2[..]], &mut out);
        for i in 0..64 {
            let expect = base[i] ^ tables::mul(0x1D, s1[i]) ^ tables::mul(0x31, s2[i]);
            assert_eq!(out[i], expect);
        }
    }

    #[test]
    #[should_panic(expected = "one source shard is required per coefficient")]
    fn combination_variants_reject_missing_sources() {
        let s1 = buf(8, 1);
        let mut out = vec![0u8; 8];
        linear_combination_into(&[1u8, 2], [&s1[..]], &mut out);
    }

    #[test]
    #[should_panic(expected = "more source shards than coefficients")]
    fn combination_variants_reject_excess_sources() {
        let s1 = buf(8, 1);
        let s2 = buf(8, 2);
        let mut out = vec![0u8; 8];
        linear_combination_into(&[1u8], [&s1[..], &s2[..]], &mut out);
    }

    #[test]
    fn matrix_mul_matches_row_at_a_time() {
        // Shard length deliberately larger than one block and not a
        // multiple of it, so the block walk crosses boundaries.
        let len = MATRIX_BLOCK + 321;
        let srcs_owned: Vec<Vec<u8>> = (0..5).map(|i| buf(len, i as u8 * 7 + 1)).collect();
        let srcs: Vec<&[u8]> = srcs_owned.iter().map(|s| s.as_slice()).collect();
        let rows_owned: Vec<Vec<u8>> = vec![
            vec![1, 2, 3, 4, 5],
            vec![0, 0, 0, 0, 0],
            vec![0x1D, 0, 1, 0xFF, 0x8E],
        ];
        let rows: Vec<&[u8]> = rows_owned.iter().map(|r| r.as_slice()).collect();

        let mut expect: Vec<Vec<u8>> = rows.iter().map(|_| vec![0u8; len]).collect();
        for (row, out) in rows.iter().zip(expect.iter_mut()) {
            linear_combination(row, &srcs, out);
        }

        for backend in crate::backend::supported() {
            let mut outs_owned: Vec<Vec<u8>> = rows.iter().map(|_| vec![0xABu8; len]).collect();
            {
                let mut outs: Vec<&mut [u8]> =
                    outs_owned.iter_mut().map(|o| o.as_mut_slice()).collect();
                matrix_mul_into_using(backend, &rows, &srcs, &mut outs);
            }
            assert_eq!(outs_owned, expect, "backend={backend}");
        }
    }

    #[test]
    fn matrix_mul_edge_shapes() {
        // No outputs: nothing to do, no shape panic.
        matrix_mul_into(&[], &[&[1u8, 2][..]], &mut []);
        // No sources: outputs are zeroed.
        let mut out = [0x55u8; 9];
        matrix_mul_into(&[&[][..]], &[], &mut [&mut out[..]]);
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "one coefficient row is required per output shard")]
    fn matrix_mul_rejects_row_output_mismatch() {
        let src = [1u8, 2];
        let mut out = [0u8; 2];
        matrix_mul_into(&[&[1u8][..], &[2u8][..]], &[&src[..]], &mut [&mut out[..]]);
    }

    #[test]
    #[should_panic(expected = "one coefficient is required per source shard")]
    fn matrix_mul_rejects_row_width_mismatch() {
        let src = [1u8, 2];
        let mut out = [0u8; 2];
        matrix_mul_into(&[&[1u8, 2][..]], &[&src[..]], &mut [&mut out[..]]);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[], &[]), 0);
        assert_eq!(dot(&[1, 2, 3], &[1, 1, 1]), 1 ^ 2 ^ 3);
        assert_eq!(dot(&[5], &[0]), 0);
        assert_eq!(dot(&[7], &[9]), tables::mul(7, 9));
    }

    #[test]
    fn mul_add_is_linear_in_accumulation() {
        // Applying c1 then c2 over the same src equals applying (c1 ^ c2)
        // because accumulation is XOR and multiplication distributes.
        let src = buf(200, 5);
        let mut d1 = vec![0u8; 200];
        mul_add_slice(0x31, &src, &mut d1);
        mul_add_slice(0x47, &src, &mut d1);
        let mut d2 = vec![0u8; 200];
        mul_add_slice(0x31 ^ 0x47, &src, &mut d2);
        assert_eq!(d1, d2);
    }
}
