//! Arithmetic over the finite field GF(2^8) and the dense linear algebra
//! needed by erasure codes.
//!
//! This crate is the lowest-level substrate of the Piggybacked-RS
//! reproduction: every byte of every parity in the higher-level crates is
//! produced by the kernels defined here.
//!
//! # Contents
//!
//! * [`Gf256`] — a field element with the usual operator overloads.
//! * [`tables`] — exp/log tables for the `x^8 + x^4 + x^3 + x^2 + 1`
//!   (`0x11D`) polynomial, built at compile time.
//! * [`slice_ops`] — bulk kernels (`mul_slice`, `mul_add_slice`,
//!   `xor_slice`) used by the encoders on whole shards.
//! * [`matrix`] — dense matrices over GF(2^8): multiplication,
//!   Gauss–Jordan inversion, rank, Vandermonde and Cauchy constructors.
//! * [`poly`] — polynomials over GF(2^8) (evaluation, Lagrange
//!   interpolation) used to cross-check the Reed–Solomon construction.
//!
//! # Example
//!
//! ```
//! use pbrs_gf::Gf256;
//!
//! let a = Gf256::new(0x53);
//! let b = Gf256::new(0xCA);
//! // Multiplication distributes over XOR-addition.
//! let c = Gf256::new(7);
//! assert_eq!((a + b) * c, a * c + b * c);
//! // Every non-zero element has an inverse.
//! assert_eq!(a * a.inverse().unwrap(), Gf256::ONE);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gf256;
pub mod matrix;
pub mod poly;
pub mod slice_ops;
pub mod tables;

pub use gf256::Gf256;
pub use matrix::Matrix;
pub use poly::Polynomial;
