//! Arithmetic over the finite field GF(2^8) and the dense linear algebra
//! needed by erasure codes.
//!
//! This crate is the lowest-level substrate of the Piggybacked-RS
//! reproduction: every byte of every parity in the higher-level crates is
//! produced by the kernels defined here.
//!
//! # Contents
//!
//! * [`Gf256`] — a field element with the usual operator overloads.
//! * [`tables`] — exp/log tables for the `x^8 + x^4 + x^3 + x^2 + 1`
//!   (`0x11D`) polynomial, built at compile time.
//! * [`slice_ops`] — bulk kernels (`mul_slice`, `mul_add_slice`,
//!   `xor_slice`, and the multi-output [`slice_ops::matrix_mul_into`])
//!   used by the encoders on whole shards.
//! * [`backend`] — runtime selection of the bulk-kernel implementation
//!   (scalar lookup / portable SWAR / x86-64 `pshufb` SIMD).
//! * [`matrix`] — dense matrices over GF(2^8): multiplication,
//!   Gauss–Jordan inversion, rank, Vandermonde and Cauchy constructors.
//! * [`poly`] — polynomials over GF(2^8) (evaluation, Lagrange
//!   interpolation) used to cross-check the Reed–Solomon construction.
//!
//! # Kernel backends
//!
//! The shard-sized kernels in [`slice_ops`] dispatch at runtime to the
//! fastest implementation the CPU supports:
//!
//! | backend  | technique                                | availability |
//! |----------|------------------------------------------|--------------|
//! | `scalar` | 256-entry lookup row per coefficient     | always (oracle) |
//! | `swar`   | bit-sliced lane-parallel blocks (SWAR)   | always |
//! | `ssse3`  | `pshufb` split-nibble tables, 16 B/step  | x86-64 with SSSE3 |
//! | `avx2`   | `vpshufb` split-nibble tables, 32 B/step | x86-64 with AVX2 |
//!
//! Selection happens once per process: set `PBRS_GF_BACKEND` to `scalar`,
//! `swar`, `ssse3`, `avx2` or `auto` to pin a backend (unsupported choices
//! fall back to auto-detection); otherwise the best supported backend wins.
//! All backends produce bit-identical results — the scalar path is the
//! oracle the others are property-tested against. See [`backend`] for the
//! full policy and [`backend::force`] for programmatic switching in
//! benchmarks.
//!
//! # Example
//!
//! ```
//! use pbrs_gf::Gf256;
//!
//! let a = Gf256::new(0x53);
//! let b = Gf256::new(0xCA);
//! // Multiplication distributes over XOR-addition.
//! let c = Gf256::new(7);
//! assert_eq!((a + b) * c, a * c + b * c);
//! // Every non-zero element has an inverse.
//! assert_eq!(a * a.inverse().unwrap(), Gf256::ONE);
//! ```

// `unsafe` is denied everywhere except the `simd` module, which needs it
// for `core::arch` intrinsics and carries per-block SAFETY justifications.
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod backend;
pub mod gf256;
pub mod matrix;
pub mod poly;
#[cfg(target_arch = "x86_64")]
mod simd;
pub mod slice_ops;
mod swar;
pub mod tables;

pub use backend::Backend;
pub use gf256::Gf256;
pub use matrix::Matrix;
pub use poly::Polynomial;
