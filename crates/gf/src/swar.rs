//! Portable bit-sliced GF(2^8) kernels — the `swar` backend.
//!
//! Multiplication by a fixed scalar `c` is a shift-and-add ("Russian
//! peasant") product: walk the set bits of `c`, XOR-accumulating a running
//! copy of the source that is doubled (multiplied by `x`, i.e. shifted and
//! conditionally reduced by the field polynomial) between bits. The trick
//! is to hoist that walk *outside* a 128-byte block: every step then becomes
//! a straight-line pass of byte-wise shifts, masks and XORs over a small
//! fixed-size buffer — lane-parallel arithmetic with no lookups, no
//! branches on data, and no cross-lane carries, which the compiler lowers
//! to whatever wide registers the target guarantees (SSE2 on x86-64, NEON
//! on aarch64, plain u64 words elsewhere).
//!
//! This is the same split-by-bits decomposition the `pshufb` nibble tables
//! in `crate::simd` exploit, taken to the bit level so it needs no
//! shuffle instruction — always available, and the second rung of the
//! dispatch ladder in [`crate::backend`] above the scalar lookup oracle.

use crate::tables;

/// Bytes per bit-sliced block — wide enough to amortise per-block setup,
/// small enough that the eight doubled planes (`8 × BLOCK` bytes) stay
/// L1-resident (128 measured fastest of 32/64/128/256 in the
/// `gf_kernels` bench; the numbers land in `BENCH_gf_kernels.json`).
const BLOCK: usize = 128;

/// One doubling pass: `cur[i] = x · cur[i]` in GF(2^8) for every lane.
///
/// The high bit selects the polynomial reduction: `(b << 1) ^ 0x1D` when
/// bit 7 was set, `b << 1` otherwise. `(b as i8) >> 7` broadcasts that bit
/// to a full-byte mask without a branch.
#[inline(always)]
fn double_block(cur: &mut [u8; BLOCK]) {
    for b in cur.iter_mut() {
        let reduce = ((*b as i8) >> 7) as u8;
        *b = (*b << 1) ^ (reduce & (tables::POLYNOMIAL as u8));
    }
}

/// `dst[i] = x · src[i]` — the out-of-place twin of [`double_block`], used
/// to build a chain of doubled planes without an intermediate copy.
#[inline(always)]
fn double_block_into(src: &[u8; BLOCK], dst: &mut [u8; BLOCK]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        let reduce = ((*s as i8) >> 7) as u8;
        *d = (*s << 1) ^ (reduce & (tables::POLYNOMIAL as u8));
    }
}

/// `acc[i] ^= c * src[i]` over one block (`acc` carries the caller's prior
/// contents, so the accumulate comes for free).
#[inline(always)]
fn mul_block(c: u8, src: &[u8; BLOCK], acc: &mut [u8; BLOCK]) {
    let mut cur = *src;
    let mut bits = c;
    loop {
        if bits & 1 != 0 {
            for (a, v) in acc.iter_mut().zip(cur.iter()) {
                *a ^= *v;
            }
        }
        bits >>= 1;
        if bits == 0 {
            return;
        }
        double_block(&mut cur);
    }
}

/// `dst[i] ^= c * src[i]`; `c` must not be 0 or 1 (the dispatcher
/// short-circuits those).
pub(crate) fn mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len(), dst.len());
    let mut src_blocks = src.chunks_exact(BLOCK);
    let mut dst_blocks = dst.chunks_exact_mut(BLOCK);
    for (s, d) in (&mut src_blocks).zip(&mut dst_blocks) {
        // pbrs-lint: allow(panic-hygiene) -- chunks_exact yields exactly BLOCK-sized slices
        let s: &[u8; BLOCK] = s.try_into().expect("exact chunk");
        let mut acc = [0u8; BLOCK];
        acc.copy_from_slice(d);
        mul_block(c, s, &mut acc);
        d.copy_from_slice(&acc);
    }
    for (s, d) in src_blocks
        .remainder()
        .iter()
        .zip(dst_blocks.into_remainder())
    {
        *d ^= tables::mul(c, *s);
    }
}

/// `dst[i] = c * src[i]`; `c` must not be 0 or 1.
pub(crate) fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    debug_assert_eq!(src.len(), dst.len());
    let mut src_blocks = src.chunks_exact(BLOCK);
    let mut dst_blocks = dst.chunks_exact_mut(BLOCK);
    for (s, d) in (&mut src_blocks).zip(&mut dst_blocks) {
        // pbrs-lint: allow(panic-hygiene) -- chunks_exact yields exactly BLOCK-sized slices
        let s: &[u8; BLOCK] = s.try_into().expect("exact chunk");
        let mut acc = [0u8; BLOCK];
        mul_block(c, s, &mut acc);
        d.copy_from_slice(&acc);
    }
    for (s, d) in src_blocks
        .remainder()
        .iter()
        .zip(dst_blocks.into_remainder())
    {
        *d = tables::mul(c, *s);
    }
}

/// `data[i] = c * data[i]` in place; `c` must not be 0 or 1.
pub(crate) fn mul_slice_in_place(c: u8, data: &mut [u8]) {
    let mut blocks = data.chunks_exact_mut(BLOCK);
    for d in &mut blocks {
        // pbrs-lint: allow(panic-hygiene) -- chunks_exact yields exactly BLOCK-sized slices
        let src: [u8; BLOCK] = (&*d).try_into().expect("exact chunk");
        let mut acc = [0u8; BLOCK];
        mul_block(c, &src, &mut acc);
        d.copy_from_slice(&acc);
    }
    for d in blocks.into_remainder() {
        *d = tables::mul(c, *d);
    }
}

/// Multi-output matrix product: `outs[i] ^= Σ_j rows[i][j] · srcs[j]`,
/// accumulating onto the callers' outputs (zero them first for the
/// overwrite form). All sources and outputs must share one length.
///
/// This is where bit-slicing beats even a per-output kernel: for each
/// source block the doubling chain `src·2^b` is computed *once*
/// and shared by every output row — each output then only XORs the planes
/// its coefficient bits select. An `r`-output encode pays one doubling
/// chain per source block instead of `r`.
pub(crate) fn matrix_mul_add(rows: &[&[u8]], srcs: &[&[u8]], outs: &mut [&mut [u8]]) {
    let Some(len) = outs.first().map(|o| o.len()) else {
        return;
    };
    let mut at = 0;
    while at + BLOCK <= len {
        for (j, src) in srcs.iter().enumerate() {
            // The union of the column's coefficient bits says how many
            // doubled planes this source block needs at all.
            let used: u8 = rows.iter().fold(0, |u, row| u | row[j]);
            if used == 0 {
                continue;
            }
            let planes_needed = 8 - used.leading_zeros() as usize;
            let mut planes = [[0u8; BLOCK]; 8];
            planes[0].copy_from_slice(&src[at..at + BLOCK]);
            for b in 1..planes_needed {
                let (done, rest) = planes.split_at_mut(b);
                double_block_into(&done[b - 1], &mut rest[0]);
            }
            for (row, out) in rows.iter().zip(outs.iter_mut()) {
                let mut bits = row[j];
                if bits == 0 {
                    continue;
                }
                let d: &mut [u8; BLOCK] =
                    // pbrs-lint: allow(panic-hygiene) -- the slice indexing above produces exactly BLOCK bytes
                    (&mut out[at..at + BLOCK]).try_into().expect("exact chunk");
                let mut acc = *d;
                for plane in planes[..planes_needed].iter() {
                    if bits & 1 != 0 {
                        for (a, v) in acc.iter_mut().zip(plane.iter()) {
                            *a ^= *v;
                        }
                    }
                    bits >>= 1;
                    if bits == 0 {
                        break;
                    }
                }
                *d = acc;
            }
        }
        at += BLOCK;
    }
    // Sub-block tail: scalar lookups.
    for (row, out) in rows.iter().zip(outs.iter_mut()) {
        for (&c, src) in row.iter().zip(srcs.iter()) {
            if c == 0 {
                continue;
            }
            for (d, s) in out[at..].iter_mut().zip(src[at..].iter()) {
                *d ^= tables::mul(c, *s);
            }
        }
    }
}

/// `dst[i] ^= src[i]`, eight bytes per step.
pub(crate) fn xor_slice(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(src.len(), dst.len());
    let mut src_words = src.chunks_exact(8);
    let mut dst_words = dst.chunks_exact_mut(8);
    for (s, d) in (&mut src_words).zip(&mut dst_words) {
        // pbrs-lint: allow(panic-hygiene) -- chunks_exact yields exactly 8-byte slices
        let w = u64::from_le_bytes(s.try_into().expect("8-byte chunk"));
        // pbrs-lint: allow(panic-hygiene) -- chunks_exact yields exactly 8-byte slices
        let cur = u64::from_le_bytes((&*d).try_into().expect("8-byte chunk"));
        d.copy_from_slice(&(cur ^ w).to_le_bytes());
    }
    for (s, d) in src_words.remainder().iter().zip(dst_words.into_remainder()) {
        *d ^= *s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(n: usize, seed: u8) -> Vec<u8> {
        (0..n)
            .map(|i| (i as u8).wrapping_mul(97).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn block_multiply_matches_scalar_for_every_coefficient() {
        let src: [u8; BLOCK] = buf(BLOCK, 5).try_into().unwrap();
        for c in 2..=255u8 {
            let mut acc = [0u8; BLOCK];
            mul_block(c, &src, &mut acc);
            for (a, s) in acc.iter().zip(src.iter()) {
                assert_eq!(*a, tables::mul(c, *s), "c={c}");
            }
        }
    }

    #[test]
    fn kernels_match_scalar_on_odd_lengths() {
        for len in [1usize, 7, 8, 63, 64, 65, 127, 200] {
            let src = buf(len, 3);
            for c in [2u8, 0x1D, 0x8E, 0xFF] {
                let mut dst = buf(len, 9);
                let base = dst.clone();
                mul_add_slice(c, &src, &mut dst);
                for i in 0..len {
                    assert_eq!(dst[i], base[i] ^ tables::mul(c, src[i]), "len={len} c={c}");
                }
                let mut out = vec![0u8; len];
                mul_slice(c, &src, &mut out);
                let mut in_place = src.clone();
                mul_slice_in_place(c, &mut in_place);
                for i in 0..len {
                    assert_eq!(out[i], tables::mul(c, src[i]));
                    assert_eq!(in_place[i], out[i]);
                }
            }
            let mut x = buf(len, 21);
            let base = x.clone();
            xor_slice(&mut x, &src);
            for i in 0..len {
                assert_eq!(x[i], base[i] ^ src[i]);
            }
        }
    }
}
