//! Cross-backend equivalence: every accelerated GF(2^8) kernel must be
//! bit-identical to the scalar lookup oracle, for every coefficient, odd
//! lengths, and unaligned head/tail splits.
//!
//! The SWAR and SIMD kernels all have a "wide" main loop plus a scalar
//! tail, and the SIMD paths load 16/32-byte vectors at arbitrary
//! alignment — so the properties here deliberately slice random offsets
//! off the front of the buffers to move the head/tail boundaries around.
//! Each property exercises the explicit-backend `*_using` entry points, so
//! the comparison never depends on (or mutates) the process-global backend
//! choice.

use pbrs_gf::backend::{self, Backend};
use pbrs_gf::slice_ops;
use proptest::collection::vec;
use proptest::prelude::*;

/// Deterministic pseudo-random buffer from a seed (cheaper to shrink than
/// carrying whole random vectors for the multi-shard properties).
fn fill(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

fn accelerated() -> Vec<Backend> {
    backend::supported()
        .into_iter()
        .filter(|&b| b != Backend::Scalar)
        .collect()
}

proptest! {
    /// `mul_slice` and `mul_add_slice`: all coefficients (including the
    /// 0/1 shortcuts), lengths crossing every block boundary, and an
    /// unaligned head chopped off the front.
    #[test]
    fn mul_kernels_match_oracle(
        c in any::<u8>(),
        len in 1usize..700,
        head in 0usize..64,
        seed in any::<u64>(),
    ) {
        let head = head.min(len - 1);
        let src_full = fill(seed, len);
        let dst_full = fill(seed ^ 0xABCD, len);
        let src = &src_full[head..];
        for b in accelerated() {
            // mul_add
            let mut expect = dst_full[head..].to_vec();
            let mut got = expect.clone();
            slice_ops::mul_add_slice_using(Backend::Scalar, c, src, &mut expect);
            slice_ops::mul_add_slice_using(b, c, src, &mut got);
            prop_assert_eq!(&got, &expect, "mul_add backend={} c={}", b, c);
            // mul (overwrite semantics must also kill stale bytes)
            let mut expect = vec![0x5Au8; src.len()];
            let mut got = vec![0xA5u8; src.len()];
            slice_ops::mul_slice_using(Backend::Scalar, c, src, &mut expect);
            slice_ops::mul_slice_using(b, c, src, &mut got);
            prop_assert_eq!(&got, &expect, "mul backend={} c={}", b, c);
        }
    }

    /// `accumulate_combination` over several shards, sliced at a random
    /// offset so every source starts unaligned.
    #[test]
    fn accumulate_combination_matches_oracle(
        coeffs in vec(any::<u8>(), 1..8),
        len in 1usize..300,
        head in 0usize..32,
        seed in any::<u64>(),
    ) {
        let head = head.min(len - 1);
        let srcs_full: Vec<Vec<u8>> = (0..coeffs.len())
            .map(|i| fill(seed.wrapping_add(i as u64 * 77), len))
            .collect();
        let srcs: Vec<&[u8]> = srcs_full.iter().map(|s| &s[head..]).collect();
        let base = fill(seed ^ 0x1234, len - head);
        for b in accelerated() {
            let mut expect = base.clone();
            let mut got = base.clone();
            slice_ops::accumulate_combination_using(
                Backend::Scalar, &coeffs, srcs.iter().copied(), &mut expect);
            slice_ops::accumulate_combination_using(
                b, &coeffs, srcs.iter().copied(), &mut got);
            prop_assert_eq!(&got, &expect, "backend={}", b);
            // The zeroing variant shares the accumulate core; spot-check it
            // wipes stale output bytes identically.
            let mut expect2 = vec![0xEEu8; len - head];
            let mut got2 = vec![0x11u8; len - head];
            slice_ops::linear_combination_into_using(
                Backend::Scalar, &coeffs, srcs.iter().copied(), &mut expect2);
            slice_ops::linear_combination_into_using(
                b, &coeffs, srcs.iter().copied(), &mut got2);
            prop_assert_eq!(&got2, &expect2, "into backend={}", b);
        }
    }

    /// `matrix_mul_into`: arbitrary coefficient matrices (zero rows, unit
    /// coefficients and all), lengths straddling the cache-block size, and
    /// unaligned sources.
    #[test]
    fn matrix_mul_matches_oracle(
        rows in vec(vec(any::<u8>(), 1..6), 1..5),
        len in 1usize..(slice_ops::MATRIX_BLOCK + 200),
        head in 0usize..48,
        seed in any::<u64>(),
    ) {
        let head = head.min(len - 1);
        let sources = rows[0].len();
        let rows: Vec<Vec<u8>> = rows.into_iter().map(|mut r| { r.resize(sources, 0); r }).collect();
        let row_refs: Vec<&[u8]> = rows.iter().map(|r| r.as_slice()).collect();
        let srcs_full: Vec<Vec<u8>> = (0..sources)
            .map(|i| fill(seed.wrapping_add(i as u64 * 131), len))
            .collect();
        let srcs: Vec<&[u8]> = srcs_full.iter().map(|s| &s[head..]).collect();
        let out_len = len - head;
        let mut expect: Vec<Vec<u8>> = (0..rows.len()).map(|_| vec![0xCDu8; out_len]).collect();
        {
            let mut outs: Vec<&mut [u8]> = expect.iter_mut().map(|o| o.as_mut_slice()).collect();
            slice_ops::matrix_mul_into_using(Backend::Scalar, &row_refs, &srcs, &mut outs);
        }
        for b in accelerated() {
            let mut got: Vec<Vec<u8>> = (0..rows.len()).map(|_| vec![0x33u8; out_len]).collect();
            {
                let mut outs: Vec<&mut [u8]> = got.iter_mut().map(|o| o.as_mut_slice()).collect();
                slice_ops::matrix_mul_into_using(b, &row_refs, &srcs, &mut outs);
            }
            prop_assert_eq!(&got, &expect, "backend={}", b);
        }
    }

    /// The scalar oracle itself is pinned to the mathematical definition,
    /// so the whole tower can't drift together.
    #[test]
    fn scalar_oracle_matches_field_definition(
        c in any::<u8>(),
        src in vec(any::<u8>(), 1..64),
    ) {
        let mut out = vec![0u8; src.len()];
        slice_ops::mul_slice_using(Backend::Scalar, c, &src, &mut out);
        for (o, s) in out.iter().zip(src.iter()) {
            prop_assert_eq!(*o, pbrs_gf::tables::mul(c, *s));
        }
    }
}

#[test]
fn both_portable_backends_are_always_testable() {
    // The suite must never silently degrade to testing nothing: scalar and
    // swar exist everywhere, so `accelerated()` is non-empty on every
    // target, and CI's `PBRS_GF_BACKEND` matrix rows are always exercised.
    assert!(accelerated().contains(&Backend::Swar));
}
