//! Property-based tests for GF(2^8) arithmetic, slice kernels and matrices.

use pbrs_gf::{slice_ops, Gf256, Matrix, Polynomial};
use proptest::collection::vec;
use proptest::prelude::*;

fn gf() -> impl Strategy<Value = Gf256> {
    any::<u8>().prop_map(Gf256::new)
}

fn nonzero_gf() -> impl Strategy<Value = Gf256> {
    (1u8..=255).prop_map(Gf256::new)
}

proptest! {
    #[test]
    fn addition_commutative_associative(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn multiplication_commutative_associative(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn distributivity(a in gf(), b in gf(), c in gf()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn additive_inverse_is_self(a in gf()) {
        prop_assert_eq!(a + a, Gf256::ZERO);
        prop_assert_eq!(-a, a);
    }

    #[test]
    fn multiplicative_inverse(a in nonzero_gf()) {
        let inv = a.inverse().unwrap();
        prop_assert_eq!(a * inv, Gf256::ONE);
        prop_assert_eq!(Gf256::ONE / a, inv);
    }

    #[test]
    fn division_then_multiplication(a in gf(), b in nonzero_gf()) {
        prop_assert_eq!((a / b) * b, a);
    }

    #[test]
    fn pow_adds_exponents(a in nonzero_gf(), m in 0u32..300, n in 0u32..300) {
        prop_assert_eq!(a.pow(m) * a.pow(n), a.pow(m + n));
    }

    #[test]
    fn mul_add_slice_is_linear(
        c1 in any::<u8>(),
        c2 in any::<u8>(),
        src in vec(any::<u8>(), 1..256),
    ) {
        let mut d1 = vec![0u8; src.len()];
        slice_ops::mul_add_slice(c1, &src, &mut d1);
        slice_ops::mul_add_slice(c2, &src, &mut d1);
        let mut d2 = vec![0u8; src.len()];
        slice_ops::mul_add_slice(c1 ^ c2, &src, &mut d2);
        prop_assert_eq!(d1, d2);
    }

    #[test]
    fn mul_slice_matches_elementwise(c in any::<u8>(), src in vec(any::<u8>(), 1..256)) {
        let mut dst = vec![0u8; src.len()];
        slice_ops::mul_slice(c, &src, &mut dst);
        for (s, d) in src.iter().zip(dst.iter()) {
            prop_assert_eq!(Gf256::new(*d), Gf256::new(c) * Gf256::new(*s));
        }
    }

    #[test]
    fn linear_combination_matches_matrix(
        coeffs in vec(any::<u8>(), 1..6),
        len in 1usize..64,
        seed in any::<u64>(),
    ) {
        // Build deterministic pseudo-random source shards from the seed.
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        let srcs: Vec<Vec<u8>> = (0..coeffs.len())
            .map(|_| (0..len).map(|_| next()).collect())
            .collect();
        let src_refs: Vec<&[u8]> = srcs.iter().map(|s| s.as_slice()).collect();
        let mut out = vec![0u8; len];
        slice_ops::linear_combination(&coeffs, &src_refs, &mut out);
        // Cross-check column by column with a matrix-vector product.
        let m = Matrix::from_rows(1, coeffs.len(), coeffs.clone());
        for i in 0..len {
            let column: Vec<u8> = srcs.iter().map(|s| s[i]).collect();
            let expect = m.multiply_vec(&column).unwrap()[0];
            prop_assert_eq!(out[i], expect);
        }
    }

    #[test]
    fn random_vandermonde_square_submatrices_invertible(
        rows in 2usize..20,
        extra in 1usize..6,
    ) {
        let v = Matrix::vandermonde(rows + extra, rows);
        // Take the last `rows` rows — an arbitrary square subset.
        let idx: Vec<usize> = (extra..rows + extra).collect();
        let sub = v.submatrix_rows(&idx).unwrap();
        prop_assert!(sub.is_invertible());
    }

    #[test]
    fn matrix_inverse_round_trip(n in 1usize..10, seed in any::<u64>()) {
        // Random matrices are invertible with high probability; retry by
        // perturbing the diagonal until invertible, then check the round trip.
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        let mut m = Matrix::zero(n, n);
        for r in 0..n {
            for c in 0..n {
                m.set(r, c, next());
            }
        }
        if !m.is_invertible() {
            for d in 0..n {
                m.set(d, d, m.get(d, d) ^ 1);
            }
        }
        prop_assume!(m.is_invertible());
        let inv = m.inverted().unwrap();
        prop_assert_eq!(m.multiply(&inv).unwrap(), Matrix::identity(n));
    }

    #[test]
    fn polynomial_interpolation_round_trip(coeffs in vec(any::<u8>(), 1..12)) {
        let p = Polynomial::new(coeffs.into_iter().map(Gf256::new).collect());
        let n = p.coefficients().len().max(1);
        let points: Vec<(Gf256, Gf256)> = (0..n)
            .map(|i| {
                let x = Gf256::alpha(i);
                (x, p.evaluate(x))
            })
            .collect();
        let q = Polynomial::interpolate(&points);
        prop_assert_eq!(p, q);
    }

    #[test]
    fn matrix_vec_distributes_over_xor(
        n in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        let m = Matrix::from_rows(n, n, (0..n * n).map(|_| next()).collect());
        let x: Vec<u8> = (0..n).map(|_| next()).collect();
        let y: Vec<u8> = (0..n).map(|_| next()).collect();
        let xy: Vec<u8> = x.iter().zip(y.iter()).map(|(a, b)| a ^ b).collect();
        let mx = m.multiply_vec(&x).unwrap();
        let my = m.multiply_vec(&y).unwrap();
        let mxy = m.multiply_vec(&xy).unwrap();
        let sum: Vec<u8> = mx.iter().zip(my.iter()).map(|(a, b)| a ^ b).collect();
        prop_assert_eq!(mxy, sum);
    }
}
