//! The machine-unavailability process behind Fig. 3a.
//!
//! The paper reports, for each of ~34 days, the number of machines that were
//! unavailable for more than 15 minutes; the median exceeds 50 events/day
//! with occasional spikes above 250 (rolling software upgrades, rack
//! maintenance and correlated reboots). The model here is a compound
//! process: a Poisson base rate of independent machine events plus rare
//! "spike" days that add a burst of correlated events, with log-normal
//! downtime durations and a small probability that a machine never returns
//! (a permanent failure requiring full re-replication of its blocks).

use rand::Rng;

use crate::distributions;

/// One machine-unavailability event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnavailabilityEvent {
    /// Index of the affected machine.
    pub machine: usize,
    /// Start of the outage, in minutes since the start of the simulation.
    pub start_minute: f64,
    /// Outage duration in minutes (`f64::INFINITY` for permanent failures).
    pub duration_minutes: f64,
}

impl UnavailabilityEvent {
    /// `true` if the machine never returns.
    pub fn is_permanent(&self) -> bool {
        self.duration_minutes.is_infinite()
    }

    /// `true` if the outage lasts longer than the cluster's detection
    /// timeout and therefore triggers recovery (the events Fig. 3a counts).
    pub fn exceeds(&self, timeout_minutes: f64) -> bool {
        self.duration_minutes > timeout_minutes
    }
}

/// Parameters of the unavailability process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnavailabilityModel {
    /// Number of machines in the cluster.
    pub machines: usize,
    /// Mean number of independent (non-spike) events per day that exceed the
    /// detection timeout.
    pub base_events_per_day: f64,
    /// Probability that a day is a "spike" day (correlated maintenance).
    pub spike_probability: f64,
    /// Mean number of additional events on a spike day.
    pub spike_extra_events: f64,
    /// Median outage duration in minutes (log-normal).
    pub median_duration_minutes: f64,
    /// Log-normal shape parameter of the outage duration.
    pub duration_sigma: f64,
    /// Probability that an event is a permanent machine failure.
    pub permanent_failure_probability: f64,
    /// Fraction of generated events that fall below the detection timeout
    /// (short blips Fig. 3a does not count but the cluster still sees).
    pub short_blip_fraction: f64,
    /// The detection timeout (minutes) used to scale short blips.
    pub detection_timeout_minutes: f64,
}

impl UnavailabilityModel {
    /// The calibration used to reproduce Fig. 3a: ~52 qualifying events per
    /// day at the median with spikes into the hundreds, on a cluster of a
    /// few thousand machines.
    pub fn facebook(machines: usize) -> Self {
        UnavailabilityModel {
            machines,
            base_events_per_day: 52.0,
            spike_probability: 0.09,
            spike_extra_events: 130.0,
            median_duration_minutes: 90.0,
            duration_sigma: 1.0,
            permanent_failure_probability: 0.008,
            short_blip_fraction: 0.35,
            detection_timeout_minutes: 15.0,
        }
    }

    /// Generates all events for `days` days. Events are sorted by start
    /// time; machines are chosen uniformly at random (a machine may fail
    /// more than once over the horizon, matching production behaviour).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, days: usize) -> Vec<UnavailabilityEvent> {
        let mut events = Vec::new();
        for day in 0..days {
            let mut qualifying = distributions::poisson(rng, self.base_events_per_day);
            if distributions::bernoulli(rng, self.spike_probability) {
                qualifying += distributions::poisson(rng, self.spike_extra_events);
            }
            // Short blips that never reach the detection timeout.
            let blips = (qualifying as f64 * self.short_blip_fraction
                / (1.0 - self.short_blip_fraction))
                .round() as u64;
            for _ in 0..qualifying {
                events.push(self.one_event(rng, day, false));
            }
            for _ in 0..blips {
                events.push(self.one_event(rng, day, true));
            }
        }
        // pbrs-lint: allow(panic-hygiene) -- event start minutes are finite; NaN is structurally impossible
        events.sort_by(|a, b| a.start_minute.partial_cmp(&b.start_minute).expect("no NaN"));
        events
    }

    fn one_event<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        day: usize,
        blip: bool,
    ) -> UnavailabilityEvent {
        let machine = rng.random_range(0..self.machines);
        let start_minute = day as f64 * MINUTES_PER_DAY + rng.random_range(0.0..MINUTES_PER_DAY);
        let duration_minutes = if blip {
            rng.random_range(0.5..self.detection_timeout_minutes)
        } else if distributions::bernoulli(rng, self.permanent_failure_probability) {
            f64::INFINITY
        } else {
            // Durations below the timeout would not qualify; shift the
            // log-normal so every non-blip event exceeds the timeout.
            self.detection_timeout_minutes
                + distributions::log_normal_median(
                    rng,
                    self.median_duration_minutes,
                    self.duration_sigma,
                )
        };
        UnavailabilityEvent {
            machine,
            start_minute,
            duration_minutes,
        }
    }

    /// Counts, for each day, the events whose outage exceeded the detection
    /// timeout — exactly the series plotted in Fig. 3a.
    pub fn daily_qualifying_counts(
        events: &[UnavailabilityEvent],
        days: usize,
        timeout_minutes: f64,
    ) -> Vec<u64> {
        let mut counts = vec![0u64; days];
        for e in events {
            if e.exceeds(timeout_minutes) {
                let day = (e.start_minute / MINUTES_PER_DAY) as usize;
                if day < days {
                    counts[day] += 1;
                }
            }
        }
        counts
    }
}

/// Minutes in a day.
pub const MINUTES_PER_DAY: f64 = 24.0 * 60.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn event_helpers() {
        let e = UnavailabilityEvent {
            machine: 7,
            start_minute: 100.0,
            duration_minutes: 30.0,
        };
        assert!(!e.is_permanent());
        assert!(e.exceeds(15.0));
        assert!(!e.exceeds(60.0));
        let p = UnavailabilityEvent {
            duration_minutes: f64::INFINITY,
            ..e
        };
        assert!(p.is_permanent());
        assert!(p.exceeds(1e9));
    }

    #[test]
    fn daily_counts_match_fig_3a_shape() {
        let mut rng = StdRng::seed_from_u64(42);
        let model = UnavailabilityModel::facebook(3000);
        let days = 90;
        let events = model.generate(&mut rng, days);
        let counts = UnavailabilityModel::daily_qualifying_counts(&events, days, 15.0);
        assert_eq!(counts.len(), days);
        let summary = Summary::of_counts(&counts);
        // Median above 50 events/day (paper), but not wildly above.
        assert!(summary.median > 50.0, "median {summary:?}");
        assert!(summary.median < 75.0, "median {summary:?}");
        // Occasional spike days into the hundreds, as in Fig. 3a.
        assert!(summary.max > 120.0, "max {summary:?}");
        assert!(summary.max < 450.0, "max {summary:?}");
        // Quiet days stay in a plausible range.
        assert!(summary.min > 20.0, "min {summary:?}");
    }

    #[test]
    fn blips_do_not_count_toward_fig_3a() {
        let mut rng = StdRng::seed_from_u64(7);
        let model = UnavailabilityModel::facebook(100);
        let events = model.generate(&mut rng, 10);
        let blips = events.iter().filter(|e| !e.exceeds(15.0)).count();
        let qualifying = events.iter().filter(|e| e.exceeds(15.0)).count();
        assert!(blips > 0, "the model generates sub-timeout blips too");
        assert!(qualifying > 0);
        // Qualifying events all exceed the timeout by construction.
        assert!(events
            .iter()
            .filter(|e| e.exceeds(15.0))
            .all(|e| e.duration_minutes > 15.0));
    }

    #[test]
    fn events_are_sorted_and_within_horizon() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = UnavailabilityModel::facebook(500);
        let days = 5;
        let events = model.generate(&mut rng, days);
        assert!(events
            .windows(2)
            .all(|w| w[0].start_minute <= w[1].start_minute));
        assert!(events
            .iter()
            .all(|e| e.start_minute >= 0.0 && e.start_minute < days as f64 * MINUTES_PER_DAY));
        assert!(events.iter().all(|e| e.machine < 500));
    }

    #[test]
    fn permanent_failures_are_rare_but_present() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = UnavailabilityModel::facebook(3000);
        let events = model.generate(&mut rng, 120);
        let permanent = events.iter().filter(|e| e.is_permanent()).count();
        let total = events.len();
        assert!(permanent > 0);
        assert!((permanent as f64) < total as f64 * 0.03);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let model = UnavailabilityModel::facebook(100);
        let a = model.generate(&mut StdRng::seed_from_u64(9), 3);
        let b = model.generate(&mut StdRng::seed_from_u64(9), 3);
        assert_eq!(a, b);
    }
}
