//! The stripe-degradation distribution of §2.2.
//!
//! The paper reports that, among stripes with at least one missing block,
//! 98.08 % have exactly one block missing, 1.87 % have two, and 0.05 % have
//! three or more — which is why optimising the single-failure recovery path
//! (what Piggybacked-RS does) captures essentially all of the recovery
//! traffic.

use rand::Rng;

/// Distribution of the number of missing blocks among degraded stripes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StripeDegradation {
    /// Stripes with exactly one block missing.
    pub one_missing: u64,
    /// Stripes with exactly two blocks missing.
    pub two_missing: u64,
    /// Stripes with three or more blocks missing.
    pub three_plus_missing: u64,
}

impl StripeDegradation {
    /// Total number of degraded stripes observed.
    pub fn total(&self) -> u64 {
        self.one_missing + self.two_missing + self.three_plus_missing
    }

    /// Percentage of degraded stripes with exactly one missing block.
    pub fn one_missing_pct(&self) -> f64 {
        self.pct(self.one_missing)
    }

    /// Percentage of degraded stripes with exactly two missing blocks.
    pub fn two_missing_pct(&self) -> f64 {
        self.pct(self.two_missing)
    }

    /// Percentage of degraded stripes with three or more missing blocks.
    pub fn three_plus_missing_pct(&self) -> f64 {
        self.pct(self.three_plus_missing)
    }

    fn pct(&self, count: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            count as f64 / total as f64 * 100.0
        }
    }

    /// Records one degraded-stripe observation with the given number of
    /// missing blocks (ignores zero).
    pub fn record(&mut self, missing_blocks: usize) {
        match missing_blocks {
            0 => {}
            1 => self.one_missing += 1,
            2 => self.two_missing += 1,
            _ => self.three_plus_missing += 1,
        }
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &StripeDegradation) {
        self.one_missing += other.one_missing;
        self.two_missing += other.two_missing;
        self.three_plus_missing += other.three_plus_missing;
    }
}

/// An analytic estimate of the degradation distribution.
///
/// With `m` machines, of which a fraction `p_down` is concurrently
/// unavailable (machine failures are approximately independent at any
/// instant), each of the `width` blocks of a stripe — placed on distinct
/// machines — is missing independently with probability `p_down`. The number
/// of missing blocks per stripe is therefore Binomial(width, p_down), and
/// the distribution *conditioned on at least one missing block* is what the
/// paper reports.
pub fn binomial_degradation_estimate(width: usize, p_down: f64) -> (f64, f64, f64) {
    assert!((0.0..1.0).contains(&p_down), "p_down must be in [0, 1)");
    let n = width as f64;
    let q = 1.0 - p_down;
    let p0 = q.powf(n);
    let p1 = n * p_down * q.powf(n - 1.0);
    let p2 = n * (n - 1.0) / 2.0 * p_down.powi(2) * q.powf(n - 2.0);
    let degraded = 1.0 - p0;
    if degraded <= 0.0 {
        return (0.0, 0.0, 0.0);
    }
    let one = p1 / degraded * 100.0;
    let two = p2 / degraded * 100.0;
    let three_plus = 100.0 - one - two;
    (one, two, three_plus.max(0.0))
}

/// Monte-Carlo sampling of the degradation distribution: `stripes` stripes
/// of `width` blocks each, every block independently missing with
/// probability `p_down`. Only degraded stripes are recorded, matching the
/// paper's denominator.
pub fn sample_degradation<R: Rng + ?Sized>(
    rng: &mut R,
    stripes: usize,
    width: usize,
    p_down: f64,
) -> StripeDegradation {
    let mut dist = StripeDegradation::default();
    for _ in 0..stripes {
        let missing = (0..width)
            .filter(|_| rng.random_range(0.0..1.0) < p_down)
            .count();
        dist.record(missing);
    }
    dist
}

/// The concurrent-unavailability probability implied by the paper's own
/// numbers: solving the binomial model so that ~1.87 % of degraded (10+4)
/// stripes have two missing blocks gives a per-machine concurrent
/// unavailability around 0.3 % — consistent with ~50 outages/day of ~1 hour
/// on a few thousand machines.
pub fn implied_concurrent_unavailability(width: usize, target_two_missing_pct: f64) -> f64 {
    // Bisection on p_down in (0, 0.2).
    let mut lo = 1e-6;
    let mut hi = 0.2;
    for _ in 0..80 {
        let mid = (lo + hi) / 2.0;
        let (_, two, _) = binomial_degradation_estimate(width, mid);
        if two < target_two_missing_pct {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn record_and_percentages() {
        let mut d = StripeDegradation::default();
        assert_eq!(d.total(), 0);
        assert_eq!(d.one_missing_pct(), 0.0);
        for _ in 0..9808 {
            d.record(1);
        }
        for _ in 0..187 {
            d.record(2);
        }
        for _ in 0..5 {
            d.record(3);
        }
        d.record(0); // ignored
        assert_eq!(d.total(), 10_000);
        assert!((d.one_missing_pct() - 98.08).abs() < 1e-9);
        assert!((d.two_missing_pct() - 1.87).abs() < 1e-9);
        assert!((d.three_plus_missing_pct() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = StripeDegradation {
            one_missing: 1,
            two_missing: 2,
            three_plus_missing: 3,
        };
        let b = StripeDegradation {
            one_missing: 10,
            two_missing: 20,
            three_plus_missing: 30,
        };
        a.merge(&b);
        assert_eq!(a.one_missing, 11);
        assert_eq!(a.two_missing, 22);
        assert_eq!(a.three_plus_missing, 33);
    }

    #[test]
    fn record_four_or_more_counts_as_three_plus() {
        let mut d = StripeDegradation::default();
        d.record(4);
        d.record(14);
        assert_eq!(d.three_plus_missing, 2);
    }

    #[test]
    fn binomial_estimate_matches_paper_at_implied_probability() {
        let p = implied_concurrent_unavailability(14, 1.87);
        // The implied concurrent unavailability is a fraction of a percent.
        assert!(p > 0.001 && p < 0.01, "{p}");
        let (one, two, three) = binomial_degradation_estimate(14, p);
        assert!((two - 1.87).abs() < 0.05, "{two}");
        assert!((one - 98.08).abs() < 0.2, "{one}");
        assert!(three < 0.15, "{three}");
    }

    #[test]
    fn monte_carlo_agrees_with_binomial_model() {
        let mut rng = StdRng::seed_from_u64(99);
        let p = 0.003;
        let sampled = sample_degradation(&mut rng, 2_000_000, 14, p);
        let (one, two, _three) = binomial_degradation_estimate(14, p);
        assert!((sampled.one_missing_pct() - one).abs() < 0.3);
        assert!((sampled.two_missing_pct() - two).abs() < 0.3);
        assert!(sampled.total() > 0);
    }

    #[test]
    fn degenerate_probabilities() {
        let (one, two, three) = binomial_degradation_estimate(14, 0.0);
        assert_eq!((one, two, three), (0.0, 0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "p_down")]
    fn invalid_probability_panics() {
        binomial_degradation_estimate(14, 1.5);
    }
}
