//! Per-day recovery and traffic series (the data behind Fig. 3b).
//!
//! The authoritative way to produce these series in this reproduction is the
//! discrete-event simulator in `pbrs-cluster`, which models detection,
//! queuing and rate-limited recovery explicitly. This module provides the
//! series *types* shared with the simulator plus a quick analytic generator
//! that turns an unavailability trace directly into Fig. 3b-shaped data,
//! useful for fast sanity checks and unit tests.

use rand::Rng;

use crate::calibration::bytes_to_tb;
use crate::distributions;
use crate::stats::Summary;
use crate::unavailability::{UnavailabilityEvent, MINUTES_PER_DAY};

/// Recovery activity of a single day.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DailyRecovery {
    /// Day index (0-based).
    pub day: usize,
    /// Machines flagged unavailable for longer than the detection timeout.
    pub machines_flagged: u64,
    /// RS-coded blocks reconstructed during the day.
    pub blocks_reconstructed: u64,
    /// Bytes transferred across racks for those reconstructions.
    pub cross_rack_bytes: u64,
    /// Bytes read from helper disks (equals the transfer volume under the
    /// paper's placement, where every helper is on a different rack).
    pub disk_bytes_read: u64,
}

impl DailyRecovery {
    /// Cross-rack traffic in (binary) terabytes.
    pub fn cross_rack_tb(&self) -> f64 {
        bytes_to_tb(self.cross_rack_bytes)
    }
}

/// A multi-day recovery trace (one [`DailyRecovery`] per day).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoveryTrace {
    /// Per-day records, in day order.
    pub days: Vec<DailyRecovery>,
}

impl RecoveryTrace {
    /// Creates a trace from per-day records.
    pub fn new(days: Vec<DailyRecovery>) -> Self {
        RecoveryTrace { days }
    }

    /// Number of days covered.
    pub fn len(&self) -> usize {
        self.days.len()
    }

    /// `true` if the trace has no days.
    pub fn is_empty(&self) -> bool {
        self.days.is_empty()
    }

    /// Summary of the blocks-reconstructed-per-day series.
    pub fn blocks_summary(&self) -> Summary {
        Summary::of_counts(
            &self
                .days
                .iter()
                .map(|d| d.blocks_reconstructed)
                .collect::<Vec<_>>(),
        )
    }

    /// Summary of the cross-rack-terabytes-per-day series.
    pub fn cross_rack_tb_summary(&self) -> Summary {
        Summary::of(
            &self
                .days
                .iter()
                .map(|d| d.cross_rack_tb())
                .collect::<Vec<_>>(),
        )
    }

    /// Summary of the machines-flagged-per-day series (Fig. 3a).
    pub fn flagged_summary(&self) -> Summary {
        Summary::of_counts(
            &self
                .days
                .iter()
                .map(|d| d.machines_flagged)
                .collect::<Vec<_>>(),
        )
    }

    /// Total cross-rack bytes over the whole trace.
    pub fn total_cross_rack_bytes(&self) -> u64 {
        self.days.iter().map(|d| d.cross_rack_bytes).sum()
    }

    /// Total blocks reconstructed over the whole trace.
    pub fn total_blocks(&self) -> u64 {
        self.days.iter().map(|d| d.blocks_reconstructed).sum()
    }
}

/// Parameters of the analytic (non-DES) Fig. 3b generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticRecoveryModel {
    /// Detection timeout in minutes (events shorter than this trigger no
    /// recovery).
    pub detection_timeout_minutes: f64,
    /// Recovery throughput dedicated to one flagged machine, in blocks per
    /// minute (HDFS-RAID throttles reconstruction work to protect foreground
    /// map-reduce jobs).
    pub recovery_blocks_per_minute: f64,
    /// Cluster-wide cap on reconstructions per day (shared recovery slots).
    pub cluster_blocks_per_day_cap: f64,
    /// RS-coded blocks stored per machine (mean).
    pub mean_rs_blocks_per_machine: f64,
    /// Average bytes of helper data read+transferred per reconstructed block
    /// (10 × average block size for the production RS code).
    pub bytes_per_block_recovery: f64,
    /// Relative day-to-day jitter applied to the effective block size
    /// (captures the varying mix of full and tail blocks).
    pub block_size_jitter: f64,
}

impl AnalyticRecoveryModel {
    /// Calibration matching the paper's medians when driven by the
    /// [`crate::unavailability::UnavailabilityModel::facebook`] process.
    pub fn facebook() -> Self {
        AnalyticRecoveryModel {
            detection_timeout_minutes: 15.0,
            recovery_blocks_per_minute: 33.0,
            cluster_blocks_per_day_cap: 110_000.0,
            mean_rs_blocks_per_machine: 6000.0,
            bytes_per_block_recovery: 10.0 * 200.0 * 1024.0 * 1024.0,
            block_size_jitter: 0.10,
        }
    }

    /// Produces a [`RecoveryTrace`] from an unavailability event trace.
    ///
    /// For each qualifying event the number of blocks reconstructed is the
    /// smaller of (a) the machine's RS block count and (b) what the
    /// cluster-wide recovery throughput can process during the outage after
    /// the detection timeout (recoveries still pending when the machine
    /// returns are cancelled, as in HDFS-RAID).
    pub fn derive<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        events: &[UnavailabilityEvent],
        days: usize,
    ) -> RecoveryTrace {
        let mut per_day = vec![DailyRecovery::default(); days];
        for (day, record) in per_day.iter_mut().enumerate() {
            record.day = day;
        }
        for e in events {
            if !e.exceeds(self.detection_timeout_minutes) {
                continue;
            }
            let day = (e.start_minute / MINUTES_PER_DAY) as usize;
            if day >= days {
                continue;
            }
            per_day[day].machines_flagged += 1;
            let window = if e.is_permanent() {
                f64::INFINITY
            } else {
                e.duration_minutes - self.detection_timeout_minutes
            };
            let machine_blocks =
                distributions::poisson(rng, self.mean_rs_blocks_per_machine) as f64;
            let capacity = window * self.recovery_blocks_per_minute;
            let blocks = machine_blocks.min(capacity).max(0.0).round() as u64;
            let jitter = 1.0
                + self.block_size_jitter * (distributions::standard_normal(rng)).clamp(-2.0, 2.0);
            let bytes = (blocks as f64 * self.bytes_per_block_recovery * jitter).max(0.0) as u64;
            per_day[day].blocks_reconstructed += blocks;
            per_day[day].cross_rack_bytes += bytes;
            per_day[day].disk_bytes_read += bytes;
        }
        // The cluster shares a bounded pool of recovery slots: days whose
        // demand exceeds the cap are throttled (the DES in pbrs-cluster
        // models this queueing explicitly; here it is a proportional cut).
        for d in per_day.iter_mut() {
            let cap = self.cluster_blocks_per_day_cap;
            if (d.blocks_reconstructed as f64) > cap {
                let scale = cap / d.blocks_reconstructed as f64;
                d.blocks_reconstructed = cap as u64;
                d.cross_rack_bytes = (d.cross_rack_bytes as f64 * scale) as u64;
                d.disk_bytes_read = (d.disk_bytes_read as f64 * scale) as u64;
            }
        }
        RecoveryTrace::new(per_day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unavailability::UnavailabilityModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn daily_record_conversions() {
        let d = DailyRecovery {
            day: 3,
            machines_flagged: 10,
            blocks_reconstructed: 1000,
            cross_rack_bytes: 2 * 1024 * 1024 * 1024 * 1024,
            disk_bytes_read: 0,
        };
        assert!((d.cross_rack_tb() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn trace_summaries() {
        let trace = RecoveryTrace::new(vec![
            DailyRecovery {
                day: 0,
                machines_flagged: 40,
                blocks_reconstructed: 80_000,
                cross_rack_bytes: 100 * 1024u64.pow(4),
                disk_bytes_read: 0,
            },
            DailyRecovery {
                day: 1,
                machines_flagged: 60,
                blocks_reconstructed: 120_000,
                cross_rack_bytes: 200 * 1024u64.pow(4),
                disk_bytes_read: 0,
            },
        ]);
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
        assert_eq!(trace.total_blocks(), 200_000);
        assert_eq!(trace.total_cross_rack_bytes(), 300 * 1024u64.pow(4));
        assert_eq!(trace.blocks_summary().median, 100_000.0);
        assert_eq!(trace.flagged_summary().median, 50.0);
        assert!((trace.cross_rack_tb_summary().median - 150.0).abs() < 1e-9);
        assert!(RecoveryTrace::default().is_empty());
    }

    #[test]
    fn analytic_model_reproduces_fig_3b_medians() {
        let mut rng = StdRng::seed_from_u64(2013);
        let days = 24;
        let unavail = UnavailabilityModel::facebook(3000);
        let events = unavail.generate(&mut rng, days);
        let trace = AnalyticRecoveryModel::facebook().derive(&mut rng, &events, days);

        let blocks = trace.blocks_summary();
        let tb = trace.cross_rack_tb_summary();
        // Paper medians: ~95,500 blocks/day and >180 TB/day. The analytic
        // model is only a sanity check, so accept a generous band around
        // those values.
        assert!(
            blocks.median > 60_000.0 && blocks.median < 140_000.0,
            "blocks median {}",
            blocks.median
        );
        assert!(
            tb.median > 120.0 && tb.median < 260.0,
            "tb median {}",
            tb.median
        );
        // Consistency: bytes scale with blocks at ~10 x ~200MB per block.
        for d in &trace.days {
            if d.blocks_reconstructed > 0 {
                let per_block = d.cross_rack_bytes as f64 / d.blocks_reconstructed as f64;
                assert!(per_block > 1.0e9 && per_block < 3.0e9, "{per_block}");
            }
        }
    }

    #[test]
    fn short_events_produce_no_recoveries() {
        let mut rng = StdRng::seed_from_u64(5);
        let events = vec![UnavailabilityEvent {
            machine: 0,
            start_minute: 10.0,
            duration_minutes: 10.0,
        }];
        let trace = AnalyticRecoveryModel::facebook().derive(&mut rng, &events, 1);
        assert_eq!(trace.days[0].blocks_reconstructed, 0);
        assert_eq!(trace.days[0].machines_flagged, 0);
    }

    #[test]
    fn permanent_failures_recover_the_whole_machine() {
        let mut rng = StdRng::seed_from_u64(6);
        let model = AnalyticRecoveryModel::facebook();
        let events = vec![UnavailabilityEvent {
            machine: 0,
            start_minute: 1.0,
            duration_minutes: f64::INFINITY,
        }];
        let trace = model.derive(&mut rng, &events, 1);
        // All of the machine's blocks get reconstructed (Poisson around the
        // per-machine mean).
        let blocks = trace.days[0].blocks_reconstructed as f64;
        assert!(blocks > model.mean_rs_blocks_per_machine * 0.8);
        assert!(blocks < model.mean_rs_blocks_per_machine * 1.2);
    }
}
