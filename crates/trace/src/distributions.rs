//! Random samplers used by the failure and workload models.
//!
//! Only `rand`'s uniform primitives are used; the shaped distributions
//! (Poisson, log-normal, Pareto, exponential) are implemented here so the
//! workspace does not need `rand_distr`. The implementations are the
//! textbook ones: inversion for the exponential and Pareto, Box–Muller for
//! the normal behind the log-normal, and Knuth's method (with a normal
//! approximation for large means) for the Poisson.

use rand::Rng;

/// Samples an exponential with the given `mean` (inverse rate).
///
/// # Panics
///
/// Panics if `mean <= 0`.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive");
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Samples a standard normal via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a normal with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `std_dev < 0`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    mean + std_dev * standard_normal(rng)
}

/// Samples a log-normal parameterised by the *median* of the distribution
/// and the shape parameter `sigma` (the standard deviation of the underlying
/// normal). `median = exp(mu)`.
///
/// # Panics
///
/// Panics if `median <= 0` or `sigma < 0`.
pub fn log_normal_median<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0, "log-normal median must be positive");
    assert!(sigma >= 0.0, "log-normal sigma must be non-negative");
    (median.ln() + sigma * standard_normal(rng)).exp()
}

/// Samples a Pareto (type I) with the given scale (minimum value) and shape.
///
/// # Panics
///
/// Panics if `scale <= 0` or `shape <= 0`.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, scale: f64, shape: f64) -> f64 {
    assert!(
        scale > 0.0 && shape > 0.0,
        "pareto parameters must be positive"
    );
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    scale / u.powf(1.0 / shape)
}

/// Samples a Poisson with mean `lambda`.
///
/// Uses Knuth's multiplication method for small `lambda` and a rounded
/// normal approximation for `lambda > 30` (adequate for the event-count
/// processes modelled here).
///
/// # Panics
///
/// Panics if `lambda < 0`.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "poisson mean must be non-negative");
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let sample = normal(rng, lambda, lambda.sqrt());
        return sample.round().max(0.0) as u64;
    }
    let threshold = (-lambda).exp();
    let mut count = 0u64;
    let mut product: f64 = rng.random_range(0.0..1.0);
    while product > threshold {
        count += 1;
        product *= rng.random_range(0.0..1.0_f64);
    }
    count
}

/// Samples `true` with probability `p` (clamped to `[0, 1]`).
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    let p = p.clamp(0.0, 1.0);
    rng.random_range(0.0..1.0) < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xFACE_B00C)
    }

    fn mean_of<F: FnMut(&mut StdRng) -> f64>(n: usize, mut f: F) -> f64 {
        let mut r = rng();
        (0..n).map(|_| f(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_converges() {
        let m = mean_of(200_000, |r| exponential(r, 45.0));
        assert!((m - 45.0).abs() < 1.0, "{m}");
        // All samples are non-negative.
        let mut r = rng();
        assert!((0..1000).all(|_| exponential(&mut r, 1.0) >= 0.0));
    }

    #[test]
    fn normal_moments_converge() {
        let m = mean_of(200_000, |r| normal(r, 10.0, 3.0));
        assert!((m - 10.0).abs() < 0.05, "{m}");
        let mut r = rng();
        let samples: Vec<f64> = (0..200_000).map(|_| normal(&mut r, 0.0, 2.0)).collect();
        let var = samples.iter().map(|x| x * x).sum::<f64>() / samples.len() as f64;
        assert!((var - 4.0).abs() < 0.1, "{var}");
    }

    #[test]
    fn log_normal_median_converges() {
        let mut r = rng();
        let mut samples: Vec<f64> = (0..100_001)
            .map(|_| log_normal_median(&mut r, 45.0, 1.0))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = samples[samples.len() / 2];
        assert!((med - 45.0).abs() < 2.0, "{med}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn pareto_scale_is_minimum() {
        let mut r = rng();
        let samples: Vec<f64> = (0..10_000).map(|_| pareto(&mut r, 32.0, 1.5)).collect();
        assert!(samples.iter().all(|&x| x >= 32.0));
        // Heavy tail: some sample exceeds 4x the scale.
        assert!(samples.iter().any(|&x| x > 128.0));
    }

    #[test]
    fn poisson_small_lambda() {
        let m = mean_of(100_000, |r| poisson(r, 3.5) as f64);
        assert!((m - 3.5).abs() < 0.05, "{m}");
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn poisson_large_lambda_uses_normal_approximation() {
        let m = mean_of(100_000, |r| poisson(r, 52.0) as f64);
        assert!((m - 52.0).abs() < 0.3, "{m}");
        // Standard deviation should be about sqrt(52) ~ 7.2.
        let mut r = rng();
        let samples: Vec<f64> = (0..100_000).map(|_| poisson(&mut r, 52.0) as f64).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((var.sqrt() - 7.2).abs() < 0.4, "{}", var.sqrt());
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = rng();
        let hits = (0..100_000).filter(|_| bernoulli(&mut r, 0.08)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.08).abs() < 0.005, "{freq}");
        assert!(!bernoulli(&mut r, 0.0));
        assert!(bernoulli(&mut r, 1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(bernoulli(&mut r, 7.0));
        assert!(!bernoulli(&mut r, -2.0));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn exponential_rejects_non_positive_mean() {
        exponential(&mut rng(), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be non-negative")]
    fn poisson_rejects_negative_lambda() {
        poisson(&mut rng(), -1.0);
    }
}
