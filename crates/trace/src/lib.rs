//! Synthetic traces, statistics and calibration constants for the
//! warehouse-cluster recovery study.
//!
//! The paper's first half is a measurement study of Facebook's warehouse
//! cluster. Those production traces are not available, so this crate provides
//! the closest synthetic equivalents, calibrated to every statistic the paper
//! reports:
//!
//! * [`calibration`] — the paper's reported constants (medians, percentages,
//!   block and cluster sizes) in one place, with the sentence of the paper
//!   each value comes from;
//! * [`distributions`] — the samplers (Poisson, log-normal, Pareto,
//!   exponential) used by the failure and workload models, implemented here
//!   so the workspace needs no extra dependencies;
//! * [`unavailability`] — the machine-unavailability process behind Fig. 3a;
//! * [`recovery_trace`] — per-day recovery/traffic series types and an
//!   analytic generator for Fig. 3b-shaped data (the discrete-event
//!   simulator in `pbrs-cluster` produces the same types);
//! * [`stripe_failures`] — the stripe-degradation distribution of §2.2;
//! * [`stats`] — medians, percentiles, histograms;
//! * [`report`] — CSV and markdown writers plus ASCII charts used by the
//!   experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod distributions;
pub mod recovery_trace;
pub mod report;
pub mod stats;
pub mod stripe_failures;
pub mod unavailability;

pub use calibration::PaperConstants;
pub use recovery_trace::{DailyRecovery, RecoveryTrace};
pub use stats::Summary;
pub use stripe_failures::StripeDegradation;
pub use unavailability::{UnavailabilityEvent, UnavailabilityModel};
