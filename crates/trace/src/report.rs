//! Report writers: CSV, markdown tables and ASCII charts.
//!
//! The experiment binaries in `pbrs-bench` print the same rows/series the
//! paper's figures and tables report; these helpers keep that formatting in
//! one place and make the output easy to diff into `EXPERIMENTS.md`.

use std::fmt::Write as _;

/// Renders a CSV document from a header and rows.
///
/// Fields containing commas, quotes or newlines are quoted and escaped.
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&csv_line(
        header
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .as_slice(),
    ));
    for row in rows {
        out.push_str(&csv_line(row));
    }
    out
}

fn csv_line(fields: &[String]) -> String {
    let escaped: Vec<String> = fields
        .iter()
        .map(|f| {
            if f.contains(',') || f.contains('"') || f.contains('\n') {
                format!("\"{}\"", f.replace('"', "\"\""))
            } else {
                f.clone()
            }
        })
        .collect();
    format!("{}\n", escaped.join(","))
}

/// Renders a GitHub-flavoured markdown table.
///
/// # Panics
///
/// Panics if any row has a different number of columns than the header.
pub fn to_markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    // pbrs-lint: allow(panic-hygiene) -- fmt::Write into a String is infallible
    writeln!(out, "| {} |", header.join(" | ")).expect("writing to a String cannot fail");
    writeln!(out, "|{}|", vec!["---"; header.len()].join("|"))
        // pbrs-lint: allow(panic-hygiene) -- fmt::Write into a String is infallible
        .expect("writing to a String cannot fail");
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width must match header width");
        // pbrs-lint: allow(panic-hygiene) -- fmt::Write into a String is infallible
        writeln!(out, "| {} |", row.join(" | ")).expect("writing to a String cannot fail");
    }
    out
}

/// Renders a horizontal ASCII bar chart of a per-day series, similar in
/// spirit to the paper's Fig. 3 plots. One row per value, scaled to
/// `max_width` characters, annotated with the numeric value.
pub fn ascii_series(title: &str, labels: &[String], values: &[f64], max_width: usize) -> String {
    assert_eq!(labels.len(), values.len(), "one label per value");
    let mut out = String::new();
    // pbrs-lint: allow(panic-hygiene) -- fmt::Write into a String is infallible
    writeln!(out, "{title}").expect("writing to a String cannot fail");
    let max = values.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
    for (label, &v) in labels.iter().zip(values) {
        let width = ((v / max) * max_width as f64).round().max(0.0) as usize;
        writeln!(out, "{label:>8} | {:<max_width$} {v:.1}", "#".repeat(width))
            // pbrs-lint: allow(panic-hygiene) -- fmt::Write into a String is infallible
            .expect("writing to a String cannot fail");
    }
    out
}

/// Formats a byte count using binary units (KiB/MiB/GiB/TiB/PiB) with two
/// decimals, matching the way the paper reports traffic volumes.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

/// Formats a count with thousands separators ("95,500").
pub fn human_count(count: u64) -> String {
    let digits: Vec<char> = count.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, c) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(*c);
    }
    out.chars().rev().collect()
}

/// A labelled paper-vs-measured comparison row used in EXPERIMENTS.md.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// What is being compared (e.g. "median blocks reconstructed / day").
    pub metric: String,
    /// The value the paper reports.
    pub paper: String,
    /// The value this reproduction measured.
    pub measured: String,
}

/// Renders paper-vs-measured rows as a markdown table.
pub fn comparison_table(rows: &[ComparisonRow]) -> String {
    to_markdown_table(
        &["metric", "paper", "measured (this reproduction)"],
        &rows
            .iter()
            .map(|r| vec![r.metric.clone(), r.paper.clone(), r.measured.clone()])
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_escaping() {
        let csv = to_csv(
            &["a", "b"],
            &[
                vec!["1".into(), "plain".into()],
                vec!["2".into(), "has,comma".into()],
                vec!["3".into(), "has\"quote".into()],
            ],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "1,plain");
        assert_eq!(lines[2], "2,\"has,comma\"");
        assert_eq!(lines[3], "3,\"has\"\"quote\"");
    }

    #[test]
    fn markdown_table_layout() {
        let md = to_markdown_table(
            &["code", "overhead"],
            &[vec!["RS(10,4)".into(), "1.4".into()]],
        );
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| code | overhead |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| RS(10,4) | 1.4 |");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn markdown_table_rejects_ragged_rows() {
        to_markdown_table(&["a", "b"], &[vec!["only one".into()]]);
    }

    #[test]
    fn ascii_series_scales_to_max() {
        let chart = ascii_series("traffic", &["d1".into(), "d2".into()], &[50.0, 100.0], 20);
        assert!(chart.starts_with("traffic\n"));
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[1].contains("##########"));
        assert!(lines[2].contains("####################"));
        assert!(lines[2].contains("100.0"));
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KiB");
        assert_eq!(human_bytes(5 * 1024 * 1024), "5.00 MiB");
        assert_eq!(human_bytes(1024u64.pow(4)), "1.00 TiB");
        assert_eq!(human_bytes(180 * 1024u64.pow(4)), "180.00 TiB");
        assert_eq!(human_bytes(3 * 1024u64.pow(5)), "3.00 PiB");
    }

    #[test]
    fn human_count_grouping() {
        assert_eq!(human_count(0), "0");
        assert_eq!(human_count(999), "999");
        assert_eq!(human_count(1000), "1,000");
        assert_eq!(human_count(95_500), "95,500");
        assert_eq!(human_count(1_234_567_890), "1,234,567,890");
    }

    #[test]
    fn comparison_table_rendering() {
        let table = comparison_table(&[ComparisonRow {
            metric: "median TB/day".into(),
            paper: ">180".into(),
            measured: "190.2".into(),
        }]);
        assert!(table.contains("| median TB/day | >180 | 190.2 |"));
        assert!(table.contains("measured (this reproduction)"));
    }
}
