//! The paper's reported measurements, as constants.
//!
//! Every number here is taken from the text of the paper and is used in two
//! ways: (a) to calibrate the synthetic failure/workload models, and (b) as
//! the "paper" column in the paper-vs-measured tables of `EXPERIMENTS.md`.

/// Constants reported by the paper for Facebook's warehouse cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperConstants {
    /// HDFS block size: "partitioned into blocks of size 256 MB" (§2.1).
    pub block_size_bytes: u64,
    /// Data blocks per stripe: "(10, 4) RS code" (§2.1).
    pub rs_data_blocks: usize,
    /// Parity blocks per stripe (§2.1).
    pub rs_parity_blocks: usize,
    /// Storage overhead of the production code: "1.4x storage requirement"
    /// (§1).
    pub rs_storage_overhead: f64,
    /// Storage overhead of replication: "3x under conventional replication"
    /// (§1).
    pub replication_overhead: f64,
    /// Median machine-unavailability events per day: "The median is more
    /// than 50 machine-unavailability events per day" (§2.2, Fig. 3a).
    pub median_unavailability_events_per_day: f64,
    /// Detection grace period: "15 minutes is the default wait-time of the
    /// cluster to flag a machine as unavailable" (§2.2).
    pub detection_timeout_minutes: f64,
    /// Median RS blocks reconstructed per day: "A median of 95,500 blocks of
    /// RS-coded data are required to be recovered each day" (§2.2, Fig. 3b).
    pub median_blocks_reconstructed_per_day: f64,
    /// Median cross-rack recovery traffic per day: "a median of more than
    /// 180 TB of data is transferred through the TOR switches every day"
    /// (§2.2, Fig. 3b).
    pub median_cross_rack_recovery_tb_per_day: f64,
    /// Stripe-degradation split: "98.08% have exactly one block missing"
    /// (§2.2).
    pub stripes_with_one_missing_pct: f64,
    /// "The percentage of stripes with two blocks missing is 1.87%" (§2.2).
    pub stripes_with_two_missing_pct: f64,
    /// "with three or more blocks missing is 0.05%" (§2.2).
    pub stripes_with_three_plus_missing_pct: f64,
    /// Theoretical single-failure recovery saving of the proposed code:
    /// "reduces the ... bandwidth requirement by 30%" (§3.2).
    pub piggyback_recovery_saving: f64,
    /// Estimated cross-rack traffic reduction: "a reduction of more than
    /// 50 TB of cross-rack traffic per day" (§3.2).
    pub estimated_traffic_reduction_tb_per_day: f64,
    /// Order of magnitude of cluster size: "a few thousand machines" (§1,
    /// §2.1). Used as the default simulated machine count.
    pub approx_machines: usize,
    /// Per-machine raw capacity: "24-36 TB" (§2.1), midpoint in bytes.
    pub machine_capacity_bytes: u64,
    /// RS-coded data across the two clusters: "more than ten petabytes"
    /// (§2.1), in bytes.
    pub rs_coded_data_bytes: u64,
    /// Measurement window of Fig. 3a in days ("22nd Jan. to 24th Feb. 2013").
    pub unavailability_window_days: usize,
    /// Measurement window of Fig. 3b in days ("first 24 days of Feb. 2013").
    pub recovery_window_days: usize,
}

impl PaperConstants {
    /// The published values.
    pub const fn published() -> Self {
        PaperConstants {
            block_size_bytes: 256 * 1024 * 1024,
            rs_data_blocks: 10,
            rs_parity_blocks: 4,
            rs_storage_overhead: 1.4,
            replication_overhead: 3.0,
            median_unavailability_events_per_day: 50.0,
            detection_timeout_minutes: 15.0,
            median_blocks_reconstructed_per_day: 95_500.0,
            median_cross_rack_recovery_tb_per_day: 180.0,
            stripes_with_one_missing_pct: 98.08,
            stripes_with_two_missing_pct: 1.87,
            stripes_with_three_plus_missing_pct: 0.05,
            piggyback_recovery_saving: 0.30,
            estimated_traffic_reduction_tb_per_day: 50.0,
            approx_machines: 3000,
            machine_capacity_bytes: 30 * TB,
            rs_coded_data_bytes: 10 * PB,
            unavailability_window_days: 34,
            recovery_window_days: 24,
        }
    }

    /// The full stripe width `k + r`.
    pub const fn stripe_width(&self) -> usize {
        self.rs_data_blocks + self.rs_parity_blocks
    }

    /// Cross-rack bytes moved to recover a single full-size block under the
    /// production RS code (`k` whole blocks).
    pub const fn rs_bytes_per_block_recovery(&self) -> u64 {
        self.block_size_bytes * self.rs_data_blocks as u64
    }
}

impl Default for PaperConstants {
    fn default() -> Self {
        Self::published()
    }
}

/// One kibibyte-free terabyte (10^12 bytes are *not* used; storage systems in
/// the paper report binary units, so TB here is 2^40 bytes).
pub const TB: u64 = 1024 * 1024 * 1024 * 1024;

/// One petabyte (2^50 bytes).
pub const PB: u64 = 1024 * TB;

/// One gigabyte (2^30 bytes).
pub const GB: u64 = 1024 * 1024 * 1024;

/// One megabyte (2^20 bytes).
pub const MB: u64 = 1024 * 1024;

/// Converts a byte count to (binary) terabytes as a float, for reporting.
pub fn bytes_to_tb(bytes: u64) -> f64 {
    bytes as f64 / TB as f64
}

/// Converts (binary) terabytes to bytes.
pub fn tb_to_bytes(tb: f64) -> u64 {
    (tb * TB as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_values_are_self_consistent() {
        let c = PaperConstants::published();
        assert_eq!(c.stripe_width(), 14);
        assert!((c.rs_storage_overhead - 1.4).abs() < 1e-12);
        assert_eq!(c.block_size_bytes, 268_435_456);
        assert_eq!(c.rs_bytes_per_block_recovery(), 10 * 268_435_456);
        // The three stripe-degradation percentages sum to 100%.
        let total = c.stripes_with_one_missing_pct
            + c.stripes_with_two_missing_pct
            + c.stripes_with_three_plus_missing_pct;
        assert!((total - 100.0).abs() < 1e-9);
        assert_eq!(PaperConstants::default(), c);
    }

    #[test]
    fn implied_daily_traffic_is_in_the_measured_ballpark() {
        // Sanity check that the paper's own numbers hang together: 95,500
        // recoveries/day x 10 blocks x 256MB = ~233 TB/day if every block
        // were full-size; the measured median of ~180 TB/day implies an
        // average recovered-block size of ~198 MB (files do not align to
        // 256 MB, so tail blocks are smaller). The simulator's block-size
        // model reproduces this gap.
        let c = PaperConstants::published();
        let full = c.median_blocks_reconstructed_per_day
            * c.rs_data_blocks as f64
            * bytes_to_tb(c.block_size_bytes);
        assert!(full > 225.0 && full < 245.0, "{full}");
        let implied_avg_block_mb = c.median_cross_rack_recovery_tb_per_day * TB as f64
            / (c.median_blocks_reconstructed_per_day * c.rs_data_blocks as f64)
            / MB as f64;
        assert!(implied_avg_block_mb > 150.0 && implied_avg_block_mb < 256.0);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(TB, 1 << 40);
        assert_eq!(PB, 1 << 50);
        assert!((bytes_to_tb(TB) - 1.0).abs() < 1e-12);
        assert!((bytes_to_tb(512 * GB) - 0.5).abs() < 1e-12);
        assert_eq!(tb_to_bytes(2.0), 2 * TB);
        let round_trip = tb_to_bytes(bytes_to_tb(123_456_789_000)) as i64;
        assert!((round_trip - 123_456_789_000i64).abs() <= 1, "{round_trip}");
    }
}
