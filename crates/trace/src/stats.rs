//! Summary statistics and histograms used by the experiment reports.

/// Summary statistics of a numeric series (medians and percentiles are
/// computed by linear interpolation between order statistics).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 for an empty series).
    pub mean: f64,
    /// Minimum (0 for an empty series).
    pub min: f64,
    /// Maximum (0 for an empty series).
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 10th percentile.
    pub p10: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Computes summary statistics of a series.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary::default();
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        let mut sorted = values.to_vec();
        // pbrs-lint: allow(panic-hygiene) -- summary inputs are finite measurements; NaN is structurally impossible
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in summaries"));
        Summary {
            count,
            mean,
            min: sorted[0],
            max: sorted[count - 1],
            median: percentile_sorted(&sorted, 50.0),
            p10: percentile_sorted(&sorted, 10.0),
            p90: percentile_sorted(&sorted, 90.0),
            std_dev: variance.sqrt(),
        }
    }

    /// Convenience constructor from integer counts.
    pub fn of_counts(values: &[u64]) -> Self {
        let as_f64: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Self::of(&as_f64)
    }
}

/// Percentile (0–100) of an unsorted series, by linear interpolation.
///
/// Returns 0.0 for an empty series.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or the data contains NaN.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    // pbrs-lint: allow(panic-hygiene) -- percentile inputs are finite measurements; NaN is structurally impossible
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in percentile input"));
    percentile_sorted(&sorted, p)
}

fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Median of a series (0.0 if empty).
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// A fixed-width histogram over `[min, max)` with `bins` buckets; values
/// outside the range are clamped into the first/last bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `max <= min`.
    pub fn new(min: f64, max: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(max > min, "histogram range must be non-empty");
        Histogram {
            min,
            max,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, value: f64) {
        let bins = self.counts.len();
        let width = (self.max - self.min) / bins as f64;
        let idx = if value <= self.min {
            0
        } else if value >= self.max {
            bins - 1
        } else {
            (((value - self.min) / width) as usize).min(bins - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Adds many observations.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `(bucket_low, bucket_high, count)` triples.
    pub fn buckets(&self) -> Vec<(f64, f64, u64)> {
        let bins = self.counts.len();
        let width = (self.max - self.min) / bins as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                (
                    self.min + i as f64 * width,
                    self.min + (i + 1) as f64 * width,
                    c,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_and_single() {
        assert_eq!(Summary::of(&[]), Summary::default());
        let s = Summary::of(&[42.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn summary_of_known_series() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - core::f64::consts::SQRT_2).abs() < 1e-12);
        // Order must not matter.
        let shuffled = Summary::of(&[5.0, 3.0, 1.0, 4.0, 2.0]);
        assert_eq!(s, shuffled);
    }

    #[test]
    fn median_even_length_interpolates() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(median(&[10.0, 20.0]), 15.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 0.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 90.0), 90.0);
        assert_eq!(percentile(&v, 25.0), 25.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn percentile_out_of_range_panics() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn counts_helper() {
        let s = Summary::of_counts(&[10, 20, 30]);
        assert_eq!(s.mean, 20.0);
        assert_eq!(s.median, 20.0);
    }

    #[test]
    fn histogram_buckets_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record_all([0.5, 1.5, 2.5, 9.9, 15.0, -3.0]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts(), &[3, 1, 0, 0, 2]);
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 5);
        assert_eq!(buckets[0], (0.0, 2.0, 3));
        assert_eq!(buckets[4], (8.0, 10.0, 2));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "range must be non-empty")]
    fn histogram_bad_range_panics() {
        Histogram::new(1.0, 1.0, 4);
    }
}
