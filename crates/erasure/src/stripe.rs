//! Stripe containers and block↔shard helpers.
//!
//! The warehouse cluster encodes files by first splitting them into 256 MB
//! blocks, grouping 10 blocks into a block-level stripe and generating 4
//! parity blocks (paper Fig. 2). These helpers provide the byte-level side of
//! that pipeline: splitting a contiguous byte block into `k` equal shards
//! (with zero padding) and joining shards back into the original bytes.

use crate::{CodeError, ErasureCode};

/// A stripe of optional shards, as used during degraded operation.
///
/// # Example
///
/// ```
/// use pbrs_erasure::{ErasureCode, ReedSolomon, Stripe};
///
/// # fn main() -> Result<(), pbrs_erasure::CodeError> {
/// let rs = ReedSolomon::new(4, 2)?;
/// let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 8]).collect();
/// let mut stripe = Stripe::from_encoding(&rs, &data)?;
/// stripe.erase(1);
/// stripe.erase(5);
/// assert_eq!(stripe.missing(), vec![1, 5]);
/// stripe.reconstruct(&rs)?;
/// assert!(stripe.is_complete());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stripe {
    shards: Vec<Option<Vec<u8>>>,
}

impl Stripe {
    /// Creates a stripe from complete shards.
    pub fn new(shards: Vec<Vec<u8>>) -> Self {
        Stripe {
            shards: shards.into_iter().map(Some).collect(),
        }
    }

    /// Creates a stripe holding `n` missing shards.
    pub fn empty(n: usize) -> Self {
        Stripe {
            shards: vec![None; n],
        }
    }

    /// Encodes `data` with `code` and returns the full stripe
    /// (data shards followed by parity shards).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors from the code.
    pub fn from_encoding<C: ErasureCode + ?Sized>(
        code: &C,
        data: &[Vec<u8>],
    ) -> Result<Self, CodeError> {
        let parity = code.encode(data)?;
        let mut shards: Vec<Option<Vec<u8>>> = data.iter().cloned().map(Some).collect();
        shards.extend(parity.into_iter().map(Some));
        Ok(Stripe { shards })
    }

    /// Number of shard slots.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` if the stripe has no shard slots.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Marks shard `index` as missing, returning the previous contents.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn erase(&mut self, index: usize) -> Option<Vec<u8>> {
        self.shards[index].take()
    }

    /// Stores `shard` at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn insert(&mut self, index: usize, shard: Vec<u8>) {
        self.shards[index] = Some(shard);
    }

    /// Returns shard `index` if present.
    pub fn shard(&self, index: usize) -> Option<&[u8]> {
        self.shards.get(index).and_then(|s| s.as_deref())
    }

    /// Indices of missing shards.
    pub fn missing(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect()
    }

    /// Availability mask (`true` = present), as consumed by
    /// [`ErasureCode::repair_plan`].
    pub fn availability(&self) -> Vec<bool> {
        self.shards.iter().map(|s| s.is_some()).collect()
    }

    /// `true` when every shard is present.
    pub fn is_complete(&self) -> bool {
        self.shards.iter().all(|s| s.is_some())
    }

    /// Number of missing shards.
    pub fn missing_count(&self) -> usize {
        self.shards.iter().filter(|s| s.is_none()).count()
    }

    /// Reconstructs all missing shards in place using `code`.
    ///
    /// # Errors
    ///
    /// Propagates decoding errors from the code.
    pub fn reconstruct<C: ErasureCode + ?Sized>(&mut self, code: &C) -> Result<(), CodeError> {
        code.reconstruct(&mut self.shards)
    }

    /// Immutable access to the underlying optional shards.
    pub fn as_slice(&self) -> &[Option<Vec<u8>>] {
        &self.shards
    }

    /// Mutable access to the underlying optional shards.
    pub fn as_mut_slice(&mut self) -> &mut [Option<Vec<u8>>] {
        &mut self.shards
    }

    /// Consumes the stripe and returns the shards, which must all be present.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::NotEnoughShards`] if any shard is missing.
    pub fn into_shards(self) -> Result<Vec<Vec<u8>>, CodeError> {
        let total = self.shards.len();
        let present = self.shards.iter().filter(|s| s.is_some()).count();
        if present != total {
            return Err(CodeError::NotEnoughShards {
                needed: total,
                available: present,
            });
        }
        Ok(self
            .shards
            .into_iter()
            // pbrs-lint: allow(panic-hygiene) -- presence of every shard was checked before this collect
            .map(|s| s.expect("checked"))
            .collect())
    }
}

impl From<Vec<Option<Vec<u8>>>> for Stripe {
    fn from(shards: Vec<Option<Vec<u8>>>) -> Self {
        Stripe { shards }
    }
}

/// Splits a contiguous byte block into `k` equal shards, padding the last
/// shard with zeros so that every shard length is a multiple of
/// `granularity`.
///
/// Returns the shards together with the original length (needed by
/// [`join_shards`] to strip the padding).
///
/// # Errors
///
/// Returns [`CodeError::InvalidParams`] if `k == 0`, `granularity == 0`, or
/// `data` is empty.
pub fn split_into_shards(
    data: &[u8],
    k: usize,
    granularity: usize,
) -> Result<(Vec<Vec<u8>>, usize), CodeError> {
    if k == 0 || granularity == 0 {
        return Err(CodeError::InvalidParams {
            reason: "k and granularity must be positive".into(),
        });
    }
    if data.is_empty() {
        return Err(CodeError::InvalidParams {
            reason: "cannot split an empty block".into(),
        });
    }
    let raw = data.len().div_ceil(k);
    let shard_len = raw.div_ceil(granularity) * granularity;
    let mut shards = Vec::with_capacity(k);
    for i in 0..k {
        let start = (i * shard_len).min(data.len());
        let end = ((i + 1) * shard_len).min(data.len());
        let mut shard = data[start..end].to_vec();
        shard.resize(shard_len, 0);
        shards.push(shard);
    }
    Ok((shards, data.len()))
}

/// Joins data shards produced by [`split_into_shards`] back into the original
/// byte block of length `original_len`.
///
/// # Errors
///
/// Returns [`CodeError::InvalidParams`] if the shards cannot contain
/// `original_len` bytes.
pub fn join_shards(shards: &[Vec<u8>], original_len: usize) -> Result<Vec<u8>, CodeError> {
    let capacity: usize = shards.iter().map(|s| s.len()).sum();
    if capacity < original_len {
        return Err(CodeError::InvalidParams {
            reason: format!("shards hold {capacity} bytes, need {original_len}"),
        });
    }
    let mut out = Vec::with_capacity(original_len);
    for shard in shards {
        if out.len() >= original_len {
            break;
        }
        let take = (original_len - out.len()).min(shard.len());
        out.extend_from_slice(&shard[..take]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReedSolomon;

    #[test]
    fn split_and_join_round_trip() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for k in [1usize, 3, 7, 10] {
            for granularity in [1usize, 2, 4] {
                let (shards, len) = split_into_shards(&data, k, granularity).unwrap();
                assert_eq!(shards.len(), k);
                assert_eq!(len, data.len());
                let shard_len = shards[0].len();
                assert_eq!(shard_len % granularity, 0);
                assert!(shards.iter().all(|s| s.len() == shard_len));
                let joined = join_shards(&shards, len).unwrap();
                assert_eq!(joined, data);
            }
        }
    }

    #[test]
    fn split_rejects_bad_inputs() {
        assert!(split_into_shards(&[], 4, 1).is_err());
        assert!(split_into_shards(&[1, 2, 3], 0, 1).is_err());
        assert!(split_into_shards(&[1, 2, 3], 2, 0).is_err());
    }

    #[test]
    fn join_rejects_short_shards() {
        let shards = vec![vec![1u8, 2], vec![3u8, 4]];
        assert!(join_shards(&shards, 10).is_err());
        assert_eq!(join_shards(&shards, 3).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn split_tiny_block_across_many_shards() {
        // A 3-byte block split 10 ways: later shards are pure padding.
        let (shards, len) = split_into_shards(&[9, 8, 7], 10, 2).unwrap();
        assert_eq!(len, 3);
        assert_eq!(shards.len(), 10);
        assert!(shards.iter().all(|s| s.len() == 2));
        assert_eq!(join_shards(&shards, len).unwrap(), vec![9, 8, 7]);
    }

    #[test]
    fn stripe_lifecycle() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 * 3 + 1; 12]).collect();
        let mut stripe = Stripe::from_encoding(&rs, &data).unwrap();
        assert_eq!(stripe.len(), 6);
        assert!(!stripe.is_empty());
        assert!(stripe.is_complete());
        assert!(stripe.missing().is_empty());

        let erased = stripe.erase(2).unwrap();
        assert_eq!(erased, data[2]);
        stripe.erase(4);
        assert_eq!(stripe.missing(), vec![2, 4]);
        assert_eq!(stripe.missing_count(), 2);
        assert_eq!(
            stripe.availability(),
            vec![true, true, false, true, false, true]
        );
        assert!(stripe.shard(2).is_none());
        assert_eq!(stripe.shard(0), Some(&data[0][..]));

        stripe.reconstruct(&rs).unwrap();
        assert!(stripe.is_complete());
        assert_eq!(stripe.shard(2), Some(&data[2][..]));

        let shards = stripe.clone().into_shards().unwrap();
        assert_eq!(shards.len(), 6);
        assert!(rs.verify(&shards).unwrap());

        stripe.erase(0);
        assert!(stripe.into_shards().is_err());
    }

    #[test]
    fn stripe_insert_and_empty() {
        let mut stripe = Stripe::empty(3);
        assert_eq!(stripe.len(), 3);
        assert_eq!(stripe.missing_count(), 3);
        stripe.insert(1, vec![1, 2, 3]);
        assert_eq!(stripe.shard(1), Some(&[1u8, 2, 3][..]));
        assert_eq!(stripe.missing(), vec![0, 2]);

        let from_vec: Stripe = vec![Some(vec![1u8]), None].into();
        assert_eq!(from_vec.missing(), vec![1]);
        assert!(Stripe::empty(0).is_empty());
    }
}
