//! Generic decoding of linear codes from their generator matrix.
//!
//! Every code in this workspace (Reed–Solomon, LRC, and each substripe of the
//! Piggybacked-RS code) is a linear code over GF(2^8): shard `i` equals
//! `G[i] · d`, where `d` is the vector of data symbols and `G` is an
//! `n × k` generator matrix whose top `k × k` block is the identity.
//!
//! Decoding therefore reduces to: pick `k` surviving shards whose generator
//! rows are linearly independent, invert that submatrix, recover the data,
//! and re-encode whatever is missing. This module implements that once so
//! that every code shares the same, well-tested path.

use pbrs_gf::slice_ops;
use pbrs_gf::Matrix;

use crate::views::ShardSetMut;
use crate::CodeError;

/// Selects `k` row indices from `candidates` whose rows in `generator` are
/// linearly independent, preferring earlier candidates.
///
/// Returns `None` when the candidate rows do not span the full data space
/// (possible for non-MDS codes such as LRC under unlucky failure patterns).
pub fn select_independent_rows(generator: &Matrix, candidates: &[usize]) -> Option<Vec<usize>> {
    let k = generator.cols();
    let mut selected: Vec<usize> = Vec::with_capacity(k);
    // Maintain a row-echelon basis of the selected rows.
    let mut basis: Vec<Vec<u8>> = Vec::with_capacity(k);
    for &idx in candidates {
        if selected.len() == k {
            break;
        }
        let mut row = generator.row(idx).to_vec();
        // Reduce against the existing basis.
        for b in &basis {
            let lead = b
                .iter()
                .position(|&x| x != 0)
                // pbrs-lint: allow(panic-hygiene) -- basis rows are non-zero by construction of the generator
                .expect("basis rows are non-zero");
            if row[lead] != 0 {
                let factor = pbrs_gf::tables::div(row[lead], b[lead]);
                for (r, bv) in row.iter_mut().zip(b.iter()) {
                    *r ^= pbrs_gf::tables::mul(factor, *bv);
                }
            }
        }
        if row.iter().any(|&x| x != 0) {
            basis.push(row);
            selected.push(idx);
        }
    }
    if selected.len() == k {
        Some(selected)
    } else {
        None
    }
}

/// Reconstructs all missing shards of a stripe described by `generator`.
///
/// `shards[i]`, when present, must equal `generator.row(i) · data` applied
/// column-wise over the shard bytes. Present shards are left untouched;
/// missing shards are filled in.
///
/// # Errors
///
/// * [`CodeError::NotEnoughShards`] if fewer than `k` shards survive.
/// * [`CodeError::ReconstructionFailed`] if the surviving rows do not span
///   the data space (only possible for non-MDS generators).
/// * [`CodeError::Matrix`] if inversion fails unexpectedly.
pub fn reconstruct_linear(
    generator: &Matrix,
    shards: &mut [Option<Vec<u8>>],
    shard_len: usize,
) -> Result<(), CodeError> {
    let n = generator.rows();
    let k = generator.cols();
    debug_assert_eq!(shards.len(), n, "caller validates shard count");

    let present: Vec<usize> = (0..n).filter(|&i| shards[i].is_some()).collect();
    if present.len() == n {
        return Ok(());
    }
    if present.len() < k {
        return Err(CodeError::NotEnoughShards {
            needed: k,
            available: present.len(),
        });
    }

    // Fast path: if all k data shards survive, missing shards are parities and
    // can be recomputed directly without a matrix inversion.
    let all_data_present = (0..k).all(|i| shards[i].is_some());

    let data_shards: Vec<Vec<u8>> = if all_data_present {
        (0..k)
            // pbrs-lint: allow(panic-hygiene) -- all_data_present was checked on the line above
            .map(|i| shards[i].as_ref().expect("checked present").clone())
            .collect()
    } else {
        let rows = select_independent_rows(generator, &present).ok_or(
            CodeError::ReconstructionFailed {
                context: "surviving shards do not span the data",
            },
        )?;
        let sub = generator.submatrix_rows(&rows)?;
        let inv = sub.inverted()?;
        // data[j] = Σ_i inv[j][i] * shards[rows[i]]
        let selected: Vec<&[u8]> = rows
            .iter()
            // pbrs-lint: allow(panic-hygiene) -- rows were selected from present shards above
            .map(|&i| shards[i].as_deref().expect("selected rows are present"))
            .collect();
        (0..k)
            .map(|j| {
                let mut out = vec![0u8; shard_len];
                slice_ops::linear_combination(inv.row(j), &selected, &mut out);
                out
            })
            .collect()
    };

    // Re-encode every missing shard from the recovered data in one
    // multi-output pass over it.
    let data_refs: Vec<&[u8]> = data_shards.iter().map(|s| s.as_slice()).collect();
    let missing: Vec<usize> = (0..n).filter(|&i| shards[i].is_none()).collect();
    let rows: Vec<&[u8]> = missing.iter().map(|&i| generator.row(i)).collect();
    let mut rebuilt: Vec<Vec<u8>> = missing.iter().map(|_| vec![0u8; shard_len]).collect();
    {
        let mut outs: Vec<&mut [u8]> = rebuilt.iter_mut().map(|s| s.as_mut_slice()).collect();
        slice_ops::matrix_mul_into(&rows, &data_refs, &mut outs);
    }
    for (i, shard) in missing.into_iter().zip(rebuilt) {
        shards[i] = Some(shard);
    }
    Ok(())
}

/// Reconstructs every missing shard of a linear code *in place*, inside a
/// borrowed shard view, without allocating any shard-sized buffer.
///
/// `shards` holds all `n` shard slots of the stripe; `present[i]` says
/// whether slot `i` currently holds valid bytes. Present slots are never
/// modified. Each missing slot is rebuilt directly as a linear combination
/// of `k` independent surviving shards: the coefficients come from one
/// `k × k` inversion (`O(k²)` bookkeeping — nothing proportional to the
/// shard length is allocated).
///
/// # Errors
///
/// * [`CodeError::NotEnoughShards`] if fewer than `k` shards survive.
/// * [`CodeError::ReconstructionFailed`] if the surviving rows do not span
///   the data space (only possible for non-MDS generators).
/// * [`CodeError::Matrix`] if inversion fails unexpectedly.
pub fn reconstruct_linear_in_place(
    generator: &Matrix,
    shards: &mut ShardSetMut<'_>,
    present: &[bool],
) -> Result<(), CodeError> {
    let n = generator.rows();
    let k = generator.cols();
    debug_assert_eq!(shards.shard_count(), n, "caller validates shard count");
    debug_assert_eq!(present.len(), n, "caller validates mask width");

    let present_idx: Vec<usize> = (0..n).filter(|&i| present[i]).collect();
    if present_idx.len() == n {
        return Ok(());
    }
    if present_idx.len() < k {
        return Err(CodeError::NotEnoughShards {
            needed: k,
            available: present_idx.len(),
        });
    }

    let missing_mask: Vec<bool> = present.iter().map(|&ok| !ok).collect();

    // Fast path: all data shards survive, so every missing shard is a parity
    // and can be re-encoded straight from the data rows — all of them in
    // one multi-output pass over the data.
    if (0..k).all(|i| present[i]) {
        let rows: Vec<&[u8]> = (k..n)
            .filter(|&i| !present[i])
            .map(|i| generator.row(i))
            .collect();
        let (mut outs, survivors) = shards.split_parts_mut(&missing_mask);
        // Survivors are listed in index order and shards 0..k are all
        // present, so the data shards are exactly the first k entries.
        let srcs: Vec<&[u8]> = survivors[..k].to_vec();
        slice_ops::matrix_mul_into(&rows, &srcs, &mut outs);
        return Ok(());
    }

    let rows = select_independent_rows(generator, &present_idx).ok_or(
        CodeError::ReconstructionFailed {
            context: "surviving shards do not span the data",
        },
    )?;
    let sub = generator.submatrix_rows(&rows)?;
    let inv = sub.inverted()?;

    // shard_i = row_i · data and data = inv · selected, so
    // shard_i = (row_i · inv) · selected — one coefficient row per missing
    // slot, then a single multi-output pass over the selected survivors.
    let mut coeff_rows: Vec<Vec<u8>> = Vec::new();
    for (i, &ok) in present.iter().enumerate() {
        if ok {
            continue;
        }
        let mut coeffs = vec![0u8; k];
        for (t, c) in coeffs.iter_mut().enumerate() {
            let mut acc = 0u8;
            for j in 0..k {
                acc ^= pbrs_gf::tables::mul(generator.get(i, j), inv.get(j, t));
            }
            *c = acc;
        }
        coeff_rows.push(coeffs);
    }
    let (mut outs, survivors) = shards.split_parts_mut(&missing_mask);
    // `survivors` lists present shards in index order; map each selected
    // row's shard index to its position in that list.
    let srcs: Vec<&[u8]> = rows
        .iter()
        .map(|&s| {
            let pos = present_idx
                .binary_search(&s)
                // pbrs-lint: allow(panic-hygiene) -- selected rows come from present_idx itself
                .expect("selected rows are present");
            survivors[pos]
        })
        .collect();
    let row_refs: Vec<&[u8]> = coeff_rows.iter().map(|r| r.as_slice()).collect();
    slice_ops::matrix_mul_into(&row_refs, &srcs, &mut outs);
    Ok(())
}

/// Coefficients expressing shard `target` as a combination of the given
/// helper shards, under `generator`.
///
/// # Errors
///
/// Returns [`CodeError::ReconstructionFailed`] if the helper rows do not
/// span the target row.
pub fn combination_coefficients(
    generator: &Matrix,
    target: usize,
    helpers: &[usize],
) -> Result<Vec<u8>, CodeError> {
    let rows: Vec<&[u8]> = helpers.iter().map(|&i| generator.row(i)).collect();
    solve_combination(&rows, generator.row(target)).ok_or(CodeError::ReconstructionFailed {
        context: "helper shards do not span the target shard",
    })
}

/// Finds coefficients `c` such that `Σ_i c[i] * rows[i] == target_row`, i.e.
/// expresses the target shard's generator row as a linear combination of the
/// helper shards' generator rows.
///
/// Returns `None` when `target_row` is not in the span of `rows`. Free
/// variables are set to zero, so helpers that are not needed receive a zero
/// coefficient.
pub fn solve_combination(rows: &[&[u8]], target_row: &[u8]) -> Option<Vec<u8>> {
    let m = rows.len();
    let k = target_row.len();
    if m == 0 {
        return if target_row.iter().all(|&x| x == 0) {
            Some(Vec::new())
        } else {
            None
        };
    }
    debug_assert!(rows.iter().all(|r| r.len() == k));
    // Solve A^T c = t where A^T is k×m: one equation per data symbol.
    // Build the augmented matrix [A^T | t] and run Gauss-Jordan.
    let mut aug = Matrix::zero(k, m + 1);
    for (j, row) in rows.iter().enumerate() {
        for (i, &v) in row.iter().enumerate() {
            aug.set(i, j, v);
        }
    }
    for (i, &v) in target_row.iter().enumerate() {
        aug.set(i, m, v);
    }
    let mut pivot_col_of_row: Vec<Option<usize>> = vec![None; k];
    let mut pivot_row = 0usize;
    for col in 0..m {
        let Some(p) = (pivot_row..k).find(|&r| aug.get(r, col) != 0) else {
            continue;
        };
        aug.swap_rows(pivot_row, p);
        // pbrs-lint: allow(panic-hygiene) -- pivot was chosen as a non-zero entry by the search above
        let inv = pbrs_gf::tables::inverse(aug.get(pivot_row, col)).expect("pivot non-zero");
        for c in col..=m {
            aug.set(
                pivot_row,
                c,
                pbrs_gf::tables::mul(aug.get(pivot_row, c), inv),
            );
        }
        for r in 0..k {
            if r != pivot_row && aug.get(r, col) != 0 {
                let factor = aug.get(r, col);
                for c in col..=m {
                    let v = aug.get(r, c) ^ pbrs_gf::tables::mul(factor, aug.get(pivot_row, c));
                    aug.set(r, c, v);
                }
            }
        }
        pivot_col_of_row[pivot_row] = Some(col);
        pivot_row += 1;
        if pivot_row == k {
            break;
        }
    }
    // Consistency: any zero row with a non-zero rhs means no solution.
    for r in 0..k {
        let lhs_zero = (0..m).all(|c| aug.get(r, c) == 0);
        if lhs_zero && aug.get(r, m) != 0 {
            return None;
        }
    }
    let mut coeffs = vec![0u8; m];
    for (r, pivot) in pivot_col_of_row.iter().enumerate() {
        if let Some(col) = *pivot {
            coeffs[col] = aug.get(r, m);
        }
    }
    // With free variables fixed at zero the pivot assignment above is only a
    // candidate; verify it (cheap) to guard against inconsistent systems that
    // slipped through structurally.
    for (i, &t) in target_row.iter().enumerate() {
        let mut acc = 0u8;
        for (j, row) in rows.iter().enumerate() {
            acc ^= pbrs_gf::tables::mul(coeffs[j], row[i]);
        }
        if acc != t {
            return None;
        }
    }
    Some(coeffs)
}

/// Rebuilds a single target shard as a linear combination of helper shards,
/// given the code's generator matrix and the helper indices.
///
/// # Errors
///
/// Returns [`CodeError::ReconstructionFailed`] if the helpers do not span the
/// target shard's row.
pub fn repair_by_combination(
    generator: &Matrix,
    target: usize,
    helpers: &[usize],
    shards: &[Option<Vec<u8>>],
    shard_len: usize,
) -> Result<Vec<u8>, CodeError> {
    let rows: Vec<&[u8]> = helpers.iter().map(|&i| generator.row(i)).collect();
    let coeffs =
        solve_combination(&rows, generator.row(target)).ok_or(CodeError::ReconstructionFailed {
            context: "helper shards do not span the target shard",
        })?;
    let helper_shards: Vec<&[u8]> = helpers
        .iter()
        .map(|&i| {
            shards[i].as_deref().ok_or(CodeError::ReconstructionFailed {
                context: "a helper shard named by the plan is missing",
            })
        })
        .collect::<Result<_, _>>()?;
    let mut out = vec![0u8; shard_len];
    slice_ops::linear_combination(&coeffs, &helper_shards, &mut out);
    Ok(out)
}

/// Recovers only the `k` data shards (without re-encoding parity) and returns
/// them, leaving `shards` untouched.
///
/// # Errors
///
/// Same failure modes as [`reconstruct_linear`].
pub fn decode_data_linear(
    generator: &Matrix,
    shards: &[Option<Vec<u8>>],
    shard_len: usize,
) -> Result<Vec<Vec<u8>>, CodeError> {
    let mut working: Vec<Option<Vec<u8>>> = shards.to_vec();
    reconstruct_linear(generator, &mut working, shard_len)?;
    Ok(working
        .into_iter()
        .take(generator.cols())
        // pbrs-lint: allow(panic-hygiene) -- reconstruct fills every shard slot before collecting
        .map(|s| s.expect("reconstruct fills all shards"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbrs_gf::Matrix;

    /// Builds the systematic generator used by the RS code for testing the
    /// generic machinery in isolation.
    fn systematic_generator(k: usize, r: usize) -> Matrix {
        let v = Matrix::vandermonde(k + r, k);
        let top = v.submatrix(0, 0, k, k).unwrap();
        let inv = top.inverted().unwrap();
        v.multiply(&inv).unwrap()
    }

    fn encode_with(generator: &Matrix, data: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        (0..generator.rows())
            .map(|i| {
                let mut out = vec![0u8; data[0].len()];
                pbrs_gf::slice_ops::linear_combination(generator.row(i), &refs, &mut out);
                out
            })
            .collect()
    }

    #[test]
    fn select_rows_prefers_earlier_candidates() {
        let g = systematic_generator(4, 2);
        let rows = select_independent_rows(&g, &[0, 1, 2, 3, 4, 5]).unwrap();
        assert_eq!(rows, vec![0, 1, 2, 3]);
    }

    #[test]
    fn select_rows_skips_dependent_rows() {
        // Duplicate a row in a custom generator: the duplicate must be skipped.
        let mut g = systematic_generator(3, 2);
        let dup = g.row(3).to_vec();
        for (c, v) in dup.iter().enumerate() {
            g.set(4, c, *v);
        }
        let rows = select_independent_rows(&g, &[3, 4, 0, 1, 2]).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows.contains(&3));
        assert!(!rows.contains(&4), "the duplicated row must be skipped");
    }

    #[test]
    fn select_rows_fails_when_span_insufficient() {
        let g = systematic_generator(4, 2);
        assert!(select_independent_rows(&g, &[0, 1, 2]).is_none());
    }

    #[test]
    fn reconstruct_round_trip_all_patterns() {
        let k = 4;
        let r = 3;
        let g = systematic_generator(k, r);
        let data: Vec<Vec<u8>> = (0..k).map(|i| vec![(i * 17 + 1) as u8; 32]).collect();
        let all = encode_with(&g, &data);

        // Erase every possible subset of up to r shards (exhaustive for n=7).
        let n = k + r;
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize > r {
                continue;
            }
            let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
            for (i, slot) in shards.iter_mut().enumerate() {
                if mask & (1 << i) != 0 {
                    *slot = None;
                }
            }
            reconstruct_linear(&g, &mut shards, 32).unwrap();
            for i in 0..n {
                assert_eq!(
                    shards[i].as_ref().unwrap(),
                    &all[i],
                    "mask {mask:#b}, shard {i}"
                );
            }
        }
    }

    #[test]
    fn reconstruct_too_many_missing() {
        let g = systematic_generator(4, 2);
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 8]).collect();
        let all = encode_with(&g, &data);
        let mut shards: Vec<Option<Vec<u8>>> = all.into_iter().map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        assert!(matches!(
            reconstruct_linear(&g, &mut shards, 8),
            Err(CodeError::NotEnoughShards {
                needed: 4,
                available: 3
            })
        ));
    }

    #[test]
    fn in_place_reconstruct_matches_owned_reconstruct() {
        let k = 4;
        let r = 3;
        let n = k + r;
        let g = systematic_generator(k, r);
        let data: Vec<Vec<u8>> = (0..k).map(|i| vec![(i * 29 + 5) as u8; 24]).collect();
        let all = encode_with(&g, &data);
        for mask in 0u32..(1 << n) {
            if mask.count_ones() as usize > r || mask == 0 {
                continue;
            }
            let mut buf = vec![0u8; n * 24];
            let mut present = vec![true; n];
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    present[i] = false;
                    buf[i * 24..(i + 1) * 24].fill(0xDD); // stale garbage
                } else {
                    buf[i * 24..(i + 1) * 24].copy_from_slice(&all[i]);
                }
            }
            let mut view = ShardSetMut::new(&mut buf, n, 24).unwrap();
            reconstruct_linear_in_place(&g, &mut view, &present).unwrap();
            for i in 0..n {
                assert_eq!(&buf[i * 24..(i + 1) * 24], &all[i][..], "mask {mask:#b}");
            }
        }
    }

    #[test]
    fn in_place_reconstruct_too_many_missing() {
        let g = systematic_generator(4, 2);
        let mut buf = vec![0u8; 6 * 8];
        let mut view = ShardSetMut::new(&mut buf, 6, 8).unwrap();
        let present = [true, true, true, false, false, false];
        assert!(matches!(
            reconstruct_linear_in_place(&g, &mut view, &present),
            Err(CodeError::NotEnoughShards {
                needed: 4,
                available: 3
            })
        ));
    }

    #[test]
    fn combination_coefficients_rebuild_shards() {
        let g = systematic_generator(5, 2);
        let helpers: Vec<usize> = (1..6).collect();
        let coeffs = combination_coefficients(&g, 0, &helpers).unwrap();
        // The coefficients must reproduce row 0 from the helper rows.
        for col in 0..5 {
            let mut acc = 0u8;
            for (j, &h) in helpers.iter().enumerate() {
                acc ^= pbrs_gf::tables::mul(coeffs[j], g.row(h)[col]);
            }
            assert_eq!(acc, g.row(0)[col]);
        }
        // An insufficient helper set is rejected.
        assert!(matches!(
            combination_coefficients(&g, 0, &[1, 2]),
            Err(CodeError::ReconstructionFailed { .. })
        ));
    }

    #[test]
    fn solve_combination_expresses_parity_from_data() {
        let g = systematic_generator(4, 2);
        // Parity row 4 is a combination of the four identity rows with its own
        // coefficients.
        let rows: Vec<&[u8]> = (0..4).map(|i| g.row(i)).collect();
        let coeffs = solve_combination(&rows, g.row(4)).unwrap();
        assert_eq!(coeffs, g.row(4).to_vec());
    }

    #[test]
    fn solve_combination_detects_unreachable_target() {
        let g = systematic_generator(4, 2);
        // Rows 0..3 cannot produce row 3 alone from rows 0..2.
        let rows: Vec<&[u8]> = (0..3).map(|i| g.row(i)).collect();
        assert!(solve_combination(&rows, g.row(3)).is_none());
        // Empty helper set can only produce the zero row.
        assert!(solve_combination(&[], g.row(0)).is_none());
        assert_eq!(solve_combination(&[], &[0, 0, 0, 0]), Some(Vec::new()));
    }

    #[test]
    fn repair_by_combination_rebuilds_any_single_shard() {
        let k = 5;
        let r = 3;
        let g = systematic_generator(k, r);
        let data: Vec<Vec<u8>> = (0..k).map(|i| vec![(i * 11 + 3) as u8; 24]).collect();
        let all = encode_with(&g, &data);
        for target in 0..k + r {
            let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
            shards[target] = None;
            let helpers: Vec<usize> = (0..k + r).filter(|&i| i != target).take(k).collect();
            let rebuilt = repair_by_combination(&g, target, &helpers, &shards, 24).unwrap();
            assert_eq!(rebuilt, all[target]);
        }
    }

    #[test]
    fn repair_by_combination_rejects_missing_helper() {
        let g = systematic_generator(3, 2);
        let data: Vec<Vec<u8>> = (0..3).map(|i| vec![i as u8; 8]).collect();
        let all = encode_with(&g, &data);
        let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        assert!(matches!(
            repair_by_combination(&g, 0, &[1, 2, 3], &shards, 8),
            Err(CodeError::ReconstructionFailed { .. })
        ));
    }

    #[test]
    fn decode_data_does_not_mutate_input() {
        let g = systematic_generator(3, 2);
        let data: Vec<Vec<u8>> = (0..3).map(|i| vec![i as u8 + 9; 16]).collect();
        let all = encode_with(&g, &data);
        let mut shards: Vec<Option<Vec<u8>>> = all.into_iter().map(Some).collect();
        shards[1] = None;
        let before = shards.clone();
        let decoded = decode_data_linear(&g, &shards, 16).unwrap();
        assert_eq!(decoded, data);
        assert_eq!(shards, before);
    }
}
