//! Error types shared by all erasure codes in this workspace.

use core::fmt;

use pbrs_gf::matrix::MatrixError;

/// Errors returned by erasure-code construction, encoding, decoding and
/// repair-plan computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// The requested `(k, r)` (or LRC) parameters are unsupported.
    InvalidParams {
        /// Explanation of the constraint that was violated.
        reason: String,
    },
    /// The caller supplied the wrong number of shards.
    ShardCountMismatch {
        /// Shards the operation expected.
        expected: usize,
        /// Shards the caller supplied.
        actual: usize,
    },
    /// Shards within one stripe have differing lengths.
    ShardSizeMismatch {
        /// Length of the first shard seen.
        expected: usize,
        /// Length of the offending shard.
        actual: usize,
    },
    /// A shard length is not a multiple of the code's granularity.
    UnalignedShard {
        /// The offending length.
        len: usize,
        /// The required granularity in bytes.
        granularity: usize,
    },
    /// Not enough shards survive to decode or repair.
    NotEnoughShards {
        /// Minimum shards needed.
        needed: usize,
        /// Shards actually available.
        available: usize,
    },
    /// A shard index is out of range for this code.
    InvalidShardIndex {
        /// The offending index.
        index: usize,
        /// Number of shards in a stripe.
        total: usize,
    },
    /// A repair was requested for a shard that is still available.
    TargetNotMissing {
        /// The shard index that is not actually missing.
        index: usize,
    },
    /// The surviving shards do not span the data (only possible for non-MDS
    /// codes such as LRC, or corrupted inputs).
    ReconstructionFailed {
        /// Explanation of what could not be recovered.
        context: &'static str,
    },
    /// An underlying matrix operation failed.
    Matrix(MatrixError),
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidParams { reason } => write!(f, "invalid code parameters: {reason}"),
            CodeError::ShardCountMismatch { expected, actual } => {
                write!(f, "expected {expected} shards, got {actual}")
            }
            CodeError::ShardSizeMismatch { expected, actual } => {
                write!(f, "shard length {actual} differs from expected {expected}")
            }
            CodeError::UnalignedShard { len, granularity } => {
                write!(f, "shard length {len} is not a multiple of {granularity}")
            }
            CodeError::NotEnoughShards { needed, available } => {
                write!(
                    f,
                    "need at least {needed} shards, only {available} available"
                )
            }
            CodeError::InvalidShardIndex { index, total } => {
                write!(f, "shard index {index} out of range for {total} shards")
            }
            CodeError::TargetNotMissing { index } => {
                write!(f, "shard {index} is not missing; nothing to repair")
            }
            CodeError::ReconstructionFailed { context } => {
                write!(f, "reconstruction failed: {context}")
            }
            CodeError::Matrix(e) => write!(f, "matrix error: {e}"),
        }
    }
}

impl std::error::Error for CodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodeError::Matrix(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MatrixError> for CodeError {
    fn from(e: MatrixError) -> Self {
        CodeError::Matrix(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(CodeError, &str)> = vec![
            (
                CodeError::InvalidParams {
                    reason: "k must be positive".into(),
                },
                "invalid code parameters",
            ),
            (
                CodeError::ShardCountMismatch {
                    expected: 14,
                    actual: 3,
                },
                "expected 14 shards",
            ),
            (
                CodeError::ShardSizeMismatch {
                    expected: 8,
                    actual: 9,
                },
                "differs from expected 8",
            ),
            (
                CodeError::UnalignedShard {
                    len: 7,
                    granularity: 2,
                },
                "not a multiple of 2",
            ),
            (
                CodeError::NotEnoughShards {
                    needed: 10,
                    available: 9,
                },
                "need at least 10",
            ),
            (
                CodeError::InvalidShardIndex {
                    index: 20,
                    total: 14,
                },
                "out of range",
            ),
            (CodeError::TargetNotMissing { index: 1 }, "not missing"),
            (
                CodeError::ReconstructionFailed {
                    context: "rank too low",
                },
                "rank too low",
            ),
        ];
        for (err, fragment) in cases {
            let msg = err.to_string();
            assert!(
                msg.contains(fragment),
                "{msg:?} should contain {fragment:?}"
            );
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn matrix_error_is_wrapped_with_source() {
        let err: CodeError = MatrixError::Singular.into();
        assert!(err.to_string().contains("singular"));
        assert!(err.source().is_some());
    }
}
