//! Code parameter types and validation.

use core::fmt;

use crate::views::{ShardSet, ShardSetMut};
use crate::CodeError;

/// The `(k, r)` parameters of an erasure code: `k` data shards encoded into
/// `r` parity shards, `n = k + r` shards per stripe.
///
/// The Facebook warehouse cluster studied in the paper uses `(10, 4)`, giving
/// a 1.4× storage overhead compared to 3× for replication.
///
/// # Example
///
/// ```
/// use pbrs_erasure::CodeParams;
///
/// let p = CodeParams::new(10, 4)?;
/// assert_eq!(p.total_shards(), 14);
/// assert!((p.storage_overhead() - 1.4).abs() < 1e-9);
/// # Ok::<(), pbrs_erasure::CodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CodeParams {
    k: usize,
    r: usize,
}

impl CodeParams {
    /// The parameters used in production by the warehouse cluster: `(10, 4)`.
    pub const FACEBOOK: CodeParams = CodeParams { k: 10, r: 4 };

    /// Creates and validates code parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] if `k == 0`, `r == 0`, or
    /// `k + r > 256` (the GF(2^8) constructions used here support at most 256
    /// shards per stripe).
    pub fn new(k: usize, r: usize) -> Result<Self, CodeError> {
        if k == 0 {
            return Err(CodeError::InvalidParams {
                reason: "k (data shards) must be at least 1".into(),
            });
        }
        if r == 0 {
            return Err(CodeError::InvalidParams {
                reason: "r (parity shards) must be at least 1".into(),
            });
        }
        if k + r > 256 {
            return Err(CodeError::InvalidParams {
                reason: format!("k + r = {} exceeds the GF(2^8) limit of 256", k + r),
            });
        }
        Ok(CodeParams { k, r })
    }

    /// Number of data shards `k`.
    pub const fn data_shards(&self) -> usize {
        self.k
    }

    /// Number of parity shards `r`.
    pub const fn parity_shards(&self) -> usize {
        self.r
    }

    /// Total shards per stripe `n = k + r`.
    pub const fn total_shards(&self) -> usize {
        self.k + self.r
    }

    /// Storage overhead `n / k` (1.4 for the production (10, 4) code).
    pub fn storage_overhead(&self) -> f64 {
        self.total_shards() as f64 / self.k as f64
    }

    /// Code rate `k / n`.
    pub fn rate(&self) -> f64 {
        self.k as f64 / self.total_shards() as f64
    }

    /// `true` if `index` refers to a data shard (indices `0..k`).
    pub const fn is_data_shard(&self, index: usize) -> bool {
        index < self.k
    }

    /// `true` if `index` refers to a parity shard (indices `k..k+r`).
    pub const fn is_parity_shard(&self, index: usize) -> bool {
        index >= self.k && index < self.k + self.r
    }

    /// Iterator over the data shard indices `0..k`.
    pub fn data_indices(&self) -> impl Iterator<Item = usize> {
        0..self.k
    }

    /// Iterator over the parity shard indices `k..k+r`.
    pub fn parity_indices(&self) -> impl Iterator<Item = usize> {
        self.k..self.k + self.r
    }
}

impl fmt::Display for CodeParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.k, self.r)
    }
}

/// Validates a set of data shards against the expected count, length
/// alignment and mutual consistency. Returns the common shard length.
///
/// # Errors
///
/// Returns the appropriate [`CodeError`] variant for count, size or alignment
/// violations. Empty shards are rejected.
pub fn validate_data_shards(
    data: &[Vec<u8>],
    k: usize,
    granularity: usize,
) -> Result<usize, CodeError> {
    if data.len() != k {
        return Err(CodeError::ShardCountMismatch {
            expected: k,
            actual: data.len(),
        });
    }
    let len = validate_shard_len(data[0].len(), granularity)?;
    for shard in data {
        if shard.len() != len {
            return Err(CodeError::ShardSizeMismatch {
                expected: len,
                actual: shard.len(),
            });
        }
    }
    Ok(len)
}

/// Validates an optional-shard stripe (as used by `reconstruct`): checks the
/// count and that all present shards share one aligned length, returning that
/// length. At least one shard must be present.
///
/// # Errors
///
/// Returns the appropriate [`CodeError`] variant for count, size or alignment
/// violations, and [`CodeError::NotEnoughShards`] if no shard is present.
pub fn validate_present_shards(
    shards: &[Option<Vec<u8>>],
    n: usize,
    granularity: usize,
) -> Result<usize, CodeError> {
    if shards.len() != n {
        return Err(CodeError::ShardCountMismatch {
            expected: n,
            actual: shards.len(),
        });
    }
    let mut len: Option<usize> = None;
    for shard in shards.iter().flatten() {
        match len {
            None => {
                len = Some(validate_shard_len(shard.len(), granularity)?);
            }
            Some(l) => {
                if shard.len() != l {
                    return Err(CodeError::ShardSizeMismatch {
                        expected: l,
                        actual: shard.len(),
                    });
                }
            }
        }
    }
    len.ok_or(CodeError::NotEnoughShards {
        needed: 1,
        available: 0,
    })
}

/// Checks a shard length against a code's granularity: non-zero and a
/// multiple of `granularity`.
///
/// # Errors
///
/// Returns [`CodeError::InvalidParams`] for empty shards and
/// [`CodeError::UnalignedShard`] for misaligned lengths.
pub fn validate_shard_len(len: usize, granularity: usize) -> Result<usize, CodeError> {
    if len == 0 {
        return Err(CodeError::InvalidParams {
            reason: "shards must not be empty".into(),
        });
    }
    if !len.is_multiple_of(granularity) {
        return Err(CodeError::UnalignedShard { len, granularity });
    }
    Ok(len)
}

/// Validates the view pair handed to `encode_into`: `k` data shards, `r`
/// parity slots, equal shard lengths aligned to `granularity`. Returns the
/// common shard length.
///
/// This is the one shape check shared by every code's zero-copy encode path
/// (count == k, equal lengths, multiple of the granularity) so the four
/// implementations cannot drift apart.
///
/// # Errors
///
/// Returns the appropriate [`CodeError`] variant for count, size or
/// alignment violations.
pub fn validate_encode_views(
    data: &ShardSet<'_>,
    parity: &ShardSetMut<'_>,
    params: CodeParams,
    granularity: usize,
) -> Result<usize, CodeError> {
    if data.shard_count() != params.data_shards() {
        return Err(CodeError::ShardCountMismatch {
            expected: params.data_shards(),
            actual: data.shard_count(),
        });
    }
    if parity.shard_count() != params.parity_shards() {
        return Err(CodeError::ShardCountMismatch {
            expected: params.parity_shards(),
            actual: parity.shard_count(),
        });
    }
    if parity.shard_len() != data.shard_len() {
        return Err(CodeError::ShardSizeMismatch {
            expected: data.shard_len(),
            actual: parity.shard_len(),
        });
    }
    validate_shard_len(data.shard_len(), granularity)
}

/// Validates the view and availability mask handed to
/// `reconstruct_in_place`: `n` shard slots, a mask of the same width, and an
/// aligned shard length. Returns the shard length.
///
/// # Errors
///
/// Returns the appropriate [`CodeError`] variant for count, size or
/// alignment violations.
pub fn validate_stripe_view(
    shards: &ShardSetMut<'_>,
    present: &[bool],
    params: CodeParams,
    granularity: usize,
) -> Result<usize, CodeError> {
    let n = params.total_shards();
    if shards.shard_count() != n {
        return Err(CodeError::ShardCountMismatch {
            expected: n,
            actual: shards.shard_count(),
        });
    }
    if present.len() != n {
        return Err(CodeError::ShardCountMismatch {
            expected: n,
            actual: present.len(),
        });
    }
    validate_shard_len(shards.shard_len(), granularity)
}

/// Validates the inputs of `repair_into`: a full `n`-shard helper view, an
/// in-range target, and an output slice of exactly one shard. Returns the
/// shard length.
///
/// # Errors
///
/// Returns the appropriate [`CodeError`] variant for count, size, index or
/// alignment violations.
pub fn validate_repair_views(
    target: usize,
    helpers: &ShardSet<'_>,
    out: &[u8],
    params: CodeParams,
    granularity: usize,
) -> Result<usize, CodeError> {
    let n = params.total_shards();
    if helpers.shard_count() != n {
        return Err(CodeError::ShardCountMismatch {
            expected: n,
            actual: helpers.shard_count(),
        });
    }
    if target >= n {
        return Err(CodeError::InvalidShardIndex {
            index: target,
            total: n,
        });
    }
    if out.len() != helpers.shard_len() {
        return Err(CodeError::ShardSizeMismatch {
            expected: helpers.shard_len(),
            actual: out.len(),
        });
    }
    validate_shard_len(helpers.shard_len(), granularity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_params() {
        let p = CodeParams::new(10, 4).unwrap();
        assert_eq!(p.data_shards(), 10);
        assert_eq!(p.parity_shards(), 4);
        assert_eq!(p.total_shards(), 14);
        assert!((p.storage_overhead() - 1.4).abs() < 1e-12);
        assert!((p.rate() - 10.0 / 14.0).abs() < 1e-12);
        assert_eq!(p, CodeParams::FACEBOOK);
        assert_eq!(p.to_string(), "(10, 4)");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(matches!(
            CodeParams::new(0, 4),
            Err(CodeError::InvalidParams { .. })
        ));
        assert!(matches!(
            CodeParams::new(4, 0),
            Err(CodeError::InvalidParams { .. })
        ));
        assert!(matches!(
            CodeParams::new(200, 100),
            Err(CodeError::InvalidParams { .. })
        ));
        // Exactly 256 total is allowed.
        assert!(CodeParams::new(200, 56).is_ok());
    }

    #[test]
    fn shard_classification() {
        let p = CodeParams::new(3, 2).unwrap();
        assert!(p.is_data_shard(0));
        assert!(p.is_data_shard(2));
        assert!(!p.is_data_shard(3));
        assert!(p.is_parity_shard(3));
        assert!(p.is_parity_shard(4));
        assert!(!p.is_parity_shard(5));
        assert_eq!(p.data_indices().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(p.parity_indices().collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn data_validation() {
        let ok = vec![vec![1u8; 4], vec![2u8; 4]];
        assert_eq!(validate_data_shards(&ok, 2, 1).unwrap(), 4);
        assert_eq!(validate_data_shards(&ok, 2, 2).unwrap(), 4);

        assert!(matches!(
            validate_data_shards(&ok, 3, 1),
            Err(CodeError::ShardCountMismatch { .. })
        ));
        let unaligned = vec![vec![1u8; 3], vec![2u8; 3]];
        assert!(matches!(
            validate_data_shards(&unaligned, 2, 2),
            Err(CodeError::UnalignedShard { .. })
        ));
        let ragged = vec![vec![1u8; 4], vec![2u8; 5]];
        assert!(matches!(
            validate_data_shards(&ragged, 2, 1),
            Err(CodeError::ShardSizeMismatch { .. })
        ));
        let empty = vec![vec![], vec![]];
        assert!(matches!(
            validate_data_shards(&empty, 2, 1),
            Err(CodeError::InvalidParams { .. })
        ));
    }

    #[test]
    fn view_validation() {
        let p = CodeParams::new(2, 2).unwrap();
        let data_buf = vec![1u8; 8];
        let mut parity_buf = vec![0u8; 8];
        let data = crate::ShardSet::new(&data_buf, 2, 4).unwrap();
        let parity = crate::ShardSetMut::new(&mut parity_buf, 2, 4).unwrap();
        assert_eq!(validate_encode_views(&data, &parity, p, 1).unwrap(), 4);
        assert_eq!(validate_encode_views(&data, &parity, p, 2).unwrap(), 4);
        assert!(matches!(
            validate_encode_views(&data, &parity, p, 3),
            Err(CodeError::UnalignedShard { .. })
        ));
        // Wrong data shard count.
        let narrow = crate::ShardSet::new(&data_buf, 1, 8).unwrap();
        assert!(matches!(
            validate_encode_views(&narrow, &parity, p, 1),
            Err(CodeError::ShardCountMismatch { .. })
        ));
        // Parity length differing from data length.
        let mut short = vec![0u8; 4];
        let short_parity = crate::ShardSetMut::new(&mut short, 2, 2).unwrap();
        assert!(matches!(
            validate_encode_views(&data, &short_parity, p, 1),
            Err(CodeError::ShardSizeMismatch { .. })
        ));

        let mut stripe_buf = vec![0u8; 16];
        let stripe = crate::ShardSetMut::new(&mut stripe_buf, 4, 4).unwrap();
        assert_eq!(validate_stripe_view(&stripe, &[true; 4], p, 2).unwrap(), 4);
        assert!(matches!(
            validate_stripe_view(&stripe, &[true; 3], p, 1),
            Err(CodeError::ShardCountMismatch { .. })
        ));

        let helpers = crate::ShardSet::new(&stripe_buf, 4, 4).unwrap();
        let mut out = vec![0u8; 4];
        assert_eq!(validate_repair_views(1, &helpers, &out, p, 2).unwrap(), 4);
        assert!(matches!(
            validate_repair_views(4, &helpers, &out, p, 1),
            Err(CodeError::InvalidShardIndex { .. })
        ));
        out.push(0);
        assert!(matches!(
            validate_repair_views(1, &helpers, &out, p, 1),
            Err(CodeError::ShardSizeMismatch { .. })
        ));
    }

    #[test]
    fn present_validation() {
        let shards = vec![Some(vec![1u8; 6]), None, Some(vec![2u8; 6])];
        assert_eq!(validate_present_shards(&shards, 3, 2).unwrap(), 6);

        let none: Vec<Option<Vec<u8>>> = vec![None, None, None];
        assert!(matches!(
            validate_present_shards(&none, 3, 1),
            Err(CodeError::NotEnoughShards { .. })
        ));
        let ragged = vec![Some(vec![1u8; 6]), Some(vec![2u8; 4])];
        assert!(matches!(
            validate_present_shards(&ragged, 2, 1),
            Err(CodeError::ShardSizeMismatch { .. })
        ));
        let wrong_count = vec![Some(vec![1u8; 6])];
        assert!(matches!(
            validate_present_shards(&wrong_count, 3, 1),
            Err(CodeError::ShardCountMismatch { .. })
        ));
    }
}
