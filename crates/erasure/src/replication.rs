//! N-way replication expressed as an erasure code.
//!
//! The warehouse cluster stores frequently accessed data as 3 replicas; the
//! paper uses 3× replication as the storage-overhead baseline (3× versus
//! 1.4× for the (10, 4) RS code). Modelling it through the same
//! [`ErasureCode`] trait lets the simulator and the comparison tables treat
//! all schemes uniformly: replication has `k = 1`, `r = replicas − 1`, and a
//! single-shard repair copies exactly one replica.

use pbrs_gf::slice_ops;

use crate::params::{validate_encode_views, validate_repair_views, validate_stripe_view};
use crate::repair::{FetchRequest, Fraction, RepairPlan, ShardRead};
use crate::views::{ShardSet, ShardSetMut};
use crate::{validate_single_failure_mask, CodeError, CodeParams, ErasureCode};

/// N-way replication (`k = 1`, `r = replicas − 1`).
///
/// # Example
///
/// ```
/// use pbrs_erasure::{ErasureCode, Replication};
///
/// # fn main() -> Result<(), pbrs_erasure::CodeError> {
/// let rep = Replication::new(3)?;
/// assert_eq!(rep.storage_overhead(), 3.0);
///
/// // Recovery copies exactly one replica — this is why replication is cheap
/// // on the network and expensive on disk capacity.
/// let plan = rep.repair_plan(0, &[false, true, true])?;
/// assert_eq!(plan.helper_count(), 1);
/// assert_eq!(plan.total_fraction(), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Replication {
    params: CodeParams,
}

impl Replication {
    /// Creates an n-way replication scheme storing `replicas` total copies.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] if `replicas < 2` or
    /// `replicas > 256`.
    pub fn new(replicas: usize) -> Result<Self, CodeError> {
        if replicas < 2 {
            return Err(CodeError::InvalidParams {
                reason: "replication needs at least 2 copies".into(),
            });
        }
        Ok(Replication {
            params: CodeParams::new(1, replicas - 1)?,
        })
    }

    /// The cluster's default scheme: 3 replicas.
    pub fn triple() -> Self {
        // pbrs-lint: allow(panic-hygiene) -- the constant 3 is a valid replica count
        Self::new(3).expect("3 replicas are always valid")
    }

    /// Total number of copies stored.
    pub fn replicas(&self) -> usize {
        self.params.total_shards()
    }
}

impl ErasureCode for Replication {
    fn params(&self) -> CodeParams {
        self.params
    }

    fn name(&self) -> String {
        format!("{}-replication", self.replicas())
    }

    fn encode_into(
        &self,
        data: &ShardSet<'_>,
        parity: &mut ShardSetMut<'_>,
    ) -> Result<(), CodeError> {
        validate_encode_views(data, parity, self.params, self.granularity())?;
        // Replication is the k = 1 identity-coefficient matrix product;
        // the shared kernel routes all-unit matrices to its copy shortcut
        // on every backend, so this costs exactly the memcpys it always
        // did while keeping every code on the one encode path.
        let rows: Vec<&[u8]> = (0..self.params.parity_shards())
            .map(|_| &[1u8][..])
            .collect();
        let (mut outs, _) = parity.split_parts_mut(&vec![true; rows.len()]);
        slice_ops::matrix_mul_into(&rows, &[data.shard(0)], &mut outs);
        Ok(())
    }

    fn reconstruct_in_place(
        &self,
        shards: &mut ShardSetMut<'_>,
        present: &[bool],
    ) -> Result<(), CodeError> {
        validate_stripe_view(shards, present, self.params, self.granularity())?;
        let source = present
            .iter()
            .position(|&p| p)
            .ok_or(CodeError::NotEnoughShards {
                needed: 1,
                available: 0,
            })?;
        for (i, &ok) in present.iter().enumerate() {
            if ok {
                continue;
            }
            let (target, rest) = shards.split_one_mut(i);
            target.copy_from_slice(rest.shard(source));
        }
        Ok(())
    }

    fn repair_into(
        &self,
        target: usize,
        helpers: &ShardSet<'_>,
        out: &mut [u8],
    ) -> Result<(), CodeError> {
        validate_repair_views(target, helpers, out, self.params, self.granularity())?;
        let source = usize::from(target == 0);
        out.copy_from_slice(helpers.shard(source));
        Ok(())
    }

    fn repair_plan(&self, target: usize, available: &[bool]) -> Result<RepairPlan, CodeError> {
        let n = self.params.total_shards();
        if available.len() != n {
            return Err(CodeError::ShardCountMismatch {
                expected: n,
                actual: available.len(),
            });
        }
        if target >= n {
            return Err(CodeError::InvalidShardIndex {
                index: target,
                total: n,
            });
        }
        if available[target] {
            return Err(CodeError::TargetNotMissing { index: target });
        }
        let helper = (0..n)
            .find(|&i| available[i])
            .ok_or(CodeError::NotEnoughShards {
                needed: 1,
                available: 0,
            })?;
        Ok(RepairPlan {
            target,
            fetches: vec![FetchRequest {
                shard: helper,
                fraction: Fraction::ONE,
            }],
        })
    }

    fn repair_reads_ranked(
        &self,
        target: usize,
        available: &[bool],
        shard_len: usize,
        rank: &dyn Fn(usize) -> u64,
    ) -> Result<Vec<ShardRead>, CodeError> {
        if shard_len == 0 || !shard_len.is_multiple_of(self.granularity()) {
            return Err(CodeError::UnalignedShard {
                len: shard_len,
                granularity: self.granularity(),
            });
        }
        self.repair_plan(target, available)?;
        validate_single_failure_mask(target, available)?;
        // Every replica is interchangeable: copy the cheapest-ranked one.
        let n = self.params.total_shards();
        let source = (0..n)
            .filter(|&i| i != target)
            .min_by_key(|&i| (rank(i), i))
            // pbrs-lint: allow(panic-hygiene) -- n >= 2 is enforced at construction, so a source replica exists
            .expect("replication has at least two shards");
        Ok(vec![ShardRead::whole(source, shard_len)])
    }

    fn repair_from_reads(
        &self,
        target: usize,
        reads: &[ShardRead],
        helpers: &ShardSet<'_>,
        out: &mut [u8],
    ) -> Result<(), CodeError> {
        validate_repair_views(target, helpers, out, self.params, self.granularity())?;
        let read = match reads {
            [read]
                if read.offset == 0
                    && read.len == out.len()
                    && read.shard != target
                    && read.shard < self.params.total_shards() =>
            {
                read
            }
            _ => {
                return Err(CodeError::ReconstructionFailed {
                    context: "replication repairs copy exactly one whole replica",
                })
            }
        };
        out.copy_from_slice(helpers.shard(read.shard));
        Ok(())
    }

    fn is_mds(&self) -> bool {
        // A (1, r) repetition code is trivially MDS.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters_and_overhead() {
        let rep = Replication::triple();
        assert_eq!(rep.replicas(), 3);
        assert_eq!(rep.name(), "3-replication");
        assert_eq!(rep.storage_overhead(), 3.0);
        assert_eq!(rep.fault_tolerance(), 2);
        assert!(rep.is_mds());
        assert!(Replication::new(1).is_err());
        assert!(Replication::new(2).is_ok());
    }

    #[test]
    fn encode_copies() {
        let rep = Replication::triple();
        let data = vec![vec![7u8, 8, 9]];
        let copies = rep.encode(&data).unwrap();
        assert_eq!(copies, vec![vec![7u8, 8, 9], vec![7u8, 8, 9]]);
        let mut all = data.clone();
        all.extend(copies);
        assert!(rep.verify(&all).unwrap());
    }

    #[test]
    fn reconstruct_from_any_copy() {
        let rep = Replication::triple();
        let mut shards = vec![None, None, Some(vec![42u8; 10])];
        rep.reconstruct(&mut shards).unwrap();
        for s in &shards {
            assert_eq!(s.as_deref(), Some(&[42u8; 10][..]));
        }
        let mut empty: Vec<Option<Vec<u8>>> = vec![None, None, None];
        assert!(rep.reconstruct(&mut empty).is_err());
    }

    #[test]
    fn repair_downloads_one_copy() {
        let rep = Replication::triple();
        let plan = rep.repair_plan(1, &[true, false, true]).unwrap();
        assert_eq!(plan.helper_count(), 1);
        assert_eq!(plan.helper_indices(), vec![0]);
        assert_eq!(plan.bytes_read(256), 256);

        let shards = vec![Some(vec![5u8; 64]), None, Some(vec![5u8; 64])];
        let outcome = rep.repair(1, &shards).unwrap();
        assert_eq!(outcome.shard, vec![5u8; 64]);
        assert_eq!(outcome.metrics.helpers, 1);
        assert_eq!(outcome.metrics.bytes_transferred, 64);
    }

    #[test]
    fn average_repair_fraction_is_whole_block() {
        // k = 1, so repairing one shard reads exactly one "logical stripe".
        let rep = Replication::triple();
        assert!((rep.average_repair_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn repair_plan_error_paths() {
        let rep = Replication::triple();
        assert!(matches!(
            rep.repair_plan(0, &[false, true]),
            Err(CodeError::ShardCountMismatch { .. })
        ));
        assert!(matches!(
            rep.repair_plan(5, &[false, true, true]),
            Err(CodeError::InvalidShardIndex { .. })
        ));
        assert!(matches!(
            rep.repair_plan(0, &[true, true, true]),
            Err(CodeError::TargetNotMissing { .. })
        ));
        assert!(matches!(
            rep.repair_plan(0, &[false, false, false]),
            Err(CodeError::NotEnoughShards { .. })
        ));
    }
}
