//! Textual code specifications.
//!
//! A [`CodeSpec`] names any erasure code in the workspace as a compact,
//! human-typable string — the format used by benchmark CLIs, simulator
//! configurations and examples, so every entry point selects codes the same
//! way:
//!
//! | spec              | code                                              |
//! |-------------------|---------------------------------------------------|
//! | `rs-10-4`         | `(10, 4)` Reed–Solomon                            |
//! | `piggyback-10-4`  | `(10, 4)` Piggybacked-RS                          |
//! | `lrc-10-2-4`      | LRC: 10 data, 2 local groups, 4 global parities   |
//! | `rep-3`           | 3-way replication                                 |
//!
//! Parsing and [`core::fmt::Display`] round-trip exactly. Building a boxed
//! [`crate::ErasureCode`] from a spec lives in the `pbrs-core` crate
//! (`registry::build`), because the Piggybacked-RS implementation lives
//! above this crate.

use core::fmt;
use core::str::FromStr;

use crate::lrc::LrcParams;
use crate::{CodeError, CodeParams};

/// A parsed code specification: which scheme, with which parameters.
///
/// # Example
///
/// ```
/// use pbrs_erasure::CodeSpec;
///
/// let spec: CodeSpec = "piggyback-10-4".parse().unwrap();
/// assert_eq!(spec, CodeSpec::PiggybackedRs { k: 10, r: 4 });
/// assert_eq!(spec.to_string(), "piggyback-10-4");
/// assert_eq!(spec.total_shards(), 14);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeSpec {
    /// A `(k, r)` Reed–Solomon code: `rs-k-r`.
    ReedSolomon {
        /// Data shards per stripe.
        k: usize,
        /// Parity shards per stripe.
        r: usize,
    },
    /// A `(k, r)` Piggybacked-RS code: `piggyback-k-r`.
    PiggybackedRs {
        /// Data shards per stripe.
        k: usize,
        /// Parity shards per stripe.
        r: usize,
    },
    /// A local reconstruction code: `lrc-k-l-g`.
    Lrc {
        /// Data shards per stripe.
        k: usize,
        /// Local groups (one XOR parity each).
        local_groups: usize,
        /// Global Reed–Solomon parities.
        global_parities: usize,
    },
    /// N-way replication: `rep-n` (total copies).
    Replication {
        /// Total copies stored.
        copies: usize,
    },
}

impl CodeSpec {
    /// The production baseline: `rs-10-4`.
    pub const FACEBOOK_RS: CodeSpec = CodeSpec::ReedSolomon { k: 10, r: 4 };

    /// The paper's proposal: `piggyback-10-4`.
    pub const FACEBOOK_PIGGYBACK: CodeSpec = CodeSpec::PiggybackedRs { k: 10, r: 4 };

    /// Total shards per stripe for this spec.
    pub fn total_shards(&self) -> usize {
        match *self {
            CodeSpec::ReedSolomon { k, r } | CodeSpec::PiggybackedRs { k, r } => k + r,
            CodeSpec::Lrc {
                k,
                local_groups,
                global_parities,
            } => k + local_groups + global_parities,
            CodeSpec::Replication { copies } => copies,
        }
    }

    /// The `(k, r)` parameters this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] if the parameters are out of
    /// range for the GF(2^8) constructions.
    pub fn params(&self) -> Result<CodeParams, CodeError> {
        match *self {
            CodeSpec::ReedSolomon { k, r } | CodeSpec::PiggybackedRs { k, r } => {
                CodeParams::new(k, r)
            }
            CodeSpec::Lrc {
                k,
                local_groups,
                global_parities,
            } => CodeParams::new(k, local_groups + global_parities),
            CodeSpec::Replication { copies } => {
                if copies < 2 {
                    return Err(CodeError::InvalidParams {
                        reason: "replication needs at least 2 copies".into(),
                    });
                }
                CodeParams::new(1, copies - 1)
            }
        }
    }

    /// The LRC parameter triple, when this spec names an LRC.
    pub fn lrc_params(&self) -> Option<LrcParams> {
        match *self {
            CodeSpec::Lrc {
                k,
                local_groups,
                global_parities,
            } => Some(LrcParams {
                k,
                local_groups,
                global_parities,
            }),
            _ => None,
        }
    }
}

impl fmt::Display for CodeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CodeSpec::ReedSolomon { k, r } => write!(f, "rs-{k}-{r}"),
            CodeSpec::PiggybackedRs { k, r } => write!(f, "piggyback-{k}-{r}"),
            CodeSpec::Lrc {
                k,
                local_groups,
                global_parities,
            } => write!(f, "lrc-{k}-{local_groups}-{global_parities}"),
            CodeSpec::Replication { copies } => write!(f, "rep-{copies}"),
        }
    }
}

fn parse_fields<const N: usize>(
    spec: &str,
    rest: &str,
    names: [&str; N],
) -> Result<[usize; N], CodeError> {
    let mut out = [0usize; N];
    let mut fields = rest.split('-');
    for (slot, name) in out.iter_mut().zip(names) {
        let field = fields.next().unwrap_or("");
        if field.is_empty() {
            return Err(CodeError::InvalidParams {
                reason: format!("code spec {spec:?} is missing its \"{name}\" parameter"),
            });
        }
        *slot = field.parse().map_err(|_| CodeError::InvalidParams {
            reason: format!(
                "code spec {spec:?}: \"{name}\" parameter {field:?} is not a non-negative integer"
            ),
        })?;
    }
    if let Some(extra) = fields.next() {
        return Err(CodeError::InvalidParams {
            reason: format!(
                "code spec {spec:?} has an unexpected trailing token {extra:?} \
                 after its {N} expected parameter(s)"
            ),
        });
    }
    Ok(out)
}

impl FromStr for CodeSpec {
    type Err = CodeError;

    fn from_str(s: &str) -> Result<Self, CodeError> {
        let lowered = s.trim().to_ascii_lowercase();
        let (family, rest) = lowered
            .split_once('-')
            .ok_or_else(|| CodeError::InvalidParams {
                reason: format!(
                    "code spec {s:?} is not of the form family-params \
                     (rs-k-r, piggyback-k-r, lrc-k-l-g, rep-n)"
                ),
            })?;
        let spec = match family {
            "rs" => {
                let [k, r] = parse_fields(s, rest, ["k", "r"])?;
                CodeSpec::ReedSolomon { k, r }
            }
            "piggyback" | "pbrs" => {
                let [k, r] = parse_fields(s, rest, ["k", "r"])?;
                CodeSpec::PiggybackedRs { k, r }
            }
            "lrc" => {
                let [k, local_groups, global_parities] =
                    parse_fields(s, rest, ["k", "local-groups", "global-parities"])?;
                CodeSpec::Lrc {
                    k,
                    local_groups,
                    global_parities,
                }
            }
            "rep" | "replication" => {
                let [copies] = parse_fields(s, rest, ["copies"])?;
                CodeSpec::Replication { copies }
            }
            other => {
                return Err(CodeError::InvalidParams {
                    reason: format!(
                        "unknown code family {other:?} in spec {s:?} \
                         (expected rs, piggyback, lrc or rep)"
                    ),
                })
            }
        };
        // Reject obviously unbuildable parameters at parse time so errors
        // surface where the string came from, not deep in a constructor.
        spec.params()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trip() {
        for text in ["rs-10-4", "piggyback-10-4", "lrc-10-2-4", "rep-3", "rs-6-3"] {
            let spec: CodeSpec = text.parse().unwrap();
            assert_eq!(spec.to_string(), text, "{text}");
            let again: CodeSpec = spec.to_string().parse().unwrap();
            assert_eq!(spec, again);
        }
    }

    #[test]
    fn parse_accepts_aliases_and_case() {
        assert_eq!(
            "PBRS-10-4".parse::<CodeSpec>().unwrap(),
            CodeSpec::PiggybackedRs { k: 10, r: 4 }
        );
        assert_eq!(
            "replication-3".parse::<CodeSpec>().unwrap(),
            CodeSpec::Replication { copies: 3 }
        );
        assert_eq!(
            " Rs-4-2 ".parse::<CodeSpec>().unwrap(),
            CodeSpec::ReedSolomon { k: 4, r: 2 }
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "rs",
            "rs-10",
            "rs-10-4-2",
            "rs-x-4",
            "huffman-3-1",
            "rep-1",
            "rs-0-4",
            "rs-300-10",
            "lrc-10-2",
            "rep-",
            "-",
        ] {
            assert!(
                matches!(
                    bad.parse::<CodeSpec>(),
                    Err(CodeError::InvalidParams { .. })
                ),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn parse_errors_name_the_offending_token() {
        let reason_of = |bad: &str| match bad.parse::<CodeSpec>() {
            Err(CodeError::InvalidParams { reason }) => reason,
            other => panic!("{bad:?} should fail with InvalidParams, got {other:?}"),
        };
        // Non-numeric parameter: names both the parameter and the token.
        let reason = reason_of("rs-x-4");
        assert!(
            reason.contains("\"k\"") && reason.contains("\"x\""),
            "{reason}"
        );
        // Missing parameter: names the parameter that was expected.
        let reason = reason_of("rs-10");
        assert!(reason.contains("\"r\""), "{reason}");
        let reason = reason_of("rep-");
        assert!(reason.contains("\"copies\""), "{reason}");
        let reason = reason_of("lrc-10-2");
        assert!(reason.contains("\"global-parities\""), "{reason}");
        // Trailing junk: names the extra token.
        let reason = reason_of("rs-10-4-9");
        assert!(reason.contains("\"9\""), "{reason}");
        // Unknown family: names the family.
        let reason = reason_of("huffman-3-1");
        assert!(reason.contains("\"huffman\""), "{reason}");
    }

    #[test]
    fn derived_parameters() {
        assert_eq!(CodeSpec::FACEBOOK_RS.total_shards(), 14);
        assert_eq!(CodeSpec::FACEBOOK_PIGGYBACK.total_shards(), 14);
        let lrc: CodeSpec = "lrc-10-2-4".parse().unwrap();
        assert_eq!(lrc.total_shards(), 16);
        assert_eq!(
            lrc.lrc_params(),
            Some(LrcParams {
                k: 10,
                local_groups: 2,
                global_parities: 4
            })
        );
        assert_eq!(CodeSpec::FACEBOOK_RS.lrc_params(), None);
        let rep: CodeSpec = "rep-3".parse().unwrap();
        assert_eq!(rep.total_shards(), 3);
        assert_eq!(rep.params().unwrap(), CodeParams::new(1, 2).unwrap());
    }
}
