//! Repair plans and cost accounting.
//!
//! The paper's core argument is about *bytes*: recovering one RS-coded block
//! reads and ships `k` whole blocks across racks, and the Piggybacked-RS code
//! reduces that amount by about 30 %. The types in this module describe, for
//! any code, exactly which helper shards must be contacted and which fraction
//! of each shard must be read, so the cluster simulator can convert a plan
//! into cross-rack traffic without touching data bytes.

use core::fmt;

/// An exact rational fraction of a shard, used to express partial-shard reads
/// (the Piggybacked-RS code reads half-shards).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fraction {
    num: u32,
    den: u32,
}

impl Fraction {
    /// The whole shard.
    pub const ONE: Fraction = Fraction { num: 1, den: 1 };
    /// Half of the shard (one of the two byte-level substripes).
    pub const HALF: Fraction = Fraction { num: 1, den: 2 };

    /// Creates a fraction `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or `num > den` (a fetch can never exceed one
    /// shard).
    pub fn new(num: u32, den: u32) -> Self {
        assert!(den != 0, "fraction denominator must be non-zero");
        assert!(num <= den, "cannot fetch more than a whole shard");
        Fraction { num, den }
    }

    /// Numerator.
    pub const fn numerator(&self) -> u32 {
        self.num
    }

    /// Denominator.
    pub const fn denominator(&self) -> u32 {
        self.den
    }

    /// The fraction as a float.
    pub fn as_f64(&self) -> f64 {
        f64::from(self.num) / f64::from(self.den)
    }

    /// Number of bytes this fraction represents for a shard of `shard_len`
    /// bytes (rounded up, since partial symbols still have to be read).
    pub fn bytes_of(&self, shard_len: usize) -> u64 {
        let len = shard_len as u64;
        (len * u64::from(self.num)).div_ceil(u64::from(self.den))
    }
}

impl fmt::Display for Fraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.num == self.den {
            write!(f, "1")
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// One helper read in a repair plan: read `fraction` of shard `shard` and
/// transfer it to the node performing the rebuild.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FetchRequest {
    /// Index of the helper shard within the stripe.
    pub shard: usize,
    /// Fraction of the helper shard that must be read and transferred.
    pub fraction: Fraction,
}

/// A complete plan for rebuilding one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairPlan {
    /// The shard being rebuilt.
    pub target: usize,
    /// The helper reads required.
    pub fetches: Vec<FetchRequest>,
}

impl RepairPlan {
    /// Number of distinct helper shards contacted.
    pub fn helper_count(&self) -> usize {
        self.fetches.len()
    }

    /// Sum of the fetched fractions, in units of "whole shards".
    ///
    /// A `(k, r)` RS single-shard repair yields exactly `k`; a (10, 4)
    /// Piggybacked-RS data-shard repair yields 6.5 or 7.0.
    pub fn total_fraction(&self) -> f64 {
        self.fetches.iter().map(|f| f.fraction.as_f64()).sum()
    }

    /// Total bytes read from disk (equal to bytes transferred in this model)
    /// for shards of `shard_len` bytes.
    pub fn bytes_read(&self, shard_len: usize) -> u64 {
        self.fetches
            .iter()
            .map(|f| f.fraction.bytes_of(shard_len))
            .sum()
    }

    /// Converts the plan into [`RepairMetrics`] for a given shard length.
    pub fn metrics(&self, shard_len: usize) -> RepairMetrics {
        let bytes = self.bytes_read(shard_len);
        RepairMetrics {
            helpers: self.helper_count(),
            bytes_read: bytes,
            bytes_transferred: bytes,
        }
    }

    /// Indices of the helper shards, in plan order.
    pub fn helper_indices(&self) -> Vec<usize> {
        self.fetches.iter().map(|f| f.shard).collect()
    }
}

/// One contiguous byte range of a helper shard that a repair actually reads.
///
/// A [`RepairPlan`] prices a repair in *fractions* of shards; a `ShardRead`
/// pins the fraction down to concrete bytes, so callers that execute repairs
/// against real storage (the `pbrs-store` crate) can read exactly the ranges
/// the rebuild consumes instead of whole shards. Produced by
/// [`crate::ErasureCode::repair_reads`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardRead {
    /// Index of the helper shard within the stripe.
    pub shard: usize,
    /// Byte offset of the range within the shard.
    pub offset: usize,
    /// Length of the range in bytes.
    pub len: usize,
}

impl ShardRead {
    /// A read of the whole shard.
    pub fn whole(shard: usize, shard_len: usize) -> Self {
        ShardRead {
            shard,
            offset: 0,
            len: shard_len,
        }
    }

    /// One past the last byte of the range.
    pub fn end(&self) -> usize {
        self.offset + self.len
    }

    /// The byte range within the helper shard, ready for slice indexing.
    pub fn range(&self) -> core::ops::Range<usize> {
        self.offset..self.end()
    }
}

/// Total bytes covered by a set of reads.
pub fn total_read_bytes(reads: &[ShardRead]) -> u64 {
    reads.iter().map(|r| r.len as u64).sum()
}

/// The reads of a plan that touch helper shard `shard`, in plan order.
///
/// Chunk-at-a-time executors (the `pbrs-store` crate's degraded reads, the
/// `chunkd` wire protocol) serve one helper shard per request, so they need
/// the per-shard slice of a plan rather than the flat list.
pub fn reads_for_shard(reads: &[ShardRead], shard: usize) -> impl Iterator<Item = &ShardRead> {
    reads.iter().filter(move |r| r.shard == shard)
}

/// Read/transfer accounting of an executed (or planned) repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairMetrics {
    /// Number of helper shards contacted.
    pub helpers: usize,
    /// Bytes read from helper disks.
    pub bytes_read: u64,
    /// Bytes moved over the network to the rebuilding node.
    pub bytes_transferred: u64,
}

impl RepairMetrics {
    /// Sums two metrics, e.g. to aggregate over many block repairs.
    pub fn combined(self, other: RepairMetrics) -> RepairMetrics {
        RepairMetrics {
            helpers: self.helpers + other.helpers,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_transferred: self.bytes_transferred + other.bytes_transferred,
        }
    }
}

/// A rebuilt shard together with the cost of rebuilding it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Index of the rebuilt shard.
    pub target: usize,
    /// The rebuilt shard bytes.
    pub shard: Vec<u8>,
    /// Read/transfer accounting of the repair.
    pub metrics: RepairMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_basics() {
        assert_eq!(Fraction::ONE.as_f64(), 1.0);
        assert_eq!(Fraction::HALF.as_f64(), 0.5);
        assert_eq!(Fraction::new(3, 4).as_f64(), 0.75);
        assert_eq!(Fraction::ONE.to_string(), "1");
        assert_eq!(Fraction::HALF.to_string(), "1/2");
        assert_eq!(Fraction::new(2, 2).to_string(), "1");
    }

    #[test]
    fn fraction_bytes_rounding() {
        assert_eq!(Fraction::HALF.bytes_of(10), 5);
        assert_eq!(Fraction::HALF.bytes_of(11), 6, "partial symbols round up");
        assert_eq!(Fraction::ONE.bytes_of(256 * 1024 * 1024), 256 * 1024 * 1024);
        assert_eq!(Fraction::new(1, 3).bytes_of(10), 4);
        assert_eq!(Fraction::new(0, 5).bytes_of(100), 0);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = Fraction::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "whole shard")]
    fn improper_fraction_panics() {
        let _ = Fraction::new(3, 2);
    }

    #[test]
    fn plan_accounting() {
        let plan = RepairPlan {
            target: 0,
            fetches: vec![
                FetchRequest {
                    shard: 1,
                    fraction: Fraction::ONE,
                },
                FetchRequest {
                    shard: 2,
                    fraction: Fraction::HALF,
                },
                FetchRequest {
                    shard: 13,
                    fraction: Fraction::HALF,
                },
            ],
        };
        assert_eq!(plan.helper_count(), 3);
        assert!((plan.total_fraction() - 2.0).abs() < 1e-12);
        assert_eq!(plan.bytes_read(100), 100 + 50 + 50);
        assert_eq!(plan.helper_indices(), vec![1, 2, 13]);
        let m = plan.metrics(100);
        assert_eq!(m.helpers, 3);
        assert_eq!(m.bytes_read, 200);
        assert_eq!(m.bytes_transferred, 200);
    }

    #[test]
    fn metrics_combine() {
        let a = RepairMetrics {
            helpers: 10,
            bytes_read: 100,
            bytes_transferred: 100,
        };
        let b = RepairMetrics {
            helpers: 7,
            bytes_read: 65,
            bytes_transferred: 65,
        };
        let c = a.combined(b);
        assert_eq!(c.helpers, 17);
        assert_eq!(c.bytes_read, 165);
        assert_eq!(c.bytes_transferred, 165);
        assert_eq!(RepairMetrics::default().combined(a), a);
    }
}
