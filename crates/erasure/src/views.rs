//! Borrowed shard views over contiguous backing buffers.
//!
//! The paper's whole argument is about bytes moved per repair, so the hot
//! encode/repair paths must not copy shards around before the GF(2^8)
//! kernels run. These types describe a stripe (or the data half of one) as a
//! *view* over a single contiguous byte buffer:
//!
//! * [`ShardSet`] — a shared view: `shards` equal slices of `shard_len`
//!   bytes, laid out `stride` bytes apart;
//! * [`ShardSetMut`] — the mutable counterpart, with a safe
//!   [`ShardSetMut::split_one_mut`] that yields one shard `&mut [u8]` plus
//!   read access to every other shard (the shape every in-place decode
//!   needs: write the missing shard while reading the helpers);
//! * [`ShardBuffer`] — an owned contiguous stripe buffer that hands out the
//!   two views above, for callers that do not already manage their own
//!   memory.
//!
//! `stride` and `shard_len` are separate so a view can *narrow* to a byte
//! range of every shard without copying — the Piggybacked-RS code decodes
//! its two substripes by narrowing the stripe view to each half.

use crate::CodeError;

/// Checks the `(shards, stride, shard_len, buffer length)` geometry shared
/// by both view types.
fn validate_geometry(buf_len: usize, shards: usize, shard_len: usize) -> Result<(), CodeError> {
    if shards == 0 || shard_len == 0 {
        return Err(CodeError::InvalidParams {
            reason: "a shard view needs at least one shard of at least one byte".into(),
        });
    }
    let needed = shards
        .checked_mul(shard_len)
        .ok_or_else(|| CodeError::InvalidParams {
            reason: "shard view size overflows".into(),
        })?;
    if buf_len != needed {
        return Err(CodeError::ShardSizeMismatch {
            expected: needed,
            actual: buf_len,
        });
    }
    Ok(())
}

/// A shared, borrowed view of `shards` equal-length shards inside one
/// contiguous buffer.
///
/// # Example
///
/// ```
/// use pbrs_erasure::ShardSet;
///
/// let buf: Vec<u8> = (0..12u8).collect();
/// let set = ShardSet::new(&buf, 3, 4).unwrap();
/// assert_eq!(set.shard(1), &[4, 5, 6, 7]);
/// assert_eq!(set.iter().count(), 3);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ShardSet<'a> {
    buf: &'a [u8],
    shards: usize,
    /// Distance in bytes between consecutive shard starts.
    stride: usize,
    /// Byte offset of the viewed range within each stride.
    offset: usize,
    /// Viewed bytes per shard (`<= stride - offset`).
    shard_len: usize,
}

impl<'a> ShardSet<'a> {
    /// Creates a view of `shards` shards of `shard_len` bytes each, packed
    /// back to back in `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] for zero dimensions and
    /// [`CodeError::ShardSizeMismatch`] if `buf.len() != shards * shard_len`.
    pub fn new(buf: &'a [u8], shards: usize, shard_len: usize) -> Result<Self, CodeError> {
        validate_geometry(buf.len(), shards, shard_len)?;
        Ok(ShardSet {
            buf,
            shards,
            stride: shard_len,
            offset: 0,
            shard_len,
        })
    }

    /// Number of shards in the view.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Viewed bytes per shard.
    pub fn shard_len(&self) -> usize {
        self.shard_len
    }

    /// Shard `index` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `index >= shard_count()`.
    pub fn shard(&self, index: usize) -> &'a [u8] {
        assert!(index < self.shards, "shard index out of range");
        let start = index * self.stride + self.offset;
        &self.buf[start..start + self.shard_len]
    }

    /// Iterates over the shard slices in order.
    pub fn iter(&self) -> impl Iterator<Item = &'a [u8]> + '_ {
        (0..self.shards).map(move |i| self.shard(i))
    }

    /// A view of the byte range `offset..offset + len` of every shard.
    ///
    /// # Panics
    ///
    /// Panics if the range does not fit within a shard.
    pub fn narrow(&self, offset: usize, len: usize) -> ShardSet<'a> {
        assert!(
            len > 0
                && offset
                    .checked_add(len)
                    .is_some_and(|end| end <= self.shard_len),
            "narrowed range must fit within the shard"
        );
        ShardSet {
            buf: self.buf,
            shards: self.shards,
            stride: self.stride,
            offset: self.offset + offset,
            shard_len: len,
        }
    }
}

/// Read access to every shard of a [`ShardSetMut`] except one, produced by
/// [`ShardSetMut::split_one_mut`].
#[derive(Debug)]
pub struct SplitShards<'a> {
    before: &'a [u8],
    after: &'a [u8],
    pivot: usize,
    shards: usize,
    stride: usize,
    offset: usize,
    shard_len: usize,
}

impl SplitShards<'_> {
    /// Shard `index` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `index` is the split-out pivot shard or out of range.
    pub fn shard(&self, index: usize) -> &[u8] {
        assert!(index < self.shards, "shard index out of range");
        assert!(
            index != self.pivot,
            "the pivot shard is mutably borrowed elsewhere"
        );
        if index < self.pivot {
            let start = index * self.stride + self.offset;
            &self.before[start..start + self.shard_len]
        } else {
            // `after` starts right past the pivot's viewed range.
            let start = (index - self.pivot) * self.stride - self.shard_len;
            &self.after[start..start + self.shard_len]
        }
    }
}

/// A mutable, borrowed view of `shards` equal-length shards inside one
/// contiguous buffer.
///
/// # Example
///
/// ```
/// use pbrs_erasure::ShardSetMut;
///
/// let mut buf = vec![0u8; 8];
/// let mut set = ShardSetMut::new(&mut buf, 2, 4).unwrap();
/// set.shard_mut(1).fill(7);
/// let (one, rest) = set.split_one_mut(1);
/// one.copy_from_slice(rest.shard(0));
/// assert_eq!(buf, vec![0u8; 8]);
/// ```
#[derive(Debug)]
pub struct ShardSetMut<'a> {
    buf: &'a mut [u8],
    shards: usize,
    stride: usize,
    offset: usize,
    shard_len: usize,
}

impl<'a> ShardSetMut<'a> {
    /// Creates a mutable view of `shards` shards of `shard_len` bytes each,
    /// packed back to back in `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] for zero dimensions and
    /// [`CodeError::ShardSizeMismatch`] if `buf.len() != shards * shard_len`.
    pub fn new(buf: &'a mut [u8], shards: usize, shard_len: usize) -> Result<Self, CodeError> {
        validate_geometry(buf.len(), shards, shard_len)?;
        Ok(ShardSetMut {
            buf,
            shards,
            stride: shard_len,
            offset: 0,
            shard_len,
        })
    }

    /// Number of shards in the view.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Viewed bytes per shard.
    pub fn shard_len(&self) -> usize {
        self.shard_len
    }

    /// Shard `index` as a shared slice.
    ///
    /// # Panics
    ///
    /// Panics if `index >= shard_count()`.
    pub fn shard(&self, index: usize) -> &[u8] {
        assert!(index < self.shards, "shard index out of range");
        let start = index * self.stride + self.offset;
        &self.buf[start..start + self.shard_len]
    }

    /// Shard `index` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `index >= shard_count()`.
    pub fn shard_mut(&mut self, index: usize) -> &mut [u8] {
        assert!(index < self.shards, "shard index out of range");
        let start = index * self.stride + self.offset;
        &mut self.buf[start..start + self.shard_len]
    }

    /// A shared [`ShardSet`] view of the same shards.
    pub fn as_shard_set(&self) -> ShardSet<'_> {
        ShardSet {
            buf: self.buf,
            shards: self.shards,
            stride: self.stride,
            offset: self.offset,
            shard_len: self.shard_len,
        }
    }

    /// Splits the view into shard `index` mutably and read access to every
    /// other shard — the safe shape of every in-place decode: write one
    /// missing shard while reading helpers.
    ///
    /// # Panics
    ///
    /// Panics if `index >= shard_count()`.
    pub fn split_one_mut(&mut self, index: usize) -> (&mut [u8], SplitShards<'_>) {
        assert!(index < self.shards, "shard index out of range");
        let start = index * self.stride + self.offset;
        let (before, rest) = self.buf.split_at_mut(start);
        let (target, after) = rest.split_at_mut(self.shard_len);
        (
            target,
            SplitShards {
                before,
                after,
                pivot: index,
                shards: self.shards,
                stride: self.stride,
                offset: self.offset,
                shard_len: self.shard_len,
            },
        )
    }

    /// Splits the view into the shards selected by `take` (mutably, in
    /// index order) and every other shard (shared, in index order) — the
    /// shape of a multi-output kernel call: write several shards at once
    /// while reading the rest.
    ///
    /// This generalises [`ShardSetMut::split_one_mut`] to any number of
    /// targets; a caller rebuilding several missing shards (or encoding all
    /// parities) hands the mutable side to
    /// [`pbrs_gf::slice_ops::matrix_mul_into`] and feeds the shared side as
    /// sources. The borrows are carved out of the backing buffer with
    /// `split_at_mut`, so no `unsafe` is involved.
    ///
    /// # Panics
    ///
    /// Panics if `take.len() != shard_count()`.
    pub fn split_parts_mut(&mut self, take: &[bool]) -> (Vec<&mut [u8]>, Vec<&[u8]>) {
        assert_eq!(
            take.len(),
            self.shards,
            "one take flag is required per shard"
        );
        let mut taken = Vec::new();
        let mut rest = Vec::new();
        // Walk the buffer carving each shard's viewed range; `consumed`
        // tracks how much of the original buffer precedes `remaining`.
        let mut remaining: &mut [u8] = self.buf;
        let mut consumed = 0usize;
        for (i, &wanted) in take.iter().enumerate() {
            let start = i * self.stride + self.offset;
            let (_, from_start) = std::mem::take(&mut remaining).split_at_mut(start - consumed);
            let (shard, after) = from_start.split_at_mut(self.shard_len);
            if wanted {
                taken.push(shard);
            } else {
                rest.push(shard as &[u8]);
            }
            remaining = after;
            consumed = start + self.shard_len;
        }
        (taken, rest)
    }

    /// A mutable view of the byte range `offset..offset + len` of every
    /// shard (used to address one substripe of a multi-substripe code).
    ///
    /// # Panics
    ///
    /// Panics if the range does not fit within a shard.
    pub fn narrow_mut(&mut self, offset: usize, len: usize) -> ShardSetMut<'_> {
        assert!(
            len > 0
                && offset
                    .checked_add(len)
                    .is_some_and(|end| end <= self.shard_len),
            "narrowed range must fit within the shard"
        );
        ShardSetMut {
            buf: self.buf,
            shards: self.shards,
            stride: self.stride,
            offset: self.offset + offset,
            shard_len: len,
        }
    }
}

/// An owned, contiguous stripe buffer that hands out [`ShardSet`] /
/// [`ShardSetMut`] views.
///
/// # Example
///
/// ```
/// use pbrs_erasure::ShardBuffer;
///
/// let mut stripe = ShardBuffer::zeroed(14, 64);
/// stripe.shard_mut(0).fill(0xAB);
/// assert_eq!(stripe.as_set().shard(0), &[0xAB; 64]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardBuffer {
    buf: Vec<u8>,
    shards: usize,
    shard_len: usize,
}

impl ShardBuffer {
    /// An all-zero buffer of `shards` shards of `shard_len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeroed(shards: usize, shard_len: usize) -> Self {
        assert!(
            shards > 0 && shard_len > 0,
            "a shard buffer needs at least one shard of at least one byte"
        );
        ShardBuffer {
            buf: vec![0u8; shards * shard_len],
            shards,
            shard_len,
        }
    }

    /// Packs owned shards into one contiguous buffer.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] if `shards` is empty or the first
    /// shard is empty, and [`CodeError::ShardSizeMismatch`] for ragged
    /// shards.
    pub fn from_shards(shards: &[Vec<u8>]) -> Result<Self, CodeError> {
        let (Some(first), len) = (shards.first(), shards.len()) else {
            return Err(CodeError::InvalidParams {
                reason: "cannot pack an empty shard list".into(),
            });
        };
        let shard_len = first.len();
        if shard_len == 0 {
            return Err(CodeError::InvalidParams {
                reason: "shards must not be empty".into(),
            });
        }
        let mut buf = Vec::with_capacity(len * shard_len);
        for shard in shards {
            if shard.len() != shard_len {
                return Err(CodeError::ShardSizeMismatch {
                    expected: shard_len,
                    actual: shard.len(),
                });
            }
            buf.extend_from_slice(shard);
        }
        Ok(ShardBuffer {
            buf,
            shards: len,
            shard_len,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Bytes per shard.
    pub fn shard_len(&self) -> usize {
        self.shard_len
    }

    /// Shard `index` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `index >= shard_count()`.
    pub fn shard(&self, index: usize) -> &[u8] {
        assert!(index < self.shards, "shard index out of range");
        &self.buf[index * self.shard_len..(index + 1) * self.shard_len]
    }

    /// Shard `index` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `index >= shard_count()`.
    pub fn shard_mut(&mut self, index: usize) -> &mut [u8] {
        assert!(index < self.shards, "shard index out of range");
        &mut self.buf[index * self.shard_len..(index + 1) * self.shard_len]
    }

    /// A shared view of the whole buffer.
    pub fn as_set(&self) -> ShardSet<'_> {
        // pbrs-lint: allow(panic-hygiene) -- geometry was validated when the buffer was constructed
        ShardSet::new(&self.buf, self.shards, self.shard_len).expect("geometry is validated")
    }

    /// A mutable view of the whole buffer.
    pub fn as_set_mut(&mut self) -> ShardSetMut<'_> {
        // pbrs-lint: allow(panic-hygiene) -- geometry was validated when the buffer was constructed
        ShardSetMut::new(&mut self.buf, self.shards, self.shard_len).expect("geometry is validated")
    }

    /// A shared view of shards `range.start..range.end`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn subset(&self, range: core::ops::Range<usize>) -> ShardSet<'_> {
        assert!(
            range.start < range.end && range.end <= self.shards,
            "shard range out of bounds"
        );
        ShardSet::new(
            &self.buf[range.start * self.shard_len..range.end * self.shard_len],
            range.end - range.start,
            self.shard_len,
        )
        // pbrs-lint: allow(panic-hygiene) -- geometry was validated when the buffer was constructed
        .expect("geometry is validated")
    }

    /// A mutable view of shards `range.start..range.end`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn subset_mut(&mut self, range: core::ops::Range<usize>) -> ShardSetMut<'_> {
        assert!(
            range.start < range.end && range.end <= self.shards,
            "shard range out of bounds"
        );
        ShardSetMut::new(
            &mut self.buf[range.start * self.shard_len..range.end * self.shard_len],
            range.end - range.start,
            self.shard_len,
        )
        // pbrs-lint: allow(panic-hygiene) -- geometry was validated when the buffer was constructed
        .expect("geometry is validated")
    }

    /// Splits the buffer at shard `at` into a shared view of the first `at`
    /// shards and a mutable view of the rest — the shape of a systematic
    /// encode, which reads the data shards while writing the parity shards
    /// of the same stripe buffer.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < at < shard_count()`.
    pub fn split_mut(&mut self, at: usize) -> (ShardSet<'_>, ShardSetMut<'_>) {
        assert!(
            at > 0 && at < self.shards,
            "split point must leave shards on both sides"
        );
        let (left, right) = self.buf.split_at_mut(at * self.shard_len);
        (
            // pbrs-lint: allow(panic-hygiene) -- split point is asserted in range; both halves keep valid geometry
            ShardSet::new(left, at, self.shard_len).expect("geometry is validated"),
            ShardSetMut::new(right, self.shards - at, self.shard_len)
                // pbrs-lint: allow(panic-hygiene) -- split point is asserted in range; both halves keep valid geometry
                .expect("geometry is validated"),
        )
    }

    /// Copies the shards out into owned vectors (the legacy representation).
    pub fn to_shards(&self) -> Vec<Vec<u8>> {
        (0..self.shards).map(|i| self.shard(i).to_vec()).collect()
    }

    /// Consumes the buffer, returning the raw contiguous bytes.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_set_geometry_and_access() {
        let buf: Vec<u8> = (0..24u8).collect();
        let set = ShardSet::new(&buf, 4, 6).unwrap();
        assert_eq!(set.shard_count(), 4);
        assert_eq!(set.shard_len(), 6);
        assert_eq!(set.shard(0), &buf[0..6]);
        assert_eq!(set.shard(3), &buf[18..24]);
        let collected: Vec<&[u8]> = set.iter().collect();
        assert_eq!(collected.len(), 4);
        assert_eq!(collected[2], &buf[12..18]);
    }

    #[test]
    fn shard_set_rejects_bad_geometry() {
        let buf = vec![0u8; 10];
        assert!(matches!(
            ShardSet::new(&buf, 3, 4),
            Err(CodeError::ShardSizeMismatch { .. })
        ));
        assert!(matches!(
            ShardSet::new(&buf, 0, 4),
            Err(CodeError::InvalidParams { .. })
        ));
        assert!(matches!(
            ShardSet::new(&[], 1, 0),
            Err(CodeError::InvalidParams { .. })
        ));
    }

    #[test]
    fn narrow_views_one_substripe() {
        let buf: Vec<u8> = (0..12u8).collect();
        let set = ShardSet::new(&buf, 3, 4).unwrap();
        let right = set.narrow(2, 2);
        assert_eq!(right.shard(0), &[2, 3]);
        assert_eq!(right.shard(2), &[10, 11]);
        // Narrowing a narrowed view composes.
        let tail = right.narrow(1, 1);
        assert_eq!(tail.shard(1), &[7]);
    }

    #[test]
    #[should_panic(expected = "narrowed range must fit")]
    fn narrow_rejects_out_of_range() {
        let buf = vec![0u8; 8];
        let set = ShardSet::new(&buf, 2, 4).unwrap();
        let _ = set.narrow(3, 2);
    }

    #[test]
    fn split_one_mut_reads_both_sides() {
        let mut buf: Vec<u8> = (0..20u8).collect();
        let mut set = ShardSetMut::new(&mut buf, 5, 4).unwrap();
        let (mid, rest) = set.split_one_mut(2);
        assert_eq!(mid, &[8, 9, 10, 11]);
        assert_eq!(rest.shard(0), &[0, 1, 2, 3]);
        assert_eq!(rest.shard(1), &[4, 5, 6, 7]);
        assert_eq!(rest.shard(3), &[12, 13, 14, 15]);
        assert_eq!(rest.shard(4), &[16, 17, 18, 19]);
        mid.fill(0xEE);
        assert_eq!(&buf[8..12], &[0xEE; 4]);
    }

    #[test]
    #[should_panic(expected = "mutably borrowed")]
    fn split_one_mut_denies_pivot_read() {
        let mut buf = vec![0u8; 8];
        let mut set = ShardSetMut::new(&mut buf, 2, 4).unwrap();
        let (_one, rest) = set.split_one_mut(1);
        let _ = rest.shard(1);
    }

    #[test]
    fn split_one_mut_on_narrowed_view() {
        // Shards of 6 bytes; narrow to the last 3 bytes of each, then split.
        let mut buf: Vec<u8> = (0..18u8).collect();
        let mut set = ShardSetMut::new(&mut buf, 3, 6).unwrap();
        let mut right = set.narrow_mut(3, 3);
        let (mid, rest) = right.split_one_mut(1);
        assert_eq!(mid, &[9, 10, 11]);
        assert_eq!(rest.shard(0), &[3, 4, 5]);
        assert_eq!(rest.shard(2), &[15, 16, 17]);
        mid.copy_from_slice(&[7, 7, 7]);
        assert_eq!(&buf[9..12], &[7, 7, 7]);
        assert_eq!(&buf[6..9], &[6, 7, 8], "the left half is untouched");
    }

    #[test]
    fn split_parts_mut_separates_targets_from_sources() {
        let mut buf: Vec<u8> = (0..20u8).collect();
        let mut set = ShardSetMut::new(&mut buf, 5, 4).unwrap();
        let (mut taken, rest) = set.split_parts_mut(&[false, true, false, true, false]);
        assert_eq!(taken.len(), 2);
        assert_eq!(rest.len(), 3);
        assert_eq!(&*taken[0], &[4, 5, 6, 7]);
        assert_eq!(&*taken[1], &[12, 13, 14, 15]);
        assert_eq!(rest[0], &[0, 1, 2, 3]);
        assert_eq!(rest[2], &[16, 17, 18, 19]);
        taken[0].fill(0xAA);
        taken[1].copy_from_slice(rest[1]);
        drop(taken);
        assert_eq!(&buf[4..8], &[0xAA; 4]);
        assert_eq!(&buf[12..16], &[8, 9, 10, 11]);
    }

    #[test]
    fn split_parts_mut_on_narrowed_view() {
        // 3 shards of 6 bytes, narrowed to the middle 2 bytes of each.
        let mut buf: Vec<u8> = (0..18u8).collect();
        let mut set = ShardSetMut::new(&mut buf, 3, 6).unwrap();
        let mut mid = set.narrow_mut(2, 2);
        let (taken, rest) = mid.split_parts_mut(&[true, false, true]);
        assert_eq!(&*taken[0], &[2, 3]);
        assert_eq!(&*taken[1], &[14, 15]);
        assert_eq!(rest, vec![&[8u8, 9][..]]);
        drop(taken);
        // Bytes outside the narrowed window are untouched and readable.
        assert_eq!(&buf[..2], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "one take flag is required per shard")]
    fn split_parts_mut_rejects_wrong_mask_width() {
        let mut buf = vec![0u8; 8];
        let mut set = ShardSetMut::new(&mut buf, 2, 4).unwrap();
        let _ = set.split_parts_mut(&[true]);
    }

    #[test]
    fn shard_buffer_round_trips() {
        let shards = vec![vec![1u8; 4], vec![2u8; 4], vec![3u8; 4]];
        let mut packed = ShardBuffer::from_shards(&shards).unwrap();
        assert_eq!(packed.shard_count(), 3);
        assert_eq!(packed.shard_len(), 4);
        assert_eq!(packed.to_shards(), shards);
        packed.shard_mut(1).fill(9);
        assert_eq!(packed.shard(1), &[9; 4]);
        assert_eq!(packed.as_set().shard(2), &[3; 4]);
        assert_eq!(packed.subset(1..3).shard(0), &[9; 4]);
        packed.subset_mut(0..1).shard_mut(0).fill(5);
        assert_eq!(packed.shard(0), &[5; 4]);
        assert_eq!(packed.into_inner().len(), 12);
    }

    #[test]
    fn split_mut_separates_data_and_parity() {
        let mut buf =
            ShardBuffer::from_shards(&[vec![1u8; 4], vec![2u8; 4], vec![0u8; 4]]).unwrap();
        let (data, mut parity) = buf.split_mut(2);
        assert_eq!(data.shard_count(), 2);
        assert_eq!(parity.shard_count(), 1);
        let xor: Vec<u8> = data
            .shard(0)
            .iter()
            .zip(data.shard(1))
            .map(|(a, b)| a ^ b)
            .collect();
        parity.shard_mut(0).copy_from_slice(&xor);
        assert_eq!(buf.shard(2), &[3u8; 4]);
    }

    #[test]
    fn shard_buffer_rejects_bad_shapes() {
        assert!(ShardBuffer::from_shards(&[]).is_err());
        assert!(ShardBuffer::from_shards(&[vec![]]).is_err());
        assert!(matches!(
            ShardBuffer::from_shards(&[vec![1, 2], vec![3]]),
            Err(CodeError::ShardSizeMismatch { .. })
        ));
    }
}
