//! An Azure/Xorbas-style Local Reconstruction Code (LRC).
//!
//! The paper's related-work section contrasts Piggybacked-RS with LRCs
//! (Huang et al., USENIX ATC'12; Sathiamoorthy et al., VLDB'13): LRCs also
//! reduce recovery download, but they do so by storing *extra* local parity
//! blocks, so they are not storage optimal (not MDS). This implementation
//! exists so the comparison table (experiment E7) can quantify that
//! trade-off with the same [`ErasureCode`] interface.
//!
//! # Construction
//!
//! `k` data shards are split into `l` contiguous, nearly equal local groups.
//! Each group gets one XOR local parity; `g` global parities are the parity
//! shards of a systematic `(k, g)` Reed–Solomon code over all the data.
//! Shard layout: `[data 0..k | local parities k..k+l | global parities
//! k+l..k+l+g]`.
//!
//! A single failed data shard is rebuilt from its local group only
//! (`k/l` downloads instead of `k`), which is how LRC trades storage for
//! recovery bandwidth.

use pbrs_gf::slice_ops;
use pbrs_gf::Matrix;

use crate::decode;
use crate::params::{
    validate_encode_views, validate_present_shards, validate_repair_views, validate_stripe_view,
};
use crate::repair::{FetchRequest, Fraction, RepairPlan};
use crate::views::{ShardSet, ShardSetMut};
use crate::{repair_with_views, CodeError, CodeParams, ErasureCode, ReedSolomon};

/// Parameters of a local reconstruction code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LrcParams {
    /// Number of data shards.
    pub k: usize,
    /// Number of local groups (each contributes one XOR parity).
    pub local_groups: usize,
    /// Number of global Reed–Solomon parities.
    pub global_parities: usize,
}

impl LrcParams {
    /// The Xorbas-HDFS configuration used as the comparison point against the
    /// warehouse cluster's (10, 4) RS code: 10 data, 2 local, 4 global
    /// (1.6× storage overhead).
    pub const XORBAS: LrcParams = LrcParams {
        k: 10,
        local_groups: 2,
        global_parities: 4,
    };

    /// Total shards per stripe.
    pub const fn total_shards(&self) -> usize {
        self.k + self.local_groups + self.global_parities
    }
}

/// A local reconstruction code.
///
/// # Example
///
/// ```
/// use pbrs_erasure::{ErasureCode, Lrc, LrcParams};
///
/// # fn main() -> Result<(), pbrs_erasure::CodeError> {
/// let lrc = Lrc::new(LrcParams::XORBAS)?;
/// assert!(!lrc.is_mds());
/// assert!((lrc.storage_overhead() - 1.6).abs() < 1e-9);
///
/// // A single data failure is repaired inside its local group of 5:
/// let mut available = vec![true; 16];
/// available[2] = false;
/// let plan = lrc.repair_plan(2, &available)?;
/// assert_eq!(plan.helper_count(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lrc {
    lrc_params: LrcParams,
    params: CodeParams,
    /// Group index for every data shard.
    group_of: Vec<usize>,
    /// Data shard indices per group.
    groups: Vec<Vec<usize>>,
    /// Full `n × k` generator matrix (identity, local XOR rows, global rows).
    generator: Matrix,
}

impl Lrc {
    /// Creates a local reconstruction code.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] if any dimension is zero, if
    /// there are more groups than data shards, or the stripe exceeds 256
    /// shards.
    pub fn new(lrc_params: LrcParams) -> Result<Self, CodeError> {
        let LrcParams {
            k,
            local_groups: l,
            global_parities: g,
        } = lrc_params;
        if k == 0 || l == 0 || g == 0 {
            return Err(CodeError::InvalidParams {
                reason: "k, local_groups and global_parities must all be positive".into(),
            });
        }
        if l > k {
            return Err(CodeError::InvalidParams {
                reason: "cannot have more local groups than data shards".into(),
            });
        }
        let params = CodeParams::new(k, l + g)?;
        let global = ReedSolomon::new(k, g)?;

        // Contiguous, nearly equal groups; the first (k mod l) groups get one
        // extra member.
        let mut groups = Vec::with_capacity(l);
        let base = k / l;
        let extra = k % l;
        let mut next = 0;
        for gi in 0..l {
            let size = base + usize::from(gi < extra);
            groups.push((next..next + size).collect::<Vec<_>>());
            next += size;
        }
        let mut group_of = vec![0usize; k];
        for (gi, members) in groups.iter().enumerate() {
            for &m in members {
                group_of[m] = gi;
            }
        }

        // Build the full generator matrix.
        let n = lrc_params.total_shards();
        let mut generator = Matrix::zero(n, k);
        for i in 0..k {
            generator.set(i, i, 1);
        }
        for (gi, members) in groups.iter().enumerate() {
            for &m in members {
                generator.set(k + gi, m, 1);
            }
        }
        for j in 0..g {
            for (c, &coeff) in global.parity_row(j).iter().enumerate() {
                generator.set(k + l + j, c, coeff);
            }
        }

        Ok(Lrc {
            lrc_params,
            params,
            group_of,
            groups,
            generator,
        })
    }

    /// The LRC-specific parameters.
    pub fn lrc_params(&self) -> LrcParams {
        self.lrc_params
    }

    /// The data shard indices of local group `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group >= local_groups`.
    pub fn group_members(&self, group: usize) -> &[usize] {
        &self.groups[group]
    }

    /// The local group that data shard `shard` belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= k`.
    pub fn group_of(&self, shard: usize) -> usize {
        self.group_of[shard]
    }

    /// Index of the local parity shard of `group`.
    pub fn local_parity_index(&self, group: usize) -> usize {
        self.lrc_params.k + group
    }

    /// Index of global parity `j` within the stripe.
    pub fn global_parity_index(&self, j: usize) -> usize {
        self.lrc_params.k + self.lrc_params.local_groups + j
    }

    /// The full `n × k` generator matrix.
    pub fn generator(&self) -> &Matrix {
        &self.generator
    }

    fn shard_len_of(&self, shards: &[Option<Vec<u8>>]) -> Result<usize, CodeError> {
        validate_present_shards(shards, self.params.total_shards(), self.granularity())
    }

    /// Attempts purely local recoveries (within a single group) in place,
    /// updating `present` as shards come back, until no further progress is
    /// possible.
    fn recover_locally_in_place(&self, shards: &mut ShardSetMut<'_>, present: &mut [bool]) {
        loop {
            let mut progress = false;
            for group in 0..self.lrc_params.local_groups {
                let lp = self.local_parity_index(group);
                let members = || self.groups[group].iter().copied().chain([lp]);
                let mut missing = members().filter(|&i| !present[i]);
                let (Some(target), None) = (missing.next(), missing.next()) else {
                    continue;
                };
                let (out, rest) = shards.split_one_mut(target);
                out.fill(0);
                for i in members() {
                    if i != target {
                        slice_ops::xor_slice(out, rest.shard(i));
                    }
                }
                present[target] = true;
                progress = true;
            }
            if !progress {
                return;
            }
        }
    }
}

impl ErasureCode for Lrc {
    fn params(&self) -> CodeParams {
        self.params
    }

    fn name(&self) -> String {
        format!(
            "LRC({}, {}, {})",
            self.lrc_params.k, self.lrc_params.local_groups, self.lrc_params.global_parities
        )
    }

    fn encode_into(
        &self,
        data: &ShardSet<'_>,
        parity: &mut ShardSetMut<'_>,
    ) -> Result<(), CodeError> {
        validate_encode_views(data, parity, self.params, self.granularity())?;
        let l = self.lrc_params.local_groups;
        let g = self.lrc_params.global_parities;
        // One multi-output pass produces every parity: the local XOR rows
        // and the global RS rows are all rows of the generator's parity
        // block, so each data shard is read once for all l + g outputs.
        let k = self.lrc_params.k;
        let rows: Vec<&[u8]> = (0..l + g).map(|j| self.generator.row(k + j)).collect();
        let srcs: Vec<&[u8]> = data.iter().collect();
        let (mut outs, _) = parity.split_parts_mut(&vec![true; l + g]);
        slice_ops::matrix_mul_into(&rows, &srcs, &mut outs);
        Ok(())
    }

    fn reconstruct_in_place(
        &self,
        shards: &mut ShardSetMut<'_>,
        present: &[bool],
    ) -> Result<(), CodeError> {
        validate_stripe_view(shards, present, self.params, self.granularity())?;
        // Phase 1: cheap local repairs.
        let mut now_present = present.to_vec();
        self.recover_locally_in_place(shards, &mut now_present);
        if now_present.iter().all(|&p| p) {
            return Ok(());
        }
        // Phase 2: global decode over the full generator.
        decode::reconstruct_linear_in_place(&self.generator, shards, &now_present)
    }

    fn repair_into(
        &self,
        target: usize,
        helpers: &ShardSet<'_>,
        out: &mut [u8],
    ) -> Result<(), CodeError> {
        validate_repair_views(target, helpers, out, self.params, self.granularity())?;
        let n = self.params.total_shards();
        let mut available = vec![true; n];
        available[target] = false;
        let plan = self.repair_plan(target, &available)?;
        let coeffs =
            decode::combination_coefficients(&self.generator, target, &plan.helper_indices())?;
        slice_ops::linear_combination_into(
            &coeffs,
            plan.fetches.iter().map(|f| helpers.shard(f.shard)),
            out,
        );
        Ok(())
    }

    fn repair_plan(&self, target: usize, available: &[bool]) -> Result<RepairPlan, CodeError> {
        let n = self.params.total_shards();
        if available.len() != n {
            return Err(CodeError::ShardCountMismatch {
                expected: n,
                actual: available.len(),
            });
        }
        if target >= n {
            return Err(CodeError::InvalidShardIndex {
                index: target,
                total: n,
            });
        }
        if available[target] {
            return Err(CodeError::TargetNotMissing { index: target });
        }
        let k = self.lrc_params.k;
        let l = self.lrc_params.local_groups;

        // Preferred: local repair for data shards and local parities.
        let local_group = if target < k {
            Some(self.group_of[target])
        } else if target < k + l {
            Some(target - k)
        } else {
            None
        };
        if let Some(group) = local_group {
            let mut helpers: Vec<usize> = self.groups[group]
                .iter()
                .copied()
                .chain(std::iter::once(self.local_parity_index(group)))
                .filter(|&i| i != target)
                .collect();
            helpers.sort_unstable();
            if helpers.iter().all(|&i| available[i]) {
                return Ok(RepairPlan {
                    target,
                    fetches: helpers
                        .into_iter()
                        .map(|shard| FetchRequest {
                            shard,
                            fraction: Fraction::ONE,
                        })
                        .collect(),
                });
            }
        }

        // Fallback: global decode from any k independent surviving rows.
        let candidates: Vec<usize> = (0..n).filter(|&i| available[i] && i != target).collect();
        if candidates.len() < k {
            return Err(CodeError::NotEnoughShards {
                needed: k,
                available: candidates.len(),
            });
        }
        let rows = decode::select_independent_rows(&self.generator, &candidates).ok_or(
            CodeError::ReconstructionFailed {
                context: "surviving shards do not span the data",
            },
        )?;
        Ok(RepairPlan {
            target,
            fetches: rows
                .into_iter()
                .map(|shard| FetchRequest {
                    shard,
                    fraction: Fraction::ONE,
                })
                .collect(),
        })
    }

    fn repair(
        &self,
        target: usize,
        shards: &[Option<Vec<u8>>],
    ) -> Result<crate::RepairOutcome, CodeError> {
        let shard_len = self.shard_len_of(shards)?;
        let available: Vec<bool> = shards.iter().map(|s| s.is_some()).collect();
        let plan = self.repair_plan(target, &available)?;
        if available.iter().enumerate().all(|(i, &a)| a || i == target) {
            return repair_with_views(self, target, shards, shard_len, plan);
        }
        // Degraded repairs may use a plan with fewer than k helpers (a local
        // group), which the generic mask-and-reconstruct fallback cannot
        // execute — combine directly over the plan's helpers instead.
        let helpers = plan.helper_indices();
        let shard =
            decode::repair_by_combination(&self.generator, target, &helpers, shards, shard_len)?;
        Ok(crate::RepairOutcome {
            target,
            shard,
            metrics: plan.metrics(shard_len),
        })
    }

    fn is_mds(&self) -> bool {
        false
    }

    fn fault_tolerance(&self) -> usize {
        // Any pattern of up to `global_parities` failures is recoverable:
        // failed local parities are recomputed from data, and the remaining
        // failures are covered by the (k, g) MDS global code. Many larger
        // patterns are also recoverable, but not all.
        self.lrc_params.global_parities
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 37 + j * 11 + 5) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn full_stripe(lrc: &Lrc, data: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let parity = lrc.encode(data).unwrap();
        data.iter().chain(parity.iter()).cloned().collect()
    }

    #[test]
    fn xorbas_parameters() {
        let lrc = Lrc::new(LrcParams::XORBAS).unwrap();
        assert_eq!(lrc.name(), "LRC(10, 2, 4)");
        assert_eq!(lrc.params().total_shards(), 16);
        assert!((lrc.storage_overhead() - 1.6).abs() < 1e-12);
        assert_eq!(lrc.fault_tolerance(), 4);
        assert!(!lrc.is_mds());
        assert_eq!(lrc.group_members(0), &[0, 1, 2, 3, 4]);
        assert_eq!(lrc.group_members(1), &[5, 6, 7, 8, 9]);
        assert_eq!(lrc.local_parity_index(1), 11);
        assert_eq!(lrc.global_parity_index(0), 12);
        assert_eq!(lrc.group_of(7), 1);
    }

    #[test]
    fn invalid_parameters() {
        assert!(Lrc::new(LrcParams {
            k: 0,
            local_groups: 1,
            global_parities: 1
        })
        .is_err());
        assert!(Lrc::new(LrcParams {
            k: 4,
            local_groups: 5,
            global_parities: 1
        })
        .is_err());
        assert!(Lrc::new(LrcParams {
            k: 4,
            local_groups: 2,
            global_parities: 0
        })
        .is_err());
    }

    #[test]
    fn uneven_groups() {
        let lrc = Lrc::new(LrcParams {
            k: 7,
            local_groups: 3,
            global_parities: 2,
        })
        .unwrap();
        assert_eq!(lrc.group_members(0), &[0, 1, 2]);
        assert_eq!(lrc.group_members(1), &[3, 4]);
        assert_eq!(lrc.group_members(2), &[5, 6]);
    }

    #[test]
    fn encode_and_verify() {
        let lrc = Lrc::new(LrcParams::XORBAS).unwrap();
        let data = sample_data(10, 64);
        let all = full_stripe(&lrc, &data);
        assert_eq!(all.len(), 16);
        assert!(lrc.verify(&all).unwrap());
        // Local parity 0 really is the XOR of group 0.
        for i in 0..64 {
            let expect = data[0][i] ^ data[1][i] ^ data[2][i] ^ data[3][i] ^ data[4][i];
            assert_eq!(all[10][i], expect);
        }
    }

    #[test]
    fn single_failure_repairs_locally() {
        let lrc = Lrc::new(LrcParams::XORBAS).unwrap();
        let data = sample_data(10, 48);
        let all = full_stripe(&lrc, &data);
        for target in 0..12 {
            // data shards and local parities repair within the group of 5 + 1
            let mut available = vec![true; 16];
            available[target] = false;
            let plan = lrc.repair_plan(target, &available).unwrap();
            assert_eq!(plan.helper_count(), 5, "target {target}");
            // Execute the repair and check the bytes.
            let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
            shards[target] = None;
            let outcome = lrc.repair(target, &shards).unwrap();
            assert_eq!(outcome.shard, all[target]);
            assert_eq!(outcome.metrics.helpers, 5);
        }
    }

    #[test]
    fn global_parity_repair_reads_k_shards() {
        let lrc = Lrc::new(LrcParams::XORBAS).unwrap();
        let mut available = vec![true; 16];
        available[13] = false;
        let plan = lrc.repair_plan(13, &available).unwrap();
        assert_eq!(plan.helper_count(), 10);
    }

    #[test]
    fn local_repair_falls_back_when_group_is_damaged() {
        let lrc = Lrc::new(LrcParams::XORBAS).unwrap();
        let mut available = vec![true; 16];
        available[0] = false;
        available[1] = false; // same group -> local plan impossible for 0
        let plan = lrc.repair_plan(0, &available).unwrap();
        assert_eq!(
            plan.helper_count(),
            10,
            "global fallback downloads k shards"
        );
    }

    #[test]
    fn reconstruct_up_to_global_parity_failures() {
        let lrc = Lrc::new(LrcParams::XORBAS).unwrap();
        let data = sample_data(10, 32);
        let all = full_stripe(&lrc, &data);
        // Any 4 failures must be recoverable (fault_tolerance = 4). Spot-check
        // a set of patterns including data, local and global shards.
        let patterns: Vec<Vec<usize>> = vec![
            vec![0, 1, 2, 3],
            vec![0, 5, 10, 12],
            vec![10, 11, 12, 13],
            vec![12, 13, 14, 15],
            vec![4, 9, 11, 14],
            vec![0, 1, 5, 6],
        ];
        for pattern in patterns {
            let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
            for &i in &pattern {
                shards[i] = None;
            }
            lrc.reconstruct(&mut shards).unwrap();
            for (idx, s) in shards.iter().enumerate() {
                assert_eq!(s.as_ref().unwrap(), &all[idx], "pattern {pattern:?}");
            }
        }
    }

    #[test]
    fn reconstruct_can_exceed_guarantee_when_failures_are_spread() {
        let lrc = Lrc::new(LrcParams::XORBAS).unwrap();
        let data = sample_data(10, 32);
        let all = full_stripe(&lrc, &data);
        // 5 failures: one data in group 0 (locally repairable), plus 4 spread
        // over the globally-protected shards.
        let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
        for &i in &[0usize, 5, 12, 13, 14] {
            shards[i] = None;
        }
        lrc.reconstruct(&mut shards).unwrap();
        for (idx, s) in shards.iter().enumerate() {
            assert_eq!(s.as_ref().unwrap(), &all[idx]);
        }
    }

    #[test]
    fn some_patterns_beyond_guarantee_fail() {
        let lrc = Lrc::new(LrcParams::XORBAS).unwrap();
        let data = sample_data(10, 32);
        let all = full_stripe(&lrc, &data);
        // 6 failures concentrated on group 0 data + its local parity cannot be
        // decoded: only 9 independent equations remain for 10 unknowns.
        let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
        for &i in &[0usize, 1, 2, 3, 4, 10] {
            shards[i] = None;
        }
        assert!(lrc.reconstruct(&mut shards).is_err());
    }

    #[test]
    fn average_repair_fraction_beats_rs_but_storage_is_worse() {
        let lrc = Lrc::new(LrcParams::XORBAS).unwrap();
        let rs = crate::ReedSolomon::new(10, 4).unwrap();
        assert!(lrc.average_repair_fraction() < rs.average_repair_fraction());
        assert!(lrc.storage_overhead() > rs.storage_overhead());
    }

    #[test]
    fn small_lrc_full_erasure_sweep_within_guarantee() {
        // k=4, l=2, g=2 (n=8): exhaustively test all failure patterns of size
        // <= 2 = fault tolerance.
        let lrc = Lrc::new(LrcParams {
            k: 4,
            local_groups: 2,
            global_parities: 2,
        })
        .unwrap();
        let data = sample_data(4, 16);
        let all = full_stripe(&lrc, &data);
        for a in 0..8 {
            for b in a..8 {
                let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
                shards[a] = None;
                shards[b] = None;
                lrc.reconstruct(&mut shards).unwrap();
                for (idx, s) in shards.iter().enumerate() {
                    assert_eq!(s.as_ref().unwrap(), &all[idx], "failures ({a},{b})");
                }
            }
        }
    }
}
