//! Erasure-code abstractions, zero-copy shard views and baseline codes.
//!
//! This crate defines the [`ErasureCode`] trait used throughout the
//! Piggybacked-RS reproduction, together with the three baseline codes the
//! paper compares against or builds upon:
//!
//! * [`ReedSolomon`] — the systematic, MDS `(k, r)` Reed–Solomon code used by
//!   the Facebook warehouse cluster (`k = 10, r = 4` in production);
//! * [`Replication`] — n-way replication (the cluster's default `3×` scheme);
//! * [`Lrc`] — an Azure-style Local Reconstruction Code, discussed in the
//!   paper's related-work section as the non-MDS alternative.
//!
//! The Piggybacked-RS code itself lives in the `pbrs-core` crate and is
//! implemented on top of the [`ReedSolomon`] encoder defined here.
//!
//! # The zero-copy core
//!
//! The paper's argument is entirely about *bytes moved per repair*, so the
//! hot paths must not copy shards before the GF(2^8) kernels run. Every code
//! therefore implements three allocation-free core methods that operate on
//! borrowed views over contiguous buffers ([`ShardSet`] / [`ShardSetMut`]):
//!
//! * [`ErasureCode::encode_into`] — write `r` parity shards into a caller
//!   provided buffer;
//! * [`ErasureCode::reconstruct_in_place`] — rebuild missing shard slots
//!   inside the stripe buffer itself, guided by an availability mask;
//! * [`ErasureCode::repair_into`] — rebuild one shard into a caller
//!   provided slice, along the code's cheapest single-failure path.
//!
//! None of these allocate shard-sized memory in steady state; the only
//! bookkeeping allocations are `O(n)` index vectors and one `O(k²)` matrix
//! inversion where decoding requires it. The classic owned-`Vec` methods
//! ([`ErasureCode::encode`], [`ErasureCode::reconstruct`],
//! [`ErasureCode::repair`]) are retained as thin wrappers that pack into a
//! contiguous buffer, call the zero-copy core, and unpack — so existing
//! callers and tests keep working unchanged while new callers avoid the
//! copies entirely (see [`ShardBuffer`] for an owned stripe container that
//! plugs straight into the views).
//!
//! # Choosing a code by name
//!
//! [`CodeSpec`] names any code in the workspace as a compact string —
//! `"rs-10-4"`, `"piggyback-10-4"`, `"lrc-10-2-4"`, `"rep-3"` — and the
//! `pbrs-core` crate's `registry::build` turns a spec into a boxed
//! [`ErasureCode`], so the simulator, benches and examples all select codes
//! uniformly.
//!
//! # Recovery cost model
//!
//! The paper's measurements are about *how many bytes cross the racks* when a
//! block is recovered, so every code exposes not only byte-level
//! encode / decode / repair but also a [`RepairPlan`]: the exact set of helper
//! shards and the fraction of each shard that must be read and transferred to
//! rebuild a target shard. The warehouse-cluster simulator in `pbrs-cluster`
//! turns those plans into cross-rack traffic without moving real bytes.
//!
//! # Example
//!
//! ```
//! use pbrs_erasure::{ErasureCode, ReedSolomon, ShardBuffer};
//!
//! # fn main() -> Result<(), pbrs_erasure::CodeError> {
//! let rs = ReedSolomon::new(10, 4)?;
//!
//! // Zero-copy encode: one contiguous stripe buffer, parity written in
//! // place right behind the data it protects.
//! let mut stripe = ShardBuffer::zeroed(14, 64);
//! for i in 0..10 {
//!     stripe.shard_mut(i).fill(i as u8);
//! }
//! let (data, mut parity) = stripe.split_mut(10);
//! rs.encode_into(&data, &mut parity)?;
//!
//! // Lose three shards and rebuild them in place.
//! let mut present = vec![true; 14];
//! for lost in [0, 5, 12] {
//!     present[lost] = false;
//!     stripe.shard_mut(lost).fill(0);
//! }
//! rs.reconstruct_in_place(&mut stripe.as_set_mut(), &present)?;
//! assert_eq!(stripe.shard(0), &[0u8; 64]);
//! assert_eq!(stripe.shard(5), &[5u8; 64]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decode;
pub mod error;
pub mod lrc;
pub mod params;
pub mod reed_solomon;
pub mod repair;
pub mod replication;
pub mod spec;
pub mod stripe;
pub mod views;

pub use error::CodeError;
pub use lrc::{Lrc, LrcParams};
pub use params::CodeParams;
pub use reed_solomon::ReedSolomon;
pub use repair::{
    reads_for_shard, total_read_bytes, FetchRequest, Fraction, RepairMetrics, RepairOutcome,
    RepairPlan, ShardRead,
};
pub use replication::Replication;
pub use spec::CodeSpec;
pub use stripe::{join_shards, split_into_shards, Stripe};
pub use views::{ShardBuffer, ShardSet, ShardSetMut, SplitShards};

/// A `(k, r)` erasure code over byte shards.
///
/// Implementations encode `k` equally sized data shards into `r` parity
/// shards and can rebuild missing shards from any sufficiently large subset
/// of the survivors. All shards of a stripe have the same length, which must
/// be a multiple of [`ErasureCode::granularity`].
///
/// The three `*_into` / `*_in_place` methods are the zero-copy core every
/// code implements natively; the owned-`Vec` methods are provided wrappers
/// over them.
pub trait ErasureCode {
    /// The `(k, r)` parameters of the code.
    fn params(&self) -> CodeParams;

    /// A human-readable name used in reports and benchmark output.
    fn name(&self) -> String;

    /// Shard lengths must be a multiple of this many bytes.
    ///
    /// Plain Reed–Solomon operates byte-by-byte (granularity 1); the
    /// Piggybacked-RS code couples two byte-level stripes and therefore
    /// requires even shard lengths (granularity 2).
    fn granularity(&self) -> usize {
        1
    }

    /// Encodes `k` data shards into `r` parity shards, writing the parity
    /// bytes into a caller-provided view. Performs no shard-sized
    /// allocation.
    ///
    /// `data` must hold exactly `k` shards and `parity` exactly `r` slots of
    /// the same length; any prior contents of `parity` are overwritten.
    ///
    /// # Errors
    ///
    /// Returns an error if either view has the wrong shard count, if the
    /// lengths differ, or if the length is not a multiple of
    /// [`ErasureCode::granularity`].
    fn encode_into(
        &self,
        data: &ShardSet<'_>,
        parity: &mut ShardSetMut<'_>,
    ) -> Result<(), CodeError>;

    /// Rebuilds every missing shard of a stripe in place. Performs no
    /// shard-sized allocation.
    ///
    /// `shards` holds all `k + r` shard slots (data first); `present[i]`
    /// says whether slot `i` currently holds valid bytes. Present slots are
    /// never modified; the contents of missing slots on entry are ignored
    /// and overwritten with the reconstructed bytes.
    ///
    /// # Errors
    ///
    /// Returns an error if the view or mask have the wrong width, if the
    /// shard length is unaligned, or if too many shards are missing for this
    /// code.
    fn reconstruct_in_place(
        &self,
        shards: &mut ShardSetMut<'_>,
        present: &[bool],
    ) -> Result<(), CodeError>;

    /// Rebuilds the single shard `target` into `out`, reading helpers along
    /// the code's cheapest single-failure path (the one priced by
    /// [`ErasureCode::repair_plan`]). Performs no shard-sized allocation.
    ///
    /// `helpers` must hold all `k + r` shard slots; every slot other than
    /// `target` must contain valid bytes (the `target` slot's contents are
    /// ignored). `out` must be exactly one shard long.
    ///
    /// # Errors
    ///
    /// Returns an error for a malformed view, an out-of-range `target`, or
    /// an `out` slice whose length is not one shard.
    fn repair_into(
        &self,
        target: usize,
        helpers: &ShardSet<'_>,
        out: &mut [u8],
    ) -> Result<(), CodeError>;

    /// Encodes `k` data shards into `r` freshly allocated parity shards.
    ///
    /// This is the classic owned-`Vec` API, provided as a wrapper that packs
    /// the shards into a contiguous buffer and calls
    /// [`ErasureCode::encode_into`].
    ///
    /// # Errors
    ///
    /// Returns an error if the number of data shards is not `k`, if the
    /// shards have differing lengths, or if the length is not a multiple of
    /// [`ErasureCode::granularity`].
    fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, CodeError> {
        let params = self.params();
        let shard_len =
            params::validate_data_shards(data, params.data_shards(), self.granularity())?;
        let mut packed = Vec::with_capacity(params.data_shards() * shard_len);
        for shard in data {
            packed.extend_from_slice(shard);
        }
        let data_view = ShardSet::new(&packed, params.data_shards(), shard_len)?;
        let mut parity_buf = vec![0u8; params.parity_shards() * shard_len];
        {
            let mut parity_view =
                ShardSetMut::new(&mut parity_buf, params.parity_shards(), shard_len)?;
            self.encode_into(&data_view, &mut parity_view)?;
        }
        Ok(parity_buf
            .chunks_exact(shard_len)
            .map(|c| c.to_vec())
            .collect())
    }

    /// Rebuilds every missing shard in `shards` in place.
    ///
    /// `shards` must have exactly `k + r` entries ordered data-first. Present
    /// shards are never modified.
    ///
    /// This is the classic owned-`Vec` API, provided as a wrapper that packs
    /// the stripe into a contiguous buffer, calls
    /// [`ErasureCode::reconstruct_in_place`], and copies the rebuilt shards
    /// back out.
    ///
    /// # Errors
    ///
    /// Returns an error if too many shards are missing for this code, or if
    /// present shards have inconsistent lengths.
    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), CodeError> {
        let params = self.params();
        let n = params.total_shards();
        let shard_len = params::validate_present_shards(shards, n, self.granularity())?;
        if shards.iter().all(|s| s.is_some()) {
            return Ok(());
        }
        let mut buf = vec![0u8; n * shard_len];
        let mut present = vec![false; n];
        for (i, shard) in shards.iter().enumerate() {
            if let Some(shard) = shard {
                buf[i * shard_len..(i + 1) * shard_len].copy_from_slice(shard);
                present[i] = true;
            }
        }
        {
            let mut view = ShardSetMut::new(&mut buf, n, shard_len)?;
            self.reconstruct_in_place(&mut view, &present)?;
        }
        for (i, shard) in shards.iter_mut().enumerate() {
            if shard.is_none() {
                *shard = Some(buf[i * shard_len..(i + 1) * shard_len].to_vec());
            }
        }
        Ok(())
    }

    /// Computes the cheapest supported plan for rebuilding shard `target`
    /// given the availability mask `available` (length `k + r`).
    ///
    /// The default plan downloads `k` whole surviving shards, which is the
    /// Reed–Solomon behaviour the paper measures in production.
    ///
    /// # Errors
    ///
    /// Returns an error if `target` is out of range, if `target` is marked
    /// available, or if too few shards survive.
    fn repair_plan(&self, target: usize, available: &[bool]) -> Result<RepairPlan, CodeError> {
        default_repair_plan(self.params(), target, available)
    }

    /// The concrete byte ranges of the helper shards that
    /// [`ErasureCode::repair_into`] reads when rebuilding shard `target`,
    /// for shards of `shard_len` bytes.
    ///
    /// This is the byte-exact companion of [`ErasureCode::repair_plan`]: the
    /// plan prices the repair in shard fractions, while these ranges pin the
    /// fractions to offsets, so a caller executing the repair against real
    /// storage can read (and account) exactly the bytes the rebuild
    /// consumes. The contract every implementation upholds: when the helper
    /// view holds valid bytes *within the returned ranges*,
    /// [`ErasureCode::repair_into`] produces the correct shard — bytes
    /// outside the ranges are never read, so callers may leave them zeroed.
    ///
    /// `available` must mark every shard except `target` as present — the
    /// same single-failure precondition as [`ErasureCode::repair_into`],
    /// whose read set these ranges describe. Degraded masks are rejected;
    /// use [`ErasureCode::repair_plan`] to price those.
    ///
    /// The default derives prefix ranges from the plan's fractions, which is
    /// exact for every code whose plans read whole shards (RS, replication,
    /// LRC). Codes with sub-shard reads (Piggybacked-RS reads half-shards)
    /// override this to name the actual halves.
    ///
    /// # Errors
    ///
    /// Returns an error for an unaligned `shard_len`, a mask with more
    /// shards missing than `target`, plus the same failure modes as
    /// [`ErasureCode::repair_plan`].
    fn repair_reads(
        &self,
        target: usize,
        available: &[bool],
        shard_len: usize,
    ) -> Result<Vec<ShardRead>, CodeError> {
        if shard_len == 0 || !shard_len.is_multiple_of(self.granularity()) {
            return Err(CodeError::UnalignedShard {
                len: shard_len,
                granularity: self.granularity(),
            });
        }
        let plan = self.repair_plan(target, available)?;
        validate_single_failure_mask(target, available)?;
        Ok(plan
            .fetches
            .iter()
            .map(|f| ShardRead {
                shard: f.shard,
                offset: 0,
                // pbrs-lint: allow(panic-hygiene) -- a fraction of shard_len is at most shard_len, which is a usize
                len: usize::try_from(f.fraction.bytes_of(shard_len)).expect("range fits a shard"),
            })
            .collect())
    }

    /// [`ErasureCode::repair_reads`] with a helper-preference hook: when the
    /// code has freedom in choosing its helpers, shards with a *lower*
    /// `rank(shard)` are preferred (ties broken by shard index).
    ///
    /// This is how placement-aware callers (the store's locality-first
    /// repair scheduler) steer repairs toward cheap helpers — rank same-rack
    /// survivors 0 and cross-rack survivors 1 and an MDS code will read as
    /// many same-rack helpers as its mathematics allows. Codes whose plans
    /// are structurally fixed (Piggybacked-RS reads specific half-shards,
    /// LRC reads its local group) ignore the rank and return their canonical
    /// reads — preference never changes *how many* bytes a code reads, only
    /// *where* it reads them when equivalent choices exist.
    ///
    /// Execute the returned reads with [`ErasureCode::repair_from_reads`],
    /// which honours whatever helper choice was made here; plain
    /// [`ErasureCode::repair_into`] assumes the canonical read set.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ErasureCode::repair_reads`].
    fn repair_reads_ranked(
        &self,
        target: usize,
        available: &[bool],
        shard_len: usize,
        rank: &dyn Fn(usize) -> u64,
    ) -> Result<Vec<ShardRead>, CodeError> {
        let _ = rank; // the canonical plan has no helper freedom to exercise
        self.repair_reads(target, available, shard_len)
    }

    /// Rebuilds shard `target` from exactly the helper bytes covered by
    /// `reads` — the execution companion of
    /// [`ErasureCode::repair_reads_ranked`].
    ///
    /// `reads` must be the ranges returned by a
    /// [`ErasureCode::repair_reads`] / [`ErasureCode::repair_reads_ranked`]
    /// call on this code for the same `target` and shard length; bytes of
    /// `helpers` outside those ranges are never touched and may be stale.
    /// The default delegates to [`ErasureCode::repair_into`], which is
    /// correct for every code whose read set is canonical; codes that honour
    /// a ranked helper choice (RS, replication) override it to rebuild from
    /// the shards the reads actually name.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ErasureCode::repair_into`], plus
    /// [`CodeError::ReconstructionFailed`] when `reads` does not describe a
    /// decodable helper set for `target`.
    fn repair_from_reads(
        &self,
        target: usize,
        reads: &[ShardRead],
        helpers: &ShardSet<'_>,
        out: &mut [u8],
    ) -> Result<(), CodeError> {
        let _ = reads; // canonical read set == repair_into's read set
        self.repair_into(target, helpers, out)
    }

    /// Rebuilds a single shard, returning the rebuilt bytes together with the
    /// read/transfer accounting of the plan that was executed.
    ///
    /// For the common case — exactly one shard missing — this wrapper packs
    /// the survivors into a contiguous buffer and executes
    /// [`ErasureCode::repair_into`], so the bytes are produced along the
    /// code's cheapest path. With additional failures it falls back to
    /// reconstructing from exactly the shards the plan reads, so the default
    /// path costs what the plan claims.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ErasureCode::reconstruct`] plus an invalid
    /// `target` index.
    fn repair(
        &self,
        target: usize,
        shards: &[Option<Vec<u8>>],
    ) -> Result<RepairOutcome, CodeError> {
        let params = self.params();
        let n = params.total_shards();
        if target >= n {
            return Err(CodeError::InvalidShardIndex {
                index: target,
                total: n,
            });
        }
        let shard_len = params::validate_present_shards(shards, n, self.granularity())?;
        if shards[target].is_some() {
            return Err(CodeError::TargetNotMissing { index: target });
        }
        let available: Vec<bool> = shards.iter().map(|s| s.is_some()).collect();
        let plan = self.repair_plan(target, &available)?;
        if available.iter().enumerate().all(|(i, &a)| a || i == target) {
            return repair_with_views(self, target, shards, shard_len, plan);
        }
        // Degraded fallback: reconstruct from exactly what the plan reads,
        // so the default path costs exactly what the plan claims.
        let mut working: Vec<Option<Vec<u8>>> = vec![None; shards.len()];
        for fetch in &plan.fetches {
            working[fetch.shard] = shards[fetch.shard].clone();
        }
        self.reconstruct(&mut working)?;
        let shard = working[target]
            .take()
            .ok_or(CodeError::ReconstructionFailed {
                context: "target shard missing after reconstruction",
            })?;
        let metrics = plan.metrics(shard_len);
        Ok(RepairOutcome {
            target,
            shard,
            metrics,
        })
    }

    /// Checks that the parity shards are consistent with the data shards.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of shards or their lengths are invalid.
    fn verify(&self, shards: &[Vec<u8>]) -> Result<bool, CodeError> {
        let params = self.params();
        if shards.len() != params.total_shards() {
            return Err(CodeError::ShardCountMismatch {
                expected: params.total_shards(),
                actual: shards.len(),
            });
        }
        let data: Vec<Vec<u8>> = shards[..params.data_shards()].to_vec();
        let parity = self.encode(&data)?;
        Ok(parity
            .iter()
            .zip(&shards[params.data_shards()..])
            .all(|(a, b)| a == b))
    }

    /// Storage overhead of the code: total shards divided by data shards
    /// (1.4 for the warehouse cluster's (10, 4) RS code, 3.0 for 3-way
    /// replication).
    fn storage_overhead(&self) -> f64 {
        self.params().storage_overhead()
    }

    /// Number of shard failures the code is guaranteed to tolerate.
    fn fault_tolerance(&self) -> usize {
        self.params().parity_shards()
    }

    /// Whether the code is Maximum Distance Separable, i.e. storage optimal
    /// for its fault tolerance. RS and Piggybacked-RS are; LRC is not.
    fn is_mds(&self) -> bool;

    /// Average fraction of the stripe's logical data that must be read and
    /// transferred to repair a single shard, averaged over all `k + r`
    /// shards with equal weight.
    ///
    /// For a `(k, r)` RS code this is exactly 1.0 (the whole logical stripe);
    /// the Piggybacked-RS code pushes it down by roughly 30 % for (10, 4).
    fn average_repair_fraction(&self) -> f64 {
        let params = self.params();
        let n = params.total_shards();
        let mut total = 0.0;
        for target in 0..n {
            let mut available = vec![true; n];
            available[target] = false;
            let plan = self
                .repair_plan(target, &available)
                // pbrs-lint: allow(panic-hygiene) -- every Code guarantees a plan for a single failure
                .expect("single-failure repair plan must exist");
            total += plan.total_fraction();
        }
        // Normalise by k so the figure is "stripe logical size" units.
        total / (n as f64 * params.data_shards() as f64)
    }
}

/// Executes a single-failure repair through the zero-copy path: packs the
/// survivors into one contiguous buffer, calls
/// [`ErasureCode::repair_into`], and prices the result with `plan`.
///
/// Exposed so codes that override [`ErasureCode::repair`] (for degraded
/// plans the generic fallback cannot execute) can still share the
/// single-failure fast path.
///
/// # Errors
///
/// Propagates [`ErasureCode::repair_into`] failures.
pub fn repair_with_views<C: ErasureCode + ?Sized>(
    code: &C,
    target: usize,
    shards: &[Option<Vec<u8>>],
    shard_len: usize,
    plan: RepairPlan,
) -> Result<RepairOutcome, CodeError> {
    let n = code.params().total_shards();
    let mut buf = vec![0u8; n * shard_len];
    for (i, shard) in shards.iter().enumerate() {
        if let Some(shard) = shard {
            buf[i * shard_len..(i + 1) * shard_len].copy_from_slice(shard);
        }
    }
    let view = ShardSet::new(&buf, n, shard_len)?;
    let mut out = vec![0u8; shard_len];
    code.repair_into(target, &view, &mut out)?;
    Ok(RepairOutcome {
        target,
        shard: out,
        metrics: plan.metrics(shard_len),
    })
}

/// Rejects availability masks with any shard other than `target` missing —
/// the precondition of [`ErasureCode::repair_reads`], whose ranges describe
/// the fixed read set of [`ErasureCode::repair_into`] (which itself assumes
/// every non-target shard is valid).
///
/// # Errors
///
/// Returns [`CodeError::NotEnoughShards`] when additional shards are
/// missing.
pub fn validate_single_failure_mask(target: usize, available: &[bool]) -> Result<(), CodeError> {
    let missing_others = available
        .iter()
        .enumerate()
        .filter(|&(i, &a)| !a && i != target)
        .count();
    if missing_others > 0 {
        return Err(CodeError::NotEnoughShards {
            needed: available.len() - 1,
            available: available.len() - 1 - missing_others,
        });
    }
    Ok(())
}

/// The classic Reed–Solomon repair plan: read `k` whole surviving shards.
///
/// Exposed so that other codes (and the simulator) can reference the baseline
/// cost without instantiating a codec.
///
/// # Errors
///
/// Returns an error if `target` is out of range or marked available, if the
/// availability mask has the wrong length, or if fewer than `k` helpers
/// survive.
pub fn default_repair_plan(
    params: CodeParams,
    target: usize,
    available: &[bool],
) -> Result<RepairPlan, CodeError> {
    let n = params.total_shards();
    if available.len() != n {
        return Err(CodeError::ShardCountMismatch {
            expected: n,
            actual: available.len(),
        });
    }
    if target >= n {
        return Err(CodeError::InvalidShardIndex {
            index: target,
            total: n,
        });
    }
    if available[target] {
        return Err(CodeError::TargetNotMissing { index: target });
    }
    let helpers: Vec<usize> = (0..n).filter(|&i| available[i] && i != target).collect();
    if helpers.len() < params.data_shards() {
        return Err(CodeError::NotEnoughShards {
            needed: params.data_shards(),
            available: helpers.len(),
        });
    }
    let fetches = helpers
        .into_iter()
        .take(params.data_shards())
        .map(|shard| FetchRequest {
            shard,
            fraction: Fraction::ONE,
        })
        .collect();
    Ok(RepairPlan { target, fetches })
}
