//! Erasure-code abstractions and baseline codes.
//!
//! This crate defines the [`ErasureCode`] trait used throughout the
//! Piggybacked-RS reproduction, together with the three baseline codes the
//! paper compares against or builds upon:
//!
//! * [`ReedSolomon`] — the systematic, MDS `(k, r)` Reed–Solomon code used by
//!   the Facebook warehouse cluster (`k = 10, r = 4` in production);
//! * [`Replication`] — n-way replication (the cluster's default `3×` scheme);
//! * [`Lrc`] — an Azure-style Local Reconstruction Code, discussed in the
//!   paper's related-work section as the non-MDS alternative.
//!
//! The Piggybacked-RS code itself lives in the `pbrs-core` crate and is
//! implemented on top of the [`ReedSolomon`] encoder defined here.
//!
//! # Recovery cost model
//!
//! The paper's measurements are about *how many bytes cross the racks* when a
//! block is recovered, so every code exposes not only byte-level
//! encode / decode / repair but also a [`RepairPlan`]: the exact set of helper
//! shards and the fraction of each shard that must be read and transferred to
//! rebuild a target shard. The warehouse-cluster simulator in `pbrs-cluster`
//! turns those plans into cross-rack traffic without moving real bytes.
//!
//! # Example
//!
//! ```
//! use pbrs_erasure::{ErasureCode, ReedSolomon};
//!
//! # fn main() -> Result<(), pbrs_erasure::CodeError> {
//! let rs = ReedSolomon::new(10, 4)?;
//! let data: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8; 64]).collect();
//! let parity = rs.encode(&data)?;
//!
//! // Lose three shards and reconstruct them.
//! let mut shards: Vec<Option<Vec<u8>>> =
//!     data.iter().chain(parity.iter()).cloned().map(Some).collect();
//! shards[0] = None;
//! shards[5] = None;
//! shards[12] = None;
//! rs.reconstruct(&mut shards)?;
//! assert_eq!(shards[0].as_deref(), Some(&data[0][..]));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decode;
pub mod error;
pub mod lrc;
pub mod params;
pub mod reed_solomon;
pub mod repair;
pub mod replication;
pub mod stripe;

pub use error::CodeError;
pub use lrc::{Lrc, LrcParams};
pub use params::CodeParams;
pub use reed_solomon::ReedSolomon;
pub use repair::{FetchRequest, Fraction, RepairMetrics, RepairOutcome, RepairPlan};
pub use replication::Replication;
pub use stripe::{join_shards, split_into_shards, Stripe};

/// A `(k, r)` erasure code over byte shards.
///
/// Implementations encode `k` equally sized data shards into `r` parity
/// shards and can rebuild missing shards from any sufficiently large subset
/// of the survivors. All shards of a stripe have the same length, which must
/// be a multiple of [`ErasureCode::granularity`].
pub trait ErasureCode {
    /// The `(k, r)` parameters of the code.
    fn params(&self) -> CodeParams;

    /// A human-readable name used in reports and benchmark output.
    fn name(&self) -> String;

    /// Shard lengths must be a multiple of this many bytes.
    ///
    /// Plain Reed–Solomon operates byte-by-byte (granularity 1); the
    /// Piggybacked-RS code couples two byte-level stripes and therefore
    /// requires even shard lengths (granularity 2).
    fn granularity(&self) -> usize {
        1
    }

    /// Encodes `k` data shards into `r` parity shards.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of data shards is not `k`, if the
    /// shards have differing lengths, or if the length is not a multiple of
    /// [`ErasureCode::granularity`].
    fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, CodeError>;

    /// Rebuilds every missing shard in `shards` in place.
    ///
    /// `shards` must have exactly `k + r` entries ordered data-first. Present
    /// shards are never modified.
    ///
    /// # Errors
    ///
    /// Returns an error if too many shards are missing for this code, or if
    /// present shards have inconsistent lengths.
    fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), CodeError>;

    /// Computes the cheapest supported plan for rebuilding shard `target`
    /// given the availability mask `available` (length `k + r`).
    ///
    /// The default plan downloads `k` whole surviving shards, which is the
    /// Reed–Solomon behaviour the paper measures in production.
    ///
    /// # Errors
    ///
    /// Returns an error if `target` is out of range, if `target` is marked
    /// available, or if too few shards survive.
    fn repair_plan(&self, target: usize, available: &[bool]) -> Result<RepairPlan, CodeError> {
        default_repair_plan(self.params(), target, available)
    }

    /// Rebuilds a single shard, returning the rebuilt bytes together with the
    /// read/transfer accounting of the plan that was executed.
    ///
    /// The default implementation executes [`ErasureCode::repair_plan`] by
    /// falling back to full reconstruction, which matches the default plan's
    /// cost accounting.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ErasureCode::reconstruct`] plus an invalid
    /// `target` index.
    fn repair(&self, target: usize, shards: &[Option<Vec<u8>>]) -> Result<RepairOutcome, CodeError> {
        let params = self.params();
        if target >= params.total_shards() {
            return Err(CodeError::InvalidShardIndex {
                index: target,
                total: params.total_shards(),
            });
        }
        let available: Vec<bool> = shards.iter().map(|s| s.is_some()).collect();
        let plan = self.repair_plan(target, &available)?;
        let shard_len = shards
            .iter()
            .flatten()
            .map(|s| s.len())
            .next()
            .ok_or(CodeError::NotEnoughShards {
                needed: params.data_shards(),
                available: 0,
            })?;
        // Execute the plan by masking out everything the plan does not read,
        // so the default path costs exactly what the plan claims.
        let mut working: Vec<Option<Vec<u8>>> = vec![None; shards.len()];
        for fetch in &plan.fetches {
            working[fetch.shard] = shards[fetch.shard].clone();
        }
        self.reconstruct(&mut working)?;
        let shard = working[target]
            .take()
            .ok_or(CodeError::ReconstructionFailed {
                context: "target shard missing after reconstruction",
            })?;
        let metrics = plan.metrics(shard_len);
        Ok(RepairOutcome {
            target,
            shard,
            metrics,
        })
    }

    /// Checks that the parity shards are consistent with the data shards.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of shards or their lengths are invalid.
    fn verify(&self, shards: &[Vec<u8>]) -> Result<bool, CodeError> {
        let params = self.params();
        if shards.len() != params.total_shards() {
            return Err(CodeError::ShardCountMismatch {
                expected: params.total_shards(),
                actual: shards.len(),
            });
        }
        let data: Vec<Vec<u8>> = shards[..params.data_shards()].to_vec();
        let parity = self.encode(&data)?;
        Ok(parity
            .iter()
            .zip(&shards[params.data_shards()..])
            .all(|(a, b)| a == b))
    }

    /// Storage overhead of the code: total shards divided by data shards
    /// (1.4 for the warehouse cluster's (10, 4) RS code, 3.0 for 3-way
    /// replication).
    fn storage_overhead(&self) -> f64 {
        self.params().storage_overhead()
    }

    /// Number of shard failures the code is guaranteed to tolerate.
    fn fault_tolerance(&self) -> usize {
        self.params().parity_shards()
    }

    /// Whether the code is Maximum Distance Separable, i.e. storage optimal
    /// for its fault tolerance. RS and Piggybacked-RS are; LRC is not.
    fn is_mds(&self) -> bool;

    /// Average fraction of the stripe's logical data that must be read and
    /// transferred to repair a single shard, averaged over all `k + r`
    /// shards with equal weight.
    ///
    /// For a `(k, r)` RS code this is exactly 1.0 (the whole logical stripe);
    /// the Piggybacked-RS code pushes it down by roughly 30 % for (10, 4).
    fn average_repair_fraction(&self) -> f64 {
        let params = self.params();
        let n = params.total_shards();
        let mut total = 0.0;
        for target in 0..n {
            let mut available = vec![true; n];
            available[target] = false;
            let plan = self
                .repair_plan(target, &available)
                .expect("single-failure repair plan must exist");
            total += plan.total_fraction();
        }
        // Normalise by k so the figure is "stripe logical size" units.
        total / (n as f64 * params.data_shards() as f64)
    }
}

/// The classic Reed–Solomon repair plan: read `k` whole surviving shards.
///
/// Exposed so that other codes (and the simulator) can reference the baseline
/// cost without instantiating a codec.
///
/// # Errors
///
/// Returns an error if `target` is out of range or marked available, if the
/// availability mask has the wrong length, or if fewer than `k` helpers
/// survive.
pub fn default_repair_plan(
    params: CodeParams,
    target: usize,
    available: &[bool],
) -> Result<RepairPlan, CodeError> {
    let n = params.total_shards();
    if available.len() != n {
        return Err(CodeError::ShardCountMismatch {
            expected: n,
            actual: available.len(),
        });
    }
    if target >= n {
        return Err(CodeError::InvalidShardIndex {
            index: target,
            total: n,
        });
    }
    if available[target] {
        return Err(CodeError::TargetNotMissing { index: target });
    }
    let helpers: Vec<usize> = (0..n).filter(|&i| available[i] && i != target).collect();
    if helpers.len() < params.data_shards() {
        return Err(CodeError::NotEnoughShards {
            needed: params.data_shards(),
            available: helpers.len(),
        });
    }
    let fetches = helpers
        .into_iter()
        .take(params.data_shards())
        .map(|shard| FetchRequest {
            shard,
            fraction: Fraction::ONE,
        })
        .collect();
    Ok(RepairPlan { target, fetches })
}
