//! The systematic `(k, r)` Reed–Solomon code.
//!
//! This is the code deployed on the Facebook warehouse cluster studied in the
//! paper (with `k = 10, r = 4`): storage optimal (MDS), constructible for any
//! parameters, but expensive to repair — recovering a single shard reads and
//! downloads `k` whole shards, i.e. the entire logical size of the stripe.
//!
//! # Construction
//!
//! The generator matrix is `G = V · (V_top)⁻¹` where `V` is a
//! `(k + r) × k` Vandermonde matrix over distinct evaluation points. Every
//! `k × k` submatrix of `V` is invertible, and multiplying on the right by a
//! fixed invertible matrix preserves that property, so every `k`-subset of
//! rows of `G` is invertible: the code is MDS and the top `k` rows are the
//! identity (systematic).

use pbrs_gf::slice_ops;
use pbrs_gf::Matrix;

use crate::decode;
use crate::params::{
    validate_encode_views, validate_present_shards, validate_repair_views, validate_stripe_view,
};
use crate::repair::ShardRead;
use crate::views::{ShardSet, ShardSetMut};
use crate::{validate_single_failure_mask, CodeError, CodeParams, ErasureCode};

/// A systematic, MDS Reed–Solomon erasure code.
///
/// # Example
///
/// ```
/// use pbrs_erasure::{ErasureCode, ReedSolomon};
///
/// # fn main() -> Result<(), pbrs_erasure::CodeError> {
/// // The warehouse cluster's production parameters.
/// let rs = ReedSolomon::new(10, 4)?;
/// assert!(rs.is_mds());
/// assert!((rs.storage_overhead() - 1.4).abs() < 1e-9);
///
/// // Repairing any single shard requires downloading the full logical
/// // stripe: k shards out of k data shards worth of information.
/// let mut available = vec![true; 14];
/// available[0] = false;
/// let plan = rs.repair_plan(0, &available)?;
/// assert_eq!(plan.helper_count(), 10);
/// assert_eq!(plan.total_fraction(), 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    params: CodeParams,
    /// Full `(k + r) × k` systematic generator matrix.
    generator: Matrix,
}

impl ReedSolomon {
    /// Creates a `(k, r)` Reed–Solomon code.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidParams`] for unsupported `(k, r)` (zero
    /// values or `k + r > 256`).
    pub fn new(k: usize, r: usize) -> Result<Self, CodeError> {
        let params = CodeParams::new(k, r)?;
        Ok(Self::from_params(params))
    }

    /// Creates the code from already validated parameters.
    pub fn from_params(params: CodeParams) -> Self {
        let k = params.data_shards();
        let n = params.total_shards();
        let v = Matrix::vandermonde(n, k);
        // pbrs-lint: allow(panic-hygiene) -- k <= n, so the k-by-k top block is in range
        let top = v.submatrix(0, 0, k, k).expect("top block exists");
        let inv = top
            .inverted()
            // pbrs-lint: allow(panic-hygiene) -- a Vandermonde top block over distinct points is invertible
            .expect("Vandermonde top block is always invertible");
        // pbrs-lint: allow(panic-hygiene) -- n-by-k times k-by-k dimensions agree by construction
        let generator = v.multiply(&inv).expect("dimensions agree");
        ReedSolomon { params, generator }
    }

    /// The code used by the Facebook warehouse cluster: `(10, 4)`.
    pub fn facebook() -> Self {
        Self::from_params(CodeParams::FACEBOOK)
    }

    /// The full `(k + r) × k` systematic generator matrix.
    pub fn generator(&self) -> &Matrix {
        &self.generator
    }

    /// The `r × k` parity block of the generator matrix (rows `k..k+r`).
    pub fn parity_matrix(&self) -> Matrix {
        let k = self.params.data_shards();
        let n = self.params.total_shards();
        self.generator
            .submatrix(k, 0, n, k)
            // pbrs-lint: allow(panic-hygiene) -- k < n, so the parity block rows are in range
            .expect("parity block exists")
    }

    /// The coefficients used to produce parity shard `j` (0-based within the
    /// parity shards) as a linear combination of the `k` data shards.
    ///
    /// # Panics
    ///
    /// Panics if `j >= r`.
    pub fn parity_row(&self, j: usize) -> &[u8] {
        assert!(j < self.params.parity_shards(), "parity index out of range");
        self.generator.row(self.params.data_shards() + j)
    }

    /// Decodes (only) the `k` data shards from any `k` available shards,
    /// without re-encoding missing parity.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ErasureCode::reconstruct`].
    pub fn decode_data(&self, shards: &[Option<Vec<u8>>]) -> Result<Vec<Vec<u8>>, CodeError> {
        let shard_len =
            validate_present_shards(shards, self.params.total_shards(), self.granularity())?;
        decode::decode_data_linear(&self.generator, shards, shard_len)
    }
}

impl ErasureCode for ReedSolomon {
    fn params(&self) -> CodeParams {
        self.params
    }

    fn name(&self) -> String {
        format!(
            "RS({}, {})",
            self.params.data_shards(),
            self.params.parity_shards()
        )
    }

    fn encode_into(
        &self,
        data: &ShardSet<'_>,
        parity: &mut ShardSetMut<'_>,
    ) -> Result<(), CodeError> {
        validate_encode_views(data, parity, self.params, self.granularity())?;
        // All r parities in one cache-blocked pass: each data shard crosses
        // the memory bus once instead of once per parity row.
        let rows: Vec<&[u8]> = (0..self.params.parity_shards())
            .map(|j| self.parity_row(j))
            .collect();
        let srcs: Vec<&[u8]> = data.iter().collect();
        let (mut outs, _) = parity.split_parts_mut(&vec![true; rows.len()]);
        slice_ops::matrix_mul_into(&rows, &srcs, &mut outs);
        Ok(())
    }

    fn reconstruct_in_place(
        &self,
        shards: &mut ShardSetMut<'_>,
        present: &[bool],
    ) -> Result<(), CodeError> {
        validate_stripe_view(shards, present, self.params, self.granularity())?;
        decode::reconstruct_linear_in_place(&self.generator, shards, present)
    }

    fn repair_into(
        &self,
        target: usize,
        helpers: &ShardSet<'_>,
        out: &mut [u8],
    ) -> Result<(), CodeError> {
        validate_repair_views(target, helpers, out, self.params, self.granularity())?;
        let k = self.params.data_shards();
        let n = self.params.total_shards();
        // Any k survivors decode an MDS code; read the first k, matching the
        // cost accounting of the default repair plan.
        let selected: Vec<usize> = (0..n).filter(|&i| i != target).take(k).collect();
        let coeffs = decode::combination_coefficients(&self.generator, target, &selected)?;
        slice_ops::linear_combination_into(
            &coeffs,
            selected.iter().map(|&i| helpers.shard(i)),
            out,
        );
        Ok(())
    }

    fn repair_reads_ranked(
        &self,
        target: usize,
        available: &[bool],
        shard_len: usize,
        rank: &dyn Fn(usize) -> u64,
    ) -> Result<Vec<ShardRead>, CodeError> {
        if shard_len == 0 || !shard_len.is_multiple_of(self.granularity()) {
            return Err(CodeError::UnalignedShard {
                len: shard_len,
                granularity: self.granularity(),
            });
        }
        // Validate target/mask/survivor-count along the canonical path.
        self.repair_plan(target, available)?;
        validate_single_failure_mask(target, available)?;
        // MDS: any k survivors decode the stripe, so honour the caller's
        // preference fully — take the k lowest-ranked helpers.
        let k = self.params.data_shards();
        let n = self.params.total_shards();
        let mut helpers: Vec<usize> = (0..n).filter(|&i| i != target).collect();
        helpers.sort_by_key(|&i| (rank(i), i));
        helpers.truncate(k);
        helpers.sort_unstable();
        Ok(helpers
            .into_iter()
            .map(|shard| ShardRead::whole(shard, shard_len))
            .collect())
    }

    fn repair_from_reads(
        &self,
        target: usize,
        reads: &[ShardRead],
        helpers: &ShardSet<'_>,
        out: &mut [u8],
    ) -> Result<(), CodeError> {
        validate_repair_views(target, helpers, out, self.params, self.granularity())?;
        let n = self.params.total_shards();
        let mut selected: Vec<usize> = Vec::with_capacity(reads.len());
        for read in reads {
            if read.offset != 0 || read.len != out.len() {
                return Err(CodeError::ReconstructionFailed {
                    context: "RS repairs read whole helper shards only",
                });
            }
            if read.shard >= n {
                return Err(CodeError::InvalidShardIndex {
                    index: read.shard,
                    total: n,
                });
            }
            if read.shard == target {
                // Without this, the target row trivially spans itself and the
                // "rebuild" would copy the stale slot being repaired.
                return Err(CodeError::ReconstructionFailed {
                    context: "a repair read may not name the target shard",
                });
            }
            selected.push(read.shard);
        }
        selected.sort_unstable();
        selected.dedup();
        let coeffs = decode::combination_coefficients(&self.generator, target, &selected)?;
        slice_ops::linear_combination_into(
            &coeffs,
            selected.iter().map(|&i| helpers.shard(i)),
            out,
        );
        Ok(())
    }

    fn is_mds(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::Fraction;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 31 + j * 7 + 13) % 251) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn construction_is_systematic() {
        let rs = ReedSolomon::new(6, 3).unwrap();
        let g = rs.generator();
        for r in 0..6 {
            for c in 0..6 {
                assert_eq!(g.get(r, c), u8::from(r == c));
            }
        }
        assert_eq!(rs.parity_matrix().rows(), 3);
        assert_eq!(rs.parity_matrix().cols(), 6);
    }

    #[test]
    fn facebook_parameters() {
        let rs = ReedSolomon::facebook();
        assert_eq!(rs.params(), CodeParams::FACEBOOK);
        assert_eq!(rs.name(), "RS(10, 4)");
        assert!((rs.storage_overhead() - 1.4).abs() < 1e-12);
        assert_eq!(rs.fault_tolerance(), 4);
        assert!(rs.is_mds());
        assert_eq!(rs.granularity(), 1);
    }

    #[test]
    fn encode_then_verify() {
        let rs = ReedSolomon::new(10, 4).unwrap();
        let data = sample_data(10, 128);
        let parity = rs.encode(&data).unwrap();
        assert_eq!(parity.len(), 4);
        let mut all = data.clone();
        all.extend(parity);
        assert!(rs.verify(&all).unwrap());
        // Corrupt one parity byte and verification must fail.
        all[12][5] ^= 0x40;
        assert!(!rs.verify(&all).unwrap());
    }

    #[test]
    fn encoding_is_linear() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let a = sample_data(4, 64);
        let b: Vec<Vec<u8>> = sample_data(4, 64)
            .into_iter()
            .map(|s| s.into_iter().map(|x| x.wrapping_add(91)).collect())
            .collect();
        let pa = rs.encode(&a).unwrap();
        let pb = rs.encode(&b).unwrap();
        let xor: Vec<Vec<u8>> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| x.iter().zip(y).map(|(p, q)| p ^ q).collect())
            .collect();
        let pxor = rs.encode(&xor).unwrap();
        for j in 0..2 {
            for i in 0..64 {
                assert_eq!(pxor[j][i], pa[j][i] ^ pb[j][i]);
            }
        }
    }

    #[test]
    fn reconstruct_all_single_and_double_failures() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let data = sample_data(5, 40);
        let parity = rs.encode(&data).unwrap();
        let all: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();
        let n = 8;
        for i in 0..n {
            for j in 0..n {
                let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
                shards[i] = None;
                shards[j] = None;
                rs.reconstruct(&mut shards).unwrap();
                for (idx, shard) in shards.iter().enumerate() {
                    assert_eq!(shard.as_ref().unwrap(), &all[idx]);
                }
            }
        }
    }

    #[test]
    fn reconstruct_exactly_r_failures() {
        let rs = ReedSolomon::new(10, 4).unwrap();
        let data = sample_data(10, 64);
        let parity = rs.encode(&data).unwrap();
        let all: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();
        // Erase 4 shards spanning data and parity.
        let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
        for i in [0, 3, 9, 11] {
            shards[i] = None;
        }
        rs.reconstruct(&mut shards).unwrap();
        for (idx, shard) in shards.iter().enumerate() {
            assert_eq!(shard.as_ref().unwrap(), &all[idx]);
        }
    }

    #[test]
    fn reconstruct_rejects_more_than_r_failures() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 16);
        let parity = rs.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .chain(parity.iter())
            .cloned()
            .map(Some)
            .collect();
        shards[0] = None;
        shards[1] = None;
        shards[4] = None;
        assert!(matches!(
            rs.reconstruct(&mut shards),
            Err(CodeError::NotEnoughShards { .. })
        ));
    }

    #[test]
    fn decode_data_only() {
        let rs = ReedSolomon::new(6, 3).unwrap();
        let data = sample_data(6, 48);
        let parity = rs.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .chain(parity.iter())
            .cloned()
            .map(Some)
            .collect();
        // Lose three data shards; decode using parity.
        shards[1] = None;
        shards[2] = None;
        shards[5] = None;
        let decoded = rs.decode_data(&shards).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn repair_plan_downloads_k_whole_shards() {
        let rs = ReedSolomon::facebook();
        let mut available = vec![true; 14];
        available[3] = false;
        let plan = rs.repair_plan(3, &available).unwrap();
        assert_eq!(plan.target, 3);
        assert_eq!(plan.helper_count(), 10);
        assert!(plan.fetches.iter().all(|f| f.fraction == Fraction::ONE));
        // 256 MB blocks: repairing one block moves 2.5 GB, as in the paper.
        let block = 256 * 1024 * 1024;
        assert_eq!(plan.bytes_read(block), 10 * block as u64);
    }

    #[test]
    fn repair_executes_plan_and_returns_shard() {
        let rs = ReedSolomon::new(10, 4).unwrap();
        let data = sample_data(10, 96);
        let parity = rs.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .chain(parity.iter())
            .cloned()
            .map(Some)
            .collect();
        shards[7] = None;
        let outcome = rs.repair(7, &shards).unwrap();
        assert_eq!(outcome.target, 7);
        assert_eq!(outcome.shard, data[7]);
        assert_eq!(outcome.metrics.helpers, 10);
        assert_eq!(outcome.metrics.bytes_read, 10 * 96);
        assert_eq!(outcome.metrics.bytes_transferred, 10 * 96);
    }

    #[test]
    fn repair_of_available_shard_is_rejected() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let available = vec![true; 6];
        assert!(matches!(
            rs.repair_plan(0, &available),
            Err(CodeError::TargetNotMissing { index: 0 })
        ));
    }

    #[test]
    fn average_repair_fraction_is_one() {
        // RS reads the whole logical stripe no matter which shard fails.
        let rs = ReedSolomon::new(10, 4).unwrap();
        assert!((rs.average_repair_fraction() - 1.0).abs() < 1e-12);
        let rs2 = ReedSolomon::new(6, 3).unwrap();
        assert!((rs2.average_repair_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mds_property_random_spot_checks_for_larger_codes() {
        // (12, 6): erase 6 random shards repeatedly and reconstruct.
        let rs = ReedSolomon::new(12, 6).unwrap();
        let data = sample_data(12, 32);
        let parity = rs.encode(&data).unwrap();
        let all: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();
        let mut state = 0x12345678u64;
        for _ in 0..50 {
            let mut shards: Vec<Option<Vec<u8>>> = all.iter().cloned().map(Some).collect();
            let mut erased = 0;
            while erased < 6 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let idx = (state >> 33) as usize % 18;
                if shards[idx].is_some() {
                    shards[idx] = None;
                    erased += 1;
                }
            }
            rs.reconstruct(&mut shards).unwrap();
            for (idx, shard) in shards.iter().enumerate() {
                assert_eq!(shard.as_ref().unwrap(), &all[idx]);
            }
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        // Wrong shard count.
        assert!(matches!(
            rs.encode(&sample_data(2, 8)),
            Err(CodeError::ShardCountMismatch { .. })
        ));
        // Ragged shards.
        let mut ragged = sample_data(3, 8);
        ragged[2].push(0);
        assert!(matches!(
            rs.encode(&ragged),
            Err(CodeError::ShardSizeMismatch { .. })
        ));
        // Wrong stripe width on reconstruct.
        let mut too_few: Vec<Option<Vec<u8>>> = vec![Some(vec![0u8; 8]); 4];
        assert!(matches!(
            rs.reconstruct(&mut too_few),
            Err(CodeError::ShardCountMismatch { .. })
        ));
    }
}
