//! Property-based tests for the baseline codes: MDS round-trips, repair
//! correctness, and cost-model invariants under random parameters and
//! erasure patterns.

use pbrs_erasure::{ErasureCode, Lrc, LrcParams, ReedSolomon, Replication, Stripe};
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

fn random_data(rng: &mut StdRng, k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|_| (0..len).map(|_| rng.random()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any <= r erasures of an RS stripe are recoverable and recover the
    /// original bytes exactly.
    #[test]
    fn rs_round_trip_any_erasure_pattern(
        k in 2usize..12,
        r in 1usize..6,
        len in 1usize..64,
        erasures in 0usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rs = ReedSolomon::new(k, r).unwrap();
        let data = random_data(&mut rng, k, len);
        let mut stripe = Stripe::from_encoding(&rs, &data).unwrap();
        let original: Vec<Vec<u8>> = stripe.clone().into_shards().unwrap();

        let mut indices: Vec<usize> = (0..k + r).collect();
        indices.shuffle(&mut rng);
        let erase_count = erasures.min(r);
        for &i in indices.iter().take(erase_count) {
            stripe.erase(i);
        }
        stripe.reconstruct(&rs).unwrap();
        let recovered = stripe.into_shards().unwrap();
        prop_assert_eq!(recovered, original);
    }

    /// Erasing more than r shards must be rejected, never silently mis-decoded.
    #[test]
    fn rs_rejects_excess_erasures(
        k in 2usize..10,
        r in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rs = ReedSolomon::new(k, r).unwrap();
        let data = random_data(&mut rng, k, 16);
        let mut stripe = Stripe::from_encoding(&rs, &data).unwrap();
        let mut indices: Vec<usize> = (0..k + r).collect();
        indices.shuffle(&mut rng);
        for &i in indices.iter().take(r + 1) {
            stripe.erase(i);
        }
        prop_assert!(stripe.reconstruct(&rs).is_err());
    }

    /// Single-shard repair returns exactly the lost shard, for every shard
    /// position, and its metrics match the plan (k whole shards).
    #[test]
    fn rs_single_repair_matches_plan(
        k in 2usize..12,
        r in 1usize..5,
        len in 1usize..48,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rs = ReedSolomon::new(k, r).unwrap();
        let data = random_data(&mut rng, k, len);
        let stripe = Stripe::from_encoding(&rs, &data).unwrap();
        let all = stripe.clone().into_shards().unwrap();
        let target = rng.random_range(0..k + r);
        let mut degraded = stripe;
        degraded.erase(target);
        let outcome = rs.repair(target, degraded.as_slice()).unwrap();
        prop_assert_eq!(&outcome.shard, &all[target]);
        prop_assert_eq!(outcome.metrics.helpers, k);
        prop_assert_eq!(outcome.metrics.bytes_transferred, (k * len) as u64);
    }

    /// The verify() check accepts valid stripes and rejects any single-bit
    /// corruption of any shard.
    #[test]
    fn rs_verify_detects_corruption(
        k in 2usize..8,
        r in 1usize..4,
        len in 1usize..32,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rs = ReedSolomon::new(k, r).unwrap();
        let data = random_data(&mut rng, k, len);
        let mut shards = Stripe::from_encoding(&rs, &data).unwrap().into_shards().unwrap();
        prop_assert!(rs.verify(&shards).unwrap());
        let victim = rng.random_range(0..k + r);
        let byte = rng.random_range(0..len);
        let bit = 1u8 << rng.random_range(0..8);
        shards[victim][byte] ^= bit;
        prop_assert!(!rs.verify(&shards).unwrap());
    }

    /// LRC recovers from any pattern of up to `global_parities` erasures.
    #[test]
    fn lrc_round_trip_within_guarantee(
        k in 4usize..12,
        l in 2usize..4,
        g in 1usize..4,
        len in 1usize..32,
        seed in any::<u64>(),
    ) {
        prop_assume!(l <= k);
        let mut rng = StdRng::seed_from_u64(seed);
        let lrc = Lrc::new(LrcParams { k, local_groups: l, global_parities: g }).unwrap();
        let data = random_data(&mut rng, k, len);
        let mut stripe = Stripe::from_encoding(&lrc, &data).unwrap();
        let original = stripe.clone().into_shards().unwrap();
        let n = lrc.params().total_shards();
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(&mut rng);
        let erase_count = rng.random_range(0..=g);
        for &i in indices.iter().take(erase_count) {
            stripe.erase(i);
        }
        stripe.reconstruct(&lrc).unwrap();
        prop_assert_eq!(stripe.into_shards().unwrap(), original);
    }

    /// A single LRC data-shard failure is repaired strictly more cheaply than
    /// under RS with the same k whenever the group is smaller than k.
    #[test]
    fn lrc_single_repair_cheaper_than_rs(
        k in 4usize..12,
        l in 2usize..4,
        seed in any::<u64>(),
    ) {
        prop_assume!(l <= k && k / l + 1 < k);
        let mut rng = StdRng::seed_from_u64(seed);
        let lrc = Lrc::new(LrcParams { k, local_groups: l, global_parities: 2 }).unwrap();
        let n = lrc.params().total_shards();
        let target = rng.random_range(0..k);
        let mut available = vec![true; n];
        available[target] = false;
        let plan = lrc.repair_plan(target, &available).unwrap();
        prop_assert!(plan.total_fraction() < k as f64);
        // And the repair actually yields the right bytes.
        let data = random_data(&mut rng, k, 24);
        let stripe = Stripe::from_encoding(&lrc, &data).unwrap();
        let all = stripe.clone().into_shards().unwrap();
        let mut degraded = stripe;
        degraded.erase(target);
        let outcome = lrc.repair(target, degraded.as_slice()).unwrap();
        prop_assert_eq!(&outcome.shard, &all[target]);
    }

    /// Replication round-trips and repairs from a single surviving copy.
    #[test]
    fn replication_round_trip(
        replicas in 2usize..6,
        len in 1usize..64,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rep = Replication::new(replicas).unwrap();
        let data = random_data(&mut rng, 1, len);
        let mut stripe = Stripe::from_encoding(&rep, &data).unwrap();
        let original = stripe.clone().into_shards().unwrap();
        // Erase all but one random copy.
        let survivor = rng.random_range(0..replicas);
        for i in 0..replicas {
            if i != survivor {
                stripe.erase(i);
            }
        }
        stripe.reconstruct(&rep).unwrap();
        prop_assert_eq!(stripe.into_shards().unwrap(), original);
    }

    /// The repair-plan byte accounting is consistent with executing the plan
    /// on real shards, for all three baseline codes.
    #[test]
    fn plan_bytes_match_execution(
        len in 2usize..64,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rs = ReedSolomon::new(10, 4).unwrap();
        let lrc = Lrc::new(LrcParams::XORBAS).unwrap();
        let codes: Vec<(&dyn ErasureCode, usize)> = vec![(&rs, 14), (&lrc, 16)];
        for (code, n) in codes {
            let data = random_data(&mut rng, 10, len);
            let stripe = Stripe::from_encoding(code, &data).unwrap();
            let target = rng.random_range(0..n);
            let mut degraded = stripe;
            degraded.erase(target);
            let plan = code.repair_plan(target, &degraded.availability()).unwrap();
            let outcome = code.repair(target, degraded.as_slice()).unwrap();
            prop_assert_eq!(outcome.metrics.bytes_transferred, plan.bytes_read(len));
            prop_assert_eq!(outcome.metrics.helpers, plan.helper_count());
        }
    }
}
