//! Equivalence of the zero-copy API and the legacy owned-`Vec` API.
//!
//! For every baseline code, across a `(k, r)` grid and odd shard lengths,
//! `encode_into` / `reconstruct_in_place` / `repair_into` must agree
//! byte-for-byte with `encode` / `reconstruct` / `repair`. The legacy
//! methods are themselves wrappers over the zero-copy core, so these tests
//! drive the *native* in-place paths against independently constructed
//! inputs (garbage-filled missing slots, narrowed views) where the wrappers
//! cannot reach.

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

use pbrs_erasure::{
    CodeSpec, ErasureCode, Lrc, LrcParams, ReedSolomon, Replication, ShardBuffer, ShardSet,
    ShardSetMut,
};

fn random_data(rng: &mut StdRng, k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|_| (0..len).map(|_| rng.random()).collect())
        .collect()
}

/// Encodes with both APIs and asserts identical parity bytes.
fn assert_encode_parity<C: ErasureCode>(code: &C, data: &[Vec<u8>]) {
    let legacy = code.encode(data).unwrap();

    let packed = ShardBuffer::from_shards(data).unwrap();
    let r = code.params().parity_shards();
    let shard_len = data[0].len();
    // Poison the parity buffer to prove encode_into overwrites every byte.
    let mut parity_buf = vec![0xEEu8; r * shard_len];
    let mut parity = ShardSetMut::new(&mut parity_buf, r, shard_len).unwrap();
    code.encode_into(&packed.as_set(), &mut parity).unwrap();

    for (j, expect) in legacy.iter().enumerate() {
        assert_eq!(
            &parity_buf[j * shard_len..(j + 1) * shard_len],
            &expect[..],
            "parity {j} of {}",
            code.name()
        );
    }
}

/// Reconstructs a random erasure pattern with both APIs and asserts
/// identical stripe bytes.
fn assert_reconstruct_parity<C: ErasureCode>(
    code: &C,
    full: &[Vec<u8>],
    missing: &[usize],
) -> Result<(), TestCaseError> {
    let n = full.len();

    let mut legacy: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
    for &i in missing {
        legacy[i] = None;
    }
    let legacy_result = code.reconstruct(&mut legacy);

    let mut packed = ShardBuffer::from_shards(full).unwrap();
    let mut present = vec![true; n];
    for &i in missing {
        present[i] = false;
        packed.shard_mut(i).fill(0xDD); // stale garbage in missing slots
    }
    let in_place_result = code.reconstruct_in_place(&mut packed.as_set_mut(), &present);

    prop_assert_eq!(
        legacy_result.is_ok(),
        in_place_result.is_ok(),
        "outcome mismatch for {} missing {:?}",
        code.name(),
        missing
    );
    if legacy_result.is_ok() {
        for (i, expect) in legacy.iter().enumerate() {
            prop_assert_eq!(
                packed.shard(i),
                &expect.as_ref().unwrap()[..],
                "shard {} of {}",
                i,
                code.name()
            );
        }
    }
    Ok(())
}

/// Repairs every shard position with both APIs and asserts identical bytes.
fn assert_repair_parity<C: ErasureCode>(code: &C, full: &[Vec<u8>]) {
    let n = full.len();
    let shard_len = full[0].len();
    let packed = ShardBuffer::from_shards(full).unwrap();
    for target in 0..n {
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        shards[target] = None;
        let legacy = code.repair(target, &shards).unwrap();

        let mut out = vec![0xAAu8; shard_len];
        code.repair_into(target, &packed.as_set(), &mut out)
            .unwrap();
        assert_eq!(out, legacy.shard, "target {target} of {}", code.name());
        assert_eq!(out, full[target], "target {target} of {}", code.name());
    }
}

fn full_stripe<C: ErasureCode>(code: &C, data: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let parity = code.encode(data).unwrap();
    data.iter().cloned().chain(parity).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Reed–Solomon: all three zero-copy methods agree with the legacy API
    /// over a (k, r) grid and odd shard lengths.
    #[test]
    fn rs_zero_copy_agrees_with_legacy(
        k in 2usize..12,
        r in 1usize..6,
        len in 1usize..48,
        erasures in 0usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rs = ReedSolomon::new(k, r).unwrap();
        let data = random_data(&mut rng, k, len);
        assert_encode_parity(&rs, &data);
        let full = full_stripe(&rs, &data);
        assert_repair_parity(&rs, &full);

        let mut indices: Vec<usize> = (0..k + r).collect();
        indices.shuffle(&mut rng);
        let missing: Vec<usize> = indices.into_iter().take(erasures.min(r)).collect();
        assert_reconstruct_parity(&rs, &full, &missing)?;
    }

    /// LRC: the zero-copy methods agree with the legacy API, including the
    /// local-repair phase and the global fallback.
    #[test]
    fn lrc_zero_copy_agrees_with_legacy(
        k in 4usize..12,
        l in 2usize..4,
        g in 1usize..4,
        len in 1usize..32,
        seed in any::<u64>(),
    ) {
        prop_assume!(l <= k);
        let mut rng = StdRng::seed_from_u64(seed);
        let lrc = Lrc::new(LrcParams { k, local_groups: l, global_parities: g }).unwrap();
        let data = random_data(&mut rng, k, len);
        assert_encode_parity(&lrc, &data);
        let full = full_stripe(&lrc, &data);
        assert_repair_parity(&lrc, &full);

        let n = lrc.params().total_shards();
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(&mut rng);
        let erase = rng.random_range(0..=g);
        let missing: Vec<usize> = indices.into_iter().take(erase).collect();
        assert_reconstruct_parity(&lrc, &full, &missing)?;
    }

    /// Replication: the zero-copy methods agree with the legacy API.
    #[test]
    fn replication_zero_copy_agrees_with_legacy(
        replicas in 2usize..6,
        len in 1usize..64,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rep = Replication::new(replicas).unwrap();
        let data = random_data(&mut rng, 1, len);
        assert_encode_parity(&rep, &data);
        let full = full_stripe(&rep, &data);
        assert_repair_parity(&rep, &full);

        // Erase all but one random survivor.
        let survivor = rng.random_range(0..replicas);
        let missing: Vec<usize> = (0..replicas).filter(|&i| i != survivor).collect();
        assert_reconstruct_parity(&rep, &full, &missing)?;
    }

    /// Over-erased stripes fail identically through both APIs.
    #[test]
    fn excess_erasures_fail_in_both_apis(
        k in 2usize..8,
        r in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rs = ReedSolomon::new(k, r).unwrap();
        let data = random_data(&mut rng, k, 16);
        let full = full_stripe(&rs, &data);
        let mut indices: Vec<usize> = (0..k + r).collect();
        indices.shuffle(&mut rng);
        let missing: Vec<usize> = indices.into_iter().take(r + 1).collect();
        assert_reconstruct_parity(&rs, &full, &missing)?;
    }

    /// CodeSpec parse/display round-trips for every valid combination the
    /// grid produces.
    #[test]
    fn code_spec_round_trips(
        k in 1usize..30,
        r in 1usize..10,
        l in 1usize..6,
        copies in 2usize..12,
    ) {
        let specs = [
            CodeSpec::ReedSolomon { k, r },
            CodeSpec::PiggybackedRs { k, r },
            CodeSpec::Lrc { k, local_groups: l, global_parities: r },
            CodeSpec::Replication { copies },
        ];
        for spec in specs {
            let text = spec.to_string();
            let parsed: CodeSpec = text.parse().unwrap();
            prop_assert_eq!(parsed, spec, "{}", text);
        }
    }
}

/// The in-place decode must work on narrowed (strided) views too: pack two
/// independent RS stripes into interleaved halves of one buffer and rebuild
/// each through a narrowed view.
#[test]
fn reconstruct_in_place_on_narrowed_views() {
    let rs = ReedSolomon::new(4, 2).unwrap();
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let left = random_data(&mut rng, 4, 8);
    let right = random_data(&mut rng, 4, 8);
    let full_left = full_stripe(&rs, &left);
    let full_right = full_stripe(&rs, &right);

    // One buffer of 6 shards x 16 bytes: first half from stripe L, second
    // half from stripe R.
    let mut buf = vec![0u8; 6 * 16];
    for i in 0..6 {
        buf[i * 16..i * 16 + 8].copy_from_slice(&full_left[i]);
        buf[i * 16 + 8..(i + 1) * 16].copy_from_slice(&full_right[i]);
    }
    let mut present = vec![true; 6];
    present[1] = false;
    present[4] = false;
    buf[16..32].fill(0); // erase shard 1 in both halves
    buf[64..80].fill(0); // erase shard 4 in both halves

    let mut view = ShardSetMut::new(&mut buf, 6, 16).unwrap();
    let mut left_view = view.narrow_mut(0, 8);
    rs.reconstruct_in_place(&mut left_view, &present).unwrap();
    let mut right_view = view.narrow_mut(8, 8);
    rs.reconstruct_in_place(&mut right_view, &present).unwrap();

    for i in 0..6 {
        assert_eq!(&buf[i * 16..i * 16 + 8], &full_left[i][..], "L{i}");
        assert_eq!(&buf[i * 16 + 8..(i + 1) * 16], &full_right[i][..], "R{i}");
    }
}

/// `repair_into` validates its inputs like the rest of the API.
#[test]
fn repair_into_validates_inputs() {
    let rs = ReedSolomon::new(4, 2).unwrap();
    let buf = vec![0u8; 6 * 8];
    let set = ShardSet::new(&buf, 6, 8).unwrap();
    let mut out = vec![0u8; 8];
    assert!(
        rs.repair_into(6, &set, &mut out).is_err(),
        "target out of range"
    );
    let mut short = vec![0u8; 7];
    assert!(
        rs.repair_into(0, &set, &mut short).is_err(),
        "wrong out length"
    );
    let narrow = ShardSet::new(&buf[..40], 5, 8).unwrap();
    assert!(
        rs.repair_into(0, &narrow, &mut out).is_err(),
        "wrong shard count"
    );
}
