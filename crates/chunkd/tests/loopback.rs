//! End-to-end loopback scenarios: a store mounting a mix of local disks
//! and chunkd-served remote disks survives the full lifecycle — ingest,
//! degraded reads, a lost remote disk, daemon repair, remote corruption,
//! and remote tmp sweeping.

use std::fs::{self, File};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

use pbrs_chunkd::protocol::{read_frame, write_frame};
use pbrs_chunkd::{ChunkServer, RemoteDisk, Request, Response, ServerConfig};
use pbrs_store::testing::TempDir;
use pbrs_store::{
    BlockStore, ChunkBackend, ChunkStatus, DaemonConfig, FaultPlan, LocalDisk, PlacementPolicy,
    RackMap, RepairDaemon, StoreConfig,
};

const CHUNK_LEN: usize = 512;

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 37 + 11) % 251) as u8).collect()
}

/// A piggyback-4-2 store with disks 0–2 remote (chunkd over loopback) and
/// disks 3–5 local, driven through loss, repair and corruption.
#[test]
fn mixed_local_remote_store_full_lifecycle() {
    let dir = TempDir::new("chunkd-loopback");
    let servers: Vec<ChunkServer> = (0..3)
        .map(|i| {
            ChunkServer::bind_with(
                dir.path().join(format!("srv-{i:02}")),
                "127.0.0.1:0",
                ServerConfig {
                    threads: 2,
                    ..ServerConfig::default()
                },
            )
            .unwrap()
        })
        .collect();
    let mut disks: Vec<Arc<dyn ChunkBackend>> = servers
        .iter()
        .map(|s| Arc::new(RemoteDisk::new(s.local_addr().to_string())) as Arc<dyn ChunkBackend>)
        .collect();
    for i in 3..6 {
        disks.push(Arc::new(LocalDisk::new(
            dir.path().join(format!("disk-{i:02}")),
        )));
    }
    let store = Arc::new(
        BlockStore::open_with_backends(
            StoreConfig::new(dir.path().join("root"), "piggyback-4-2".parse().unwrap())
                .chunk_len(CHUNK_LEN)
                .pipeline_workers(3),
            disks,
            RackMap::per_disk(6),
            PlacementPolicy::Identity,
        )
        .unwrap(),
    );

    // Ingest + healthy read-back through the pipeline, chunks on sockets.
    let data = pattern(4 * CHUNK_LEN * 5 + 217); // 6 stripes, last partial
    store.put("obj", &data[..]).unwrap();
    assert_eq!(store.get("obj").unwrap(), data);
    let after_put = store.socket_counters();
    assert!(
        after_put.bytes_sent > (6 * 3 * CHUNK_LEN) as u64,
        "three disks' worth of chunks must have crossed sockets: {after_put:?}"
    );

    // Lose remote disk 1 wholesale (its server stays up, its files die).
    fs::remove_dir_all(servers[1].root()).unwrap();
    let scrub = store.scrub().unwrap();
    assert_eq!(scrub.lost_disks, vec![1]);
    assert_eq!(scrub.damages.len(), 6);
    assert_eq!(store.get("obj").unwrap(), data, "degraded read over TCP");
    assert!(store.metrics().degraded_stripe_reads >= 6);

    // The daemon rebuilds the remote disk over the wire.
    let daemon = RepairDaemon::start(Arc::clone(&store), DaemonConfig::default());
    daemon.scan_now().unwrap();
    daemon.wait_idle();
    let stats = daemon.shutdown();
    assert_eq!(stats.chunks_repaired, 6);
    assert_eq!(stats.failures, 0);
    assert!(store.scrub().unwrap().is_clean());
    assert_eq!(store.get("obj").unwrap(), data);

    // Corrupt one byte of a remote chunk: detected through the wire's
    // checksum verification, served degraded, repaired on demand.
    let victim = servers[2].root().join("obj/00000002-02.chunk");
    let mut bytes = fs::read(&victim).unwrap();
    let at = bytes.len() - 7;
    bytes[at] ^= 0x40;
    fs::write(&victim, &bytes).unwrap();
    assert_eq!(store.get("obj").unwrap(), data, "read over corrupt remote");
    assert!(store.metrics().corrupt_chunks_detected >= 1);
    let repair = store.repair_stripe("obj", 2, &[2]).unwrap();
    assert_eq!(repair.rebuilt, vec![2]);
    assert!(store.scrub().unwrap().is_clean());

    // A stale tmp on a remote disk is swept through the protocol and
    // reported with its disk index.
    let stale = servers[0].root().join("obj/00000000-00.tmp");
    fs::write(&stale, b"crash leftover").unwrap();
    File::options()
        .write(true)
        .open(&stale)
        .unwrap()
        .set_modified(SystemTime::now() - Duration::from_secs(3600))
        .unwrap();
    let scrub = store.scrub().unwrap();
    assert_eq!(scrub.stale_tmp_removed, vec!["disk-00/obj/00000000-00.tmp"]);
    assert!(!stale.exists());
}

/// Reopening a store over the same mounts preserves objects, and a dead
/// server surfaces as a lost disk (not a hang or a hard error).
#[test]
fn reopen_and_server_death_are_handled() {
    let dir = TempDir::new("chunkd-reopen");
    let server = ChunkServer::bind(dir.path().join("srv"), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    let make_disks = |addr: &str| -> Vec<Arc<dyn ChunkBackend>> {
        let mut disks: Vec<Arc<dyn ChunkBackend>> = vec![Arc::new(RemoteDisk::with_timeout(
            addr.to_string(),
            Duration::from_millis(500),
        ))];
        for i in 1..6 {
            disks.push(Arc::new(LocalDisk::new(
                dir.path().join(format!("disk-{i:02}")),
            )));
        }
        disks
    };
    let config = || {
        StoreConfig::new(dir.path().join("root"), "rs-4-2".parse().unwrap()).chunk_len(CHUNK_LEN)
    };
    let data = pattern(4 * CHUNK_LEN + 99);
    {
        let store = BlockStore::open_with_backends(
            config(),
            make_disks(&addr),
            RackMap::per_disk(6),
            PlacementPolicy::Identity,
        )
        .unwrap();
        store.put("obj", &data[..]).unwrap();
    }
    // Reopen over the same mounts: the object is still there.
    let store = BlockStore::open_with_backends(
        config(),
        make_disks(&addr),
        RackMap::per_disk(6),
        PlacementPolicy::Identity,
    )
    .unwrap();
    assert_eq!(store.get("obj").unwrap(), data);

    // Kill the server: the remote disk reports lost, reads degrade, and
    // nothing hangs (the client's timeout bounds every attempt).
    server.shutdown();
    let scrub = store.scrub().unwrap();
    assert_eq!(scrub.lost_disks, vec![0]);
    assert_eq!(store.get("obj").unwrap(), data, "served from survivors");
}

/// Every remote op served by the chunk server lands in its per-op latency
/// histogram, and the Prometheus exposition carries the families.
#[test]
fn server_times_each_remote_op() {
    let dir = TempDir::new("chunkd-op-latency");
    let server = ChunkServer::bind(dir.path().join("srv"), "127.0.0.1:0").unwrap();
    let disk = RemoteDisk::new(server.local_addr().to_string());

    let payload = pattern(CHUNK_LEN);
    let id = pbrs_store::ChunkId {
        stripe: 0,
        shard: 0,
    };
    disk.ensure_object("obj").unwrap();
    disk.write_chunk("obj", id, &payload).unwrap();
    let mut out = vec![0u8; CHUNK_LEN];
    disk.read_chunk_into("obj", id, &mut out).unwrap().unwrap();
    assert_eq!(out, payload);
    disk.read_chunk_range("obj", id, CHUNK_LEN, 0, &mut out[..CHUNK_LEN / 2])
        .unwrap()
        .unwrap();
    disk.verify_chunk("obj", id, CHUNK_LEN).unwrap();
    assert!(disk.is_available());

    let counts: std::collections::BTreeMap<String, u64> = server
        .op_latency()
        .into_iter()
        .map(|(name, s)| (name, s.count))
        .collect();
    for op in [
        "op_ping_duration_seconds",
        "op_ensure_object_duration_seconds",
        "op_write_chunk_duration_seconds",
        "op_read_chunk_duration_seconds",
        "op_read_range_duration_seconds",
        "op_verify_duration_seconds",
    ] {
        assert!(counts[op] >= 1, "{op} was never recorded: {counts:?}");
    }
    // Ops never served stay at zero but are still present.
    assert_eq!(counts["op_remove_object_duration_seconds"], 0);

    let text = server.metrics_prometheus();
    assert!(text.contains("# TYPE pbrs_chunkd_op_read_chunk_duration_seconds histogram"));
    assert!(text.contains("pbrs_chunkd_op_read_chunk_duration_seconds_count 1"));
    assert!(text.contains("le=\"+Inf\""));
    server.shutdown();
}

/// The server-side fault hook over real sockets: an injected connection
/// drop kills the connection (the client's transparent retry rides it
/// out), a stalled op is bounded by the client's deadline budget, and an
/// already-expired budget is refused with a typed error instead of work.
#[test]
fn fault_hook_drops_connections_and_deadlines_bound_stalls() {
    let dir = TempDir::new("chunkd-chaos");
    let plan =
        Arc::new(FaultPlan::parse("op=read drop count=1; disk=0 op=verify stall", 11).unwrap());
    let server = ChunkServer::bind_with(
        dir.path().join("srv"),
        "127.0.0.1:0",
        ServerConfig {
            threads: 2,
            fault_plan: Some(Arc::clone(&plan)),
            fault_disk: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let disk =
        RemoteDisk::with_timeout(server.local_addr().to_string(), Duration::from_millis(400))
            .deadline(Duration::from_millis(400));
    let id = pbrs_store::ChunkId {
        stripe: 0,
        shard: 0,
    };
    let payload = pattern(CHUNK_LEN);
    disk.ensure_object("obj").unwrap();
    disk.write_chunk("obj", id, &payload).unwrap();

    // First read hits the drop fault: the server kills the connection
    // without answering; the client redials and the retry succeeds.
    let mut out = vec![0u8; CHUNK_LEN];
    disk.read_chunk_into("obj", id, &mut out).unwrap().unwrap();
    assert_eq!(out, payload);
    assert!(plan.fired() >= 1, "the drop rule never fired");
    assert!(
        disk.reconnect_stats().successes >= 2,
        "surviving the drop requires a redial: {:?}",
        disk.reconnect_stats()
    );

    // The stalled verify is bounded by the budget and degrades to a lost
    // chunk — never a hang, never a hard error.
    let start = std::time::Instant::now();
    let (status, _) = disk.verify_chunk("obj", id, CHUNK_LEN).unwrap();
    assert_eq!(status, ChunkStatus::Missing);
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "stalled verify not bounded: {:?}",
        start.elapsed()
    );

    // A wire frame whose budget is already spent gets the typed refusal.
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    let expired = Request::Deadline {
        budget_ms: 0,
        inner: Box::new(Request::Ping),
    };
    write_frame(&mut stream, 1, &expired.encode()).unwrap();
    let (req_id, body, _) = read_frame(&mut stream).unwrap();
    assert_eq!(req_id, 1);
    match Response::decode(&body).unwrap() {
        Response::Err { message } => assert!(message.contains("deadline"), "{message}"),
        other => panic!("expected a deadline refusal, got {other:?}"),
    }

    plan.release(); // unstall the parked server worker before teardown
    server.shutdown();
}
