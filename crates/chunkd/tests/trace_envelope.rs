//! Property tests of the chunkd trace envelope: `TRACE`-wrapped requests
//! round-trip for every inner shape, hostile bodies (truncated, zero ids,
//! garbage) produce typed errors — never panics, never misparses — and a
//! traceless legacy peer's bytes are exactly the unwrapped encoding, so
//! old clients and un-upgraded servers interoperate silently.
//!
//! The vendored `proptest` has no combinator strategies, so shaped values
//! are built from a seeded `StdRng`, the same idiom as the gateway's
//! framing property tests.

use std::time::Duration;

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

use pbrs_chunkd::protocol::{decode_spans, encode_spans, Request};
use pbrs_obs::trace::{SpanId, SpanRecord, TraceCtx, TraceId};
use pbrs_store::ChunkId;

fn random_name(rng: &mut StdRng) -> String {
    let len = rng.random_range(1..32usize);
    (0..len)
        .map(|_| char::from(b'a' + rng.random_range(0..26u8)))
        .collect()
}

fn random_id(rng: &mut StdRng) -> ChunkId {
    ChunkId {
        stripe: rng.random(),
        shard: rng.random_range(0..64usize),
    }
}

/// Any innermost (wrapper-free) request shape.
fn random_plain_request(rng: &mut StdRng) -> Request {
    match rng.random_range(0..8u8) {
        0 => Request::Ping,
        1 => Request::EnsureObject {
            object: random_name(rng),
        },
        2 => Request::RemoveObject {
            object: random_name(rng),
        },
        3 => Request::WriteChunk {
            object: random_name(rng),
            id: random_id(rng),
            payload: (0..rng.random_range(0..256usize))
                .map(|_| rng.random())
                .collect(),
        },
        4 => Request::ReadChunk {
            object: random_name(rng),
            id: random_id(rng),
            len: rng.random_range(0..1 << 20u64),
        },
        5 => Request::Verify {
            object: random_name(rng),
            id: random_id(rng),
            chunk_len: rng.random_range(1..1 << 20u64),
        },
        6 => Request::SweepTmp {
            min_age: Duration::from_millis(rng.random_range(0..1 << 40)),
        },
        _ => Request::FetchSpans,
    }
}

fn random_ctx(rng: &mut StdRng) -> TraceCtx {
    TraceCtx::from_raw(rng.random_range(1..u64::MAX), rng.random_range(1..u64::MAX)).unwrap()
}

fn random_span(rng: &mut StdRng) -> SpanRecord {
    SpanRecord {
        trace: TraceId::new(rng.random_range(1..u64::MAX)).unwrap(),
        id: SpanId::new(rng.random_range(1..u64::MAX)).unwrap(),
        parent: rng
            .random_bool(0.7)
            .then(|| SpanId::new(rng.random_range(1..u64::MAX)).unwrap()),
        name: random_name(rng),
        process: format!("chunkd:{}", random_name(rng)),
        start_us: rng.random(),
        dur_us: rng.random_range(0..1 << 40),
        tags: (0..rng.random_range(0..4usize))
            .map(|_| (random_name(rng), random_name(rng)))
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A trace envelope round-trips around every inner request shape,
    /// including a nested deadline wrapper (trace strictly outermost).
    #[test]
    fn trace_wrapped_requests_round_trip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let inner = random_plain_request(&mut rng);
            let inner = if rng.random_bool(0.5) {
                Request::Deadline {
                    budget_ms: rng.random_range(1..1 << 30),
                    inner: Box::new(inner),
                }
            } else {
                inner
            };
            let req = Request::Trace {
                ctx: random_ctx(&mut rng),
                inner: Box::new(inner),
            };
            prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    /// A legacy (traceless) peer's bytes are exactly the unwrapped
    /// encoding: the envelope adds bytes only when used, so old clients
    /// and un-upgraded servers keep speaking the same wire format.
    #[test]
    fn traceless_encoding_is_byte_identical_to_legacy(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let req = random_plain_request(&mut rng);
            let bytes = req.encode();
            // No trace opcode anywhere near the front, and decoding gives
            // back the plain request.
            prop_assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
    }

    /// Truncating a trace envelope anywhere (ids, or mid-inner) yields a
    /// typed error, never a panic or a misparse into a different request.
    #[test]
    fn truncated_envelopes_are_typed_errors(
        seed in any::<u64>(),
        keep_fraction in 0usize..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // WriteChunk's payload is "rest of body", so truncating it still
        // decodes (to a shorter write); use length-checked shapes here.
        let inner = loop {
            let r = random_plain_request(&mut rng);
            if !matches!(r, Request::WriteChunk { .. }) {
                break r;
            }
        };
        let req = Request::Trace {
            ctx: random_ctx(&mut rng),
            inner: Box::new(inner),
        };
        let bytes = req.encode();
        let keep = 1 + (bytes.len() - 2) * keep_fraction / 100; // opcode kept, always short
        match Request::decode(&bytes[..keep]) {
            Ok(got) => prop_assert_eq!(got, req), // only if nothing was cut
            Err(e) => prop_assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
        }
    }

    /// Garbage after the trace opcode (including zeroed ids) never
    /// panics; zero ids are always rejected.
    #[test]
    fn garbage_envelope_bodies_never_panic(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..16 {
            let mut body = vec![9u8]; // OP_TRACE
            let len = rng.random_range(0..64usize);
            body.extend((0..len).map(|_| rng.random::<u8>()));
            let _ = Request::decode(&body);
        }
        // Zero trace or span ids are reserved for "absent" and rejected.
        let mut zero_trace = vec![9u8];
        zero_trace.extend_from_slice(&0u64.to_le_bytes());
        zero_trace.extend_from_slice(&1u64.to_le_bytes());
        zero_trace.extend_from_slice(&Request::Ping.encode());
        prop_assert!(Request::decode(&zero_trace).is_err());
    }

    /// The span-shipping payload (`FETCH_SPANS` response) round-trips
    /// arbitrary span records, and truncation is a typed error.
    #[test]
    fn span_payloads_round_trip_and_reject_truncation(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let spans: Vec<SpanRecord> = (0..rng.random_range(0..8usize))
            .map(|_| random_span(&mut rng))
            .collect();
        let payload = encode_spans(&spans);
        prop_assert_eq!(decode_spans(&payload).unwrap(), spans);
        if payload.len() > 4 {
            let cut = rng.random_range(4..payload.len());
            prop_assert!(decode_spans(&payload[..cut]).is_err());
        }
    }
}
