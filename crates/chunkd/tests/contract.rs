//! The networked `repair_reads` contract: a remote single-failure repair
//! issues exactly the declared helper ranges — no byte outside them ever
//! crosses the socket.
//!
//! Proof technique (borrowed from `crates/core/tests/repair_reads.rs`):
//! after ingesting an object, every helper chunk *on the servers' disks*
//! is rewritten so the bytes outside the declared ranges are garbage (with
//! checksums recomputed, so reads of undeclared ranges would verify and
//! poison the rebuild undetected). If the repair still reproduces the lost
//! chunk bit-for-bit, it cannot have read any undeclared byte. The per-disk
//! socket counters then pin down the *quantity*: each helper connection
//! carried its declared range plus a few framing bytes — for Piggybacked-RS
//! parity helpers, half a chunk, never a whole one.

use std::fs;
use std::sync::Arc;

use pbrs_chunkd::{ChunkServer, RemoteDisk};
use pbrs_core::registry;
use pbrs_erasure::{reads_for_shard, total_read_bytes, CodeSpec, ShardRead};
use pbrs_store::testing::TempDir;
use pbrs_store::{chunk, BlockStore, ChunkBackend, ChunkId, PlacementPolicy, RackMap, StoreConfig};

const CHUNK_LEN: usize = 2048;
const STRIPES: u64 = 2;
const TARGET: usize = 1; // a data shard: piggyback uses half-chunk helpers

/// Per-response wire overhead: 4-byte length prefix + 8-byte request id
/// + 1 status byte.
const FRAME_OVERHEAD: u64 = pbrs_chunkd::protocol::FRAME_OVERHEAD + 1;

fn garbage_fill_outside(path: &std::path::Path, id: ChunkId, declared: &[&ShardRead]) -> Vec<u8> {
    let original = chunk::read_chunk(path, id, CHUNK_LEN).unwrap().unwrap();
    let mut doctored: Vec<u8> = (0..CHUNK_LEN)
        .map(|i| ((i * 89 + 31) % 251) as u8)
        .collect();
    for read in declared {
        doctored[read.range()].copy_from_slice(&original[read.range()]);
    }
    chunk::write_chunk(path, id, &doctored).unwrap();
    original
}

#[test]
fn remote_repair_reads_only_the_declared_ranges() {
    let spec: CodeSpec = "piggyback-6-3".parse().unwrap();
    let code = registry::build(&spec).unwrap();
    let n = code.params().total_shards();

    let dir = TempDir::new("chunkd-contract");
    let servers: Vec<ChunkServer> = (0..n)
        .map(|i| ChunkServer::bind(dir.path().join(format!("srv-{i:02}")), "127.0.0.1:0").unwrap())
        .collect();
    let remotes: Vec<Arc<RemoteDisk>> = servers
        .iter()
        .map(|s| Arc::new(RemoteDisk::new(s.local_addr().to_string())))
        .collect();
    let disks: Vec<Arc<dyn ChunkBackend>> = remotes
        .iter()
        .map(|r| Arc::clone(r) as Arc<dyn ChunkBackend>)
        .collect();
    let store = BlockStore::open_with_backends(
        StoreConfig::new(dir.path().join("root"), spec).chunk_len(CHUNK_LEN),
        disks,
        RackMap::per_disk(n),
        PlacementPolicy::Identity,
    )
    .unwrap();

    let data: Vec<u8> = (0..code.params().data_shards() * CHUNK_LEN * STRIPES as usize)
        .map(|i| ((i * 31 + 7) % 253) as u8)
        .collect();
    store.put("obj", &data[..]).unwrap();

    // The declared helper ranges for losing shard TARGET.
    let mut available = vec![true; n];
    available[TARGET] = false;
    let reads = store
        .code()
        .repair_reads(TARGET, &available, CHUNK_LEN)
        .unwrap();
    let declared_bytes = total_read_bytes(&reads);
    assert!(
        declared_bytes < (code.params().data_shards() * CHUNK_LEN) as u64,
        "piggyback data repair must beat the RS baseline"
    );

    // Doctor every helper chunk on the servers' disks: garbage outside the
    // declared ranges, valid checksums throughout. Remember the target's
    // original payloads, then delete them.
    let mut lost_payloads = Vec::new();
    for stripe in 0..STRIPES {
        for (shard, server) in servers.iter().enumerate() {
            let id = ChunkId { stripe, shard };
            let path = server
                .root()
                .join("obj")
                .join(format!("{stripe:08}-{shard:02}.chunk"));
            if shard == TARGET {
                lost_payloads.push(chunk::read_chunk(&path, id, CHUNK_LEN).unwrap().unwrap());
                fs::remove_file(&path).unwrap();
            } else {
                let declared: Vec<&ShardRead> = reads_for_shard(&reads, shard).collect();
                garbage_fill_outside(&path, id, &declared);
            }
        }
    }

    // Snapshot per-disk socket counters, then repair both stripes.
    let before: Vec<u64> = remotes
        .iter()
        .map(|r| r.counters().bytes_received)
        .collect();
    for stripe in 0..STRIPES {
        let repair = store.repair_stripe("obj", stripe, &[TARGET]).unwrap();
        assert_eq!(repair.rebuilt, vec![TARGET], "stripe {stripe}");
        assert_eq!(repair.helper_bytes, declared_bytes, "stripe {stripe}");
    }

    // The rebuilds consumed garbage-adjacent helpers and still reproduced
    // the lost chunks exactly: no undeclared byte was read.
    for stripe in 0..STRIPES {
        let id = ChunkId {
            stripe,
            shard: TARGET,
        };
        let path = servers[TARGET]
            .root()
            .join("obj")
            .join(format!("{stripe:08}-{TARGET:02}.chunk"));
        let rebuilt = chunk::read_chunk(&path, id, CHUNK_LEN).unwrap().unwrap();
        assert_eq!(
            rebuilt, lost_payloads[stripe as usize],
            "stripe {stripe}: rebuild diverged — an undeclared range was read"
        );
    }

    // Socket accounting: each helper disk received its declared ranges
    // plus only framing overhead; Piggybacked-RS parity helpers shipped
    // half-chunks, never whole ones.
    for (shard, remote) in remotes.iter().enumerate() {
        if shard == TARGET {
            continue;
        }
        let declared: Vec<&ShardRead> = reads_for_shard(&reads, shard).collect();
        let declared_disk: u64 = declared.iter().map(|r| r.len as u64).sum();
        let got = remote.counters().bytes_received - before[shard];
        let max = STRIPES * (declared_disk + FRAME_OVERHEAD * declared.len().max(1) as u64);
        assert!(
            got >= STRIPES * declared_disk && got <= max,
            "shard {shard}: {got} socket bytes for {declared_disk} declared \
             bytes per stripe (max {max})"
        );
        if declared.iter().all(|r| r.len == CHUNK_LEN / 2) && !declared.is_empty() {
            assert!(
                got < STRIPES * CHUNK_LEN as u64,
                "shard {shard}: a half-chunk helper shipped a whole chunk"
            );
        }
    }
}
