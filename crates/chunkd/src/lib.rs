//! `pbrs-chunkd` — a per-"disk" TCP chunk server and client for the pbrs
//! block store.
//!
//! The rest of the workspace measures the paper's repair-traffic argument
//! on local file I/O; this crate puts a real network between the store and
//! its disks, so the ~30 % Piggybacked-RS saving is observed on *socket*
//! byte counters rather than inferred:
//!
//! * [`ChunkServer`] — a blocking TCP server (small `std::thread` accept
//!   pool, no async runtime) exposing one local disk directory over the
//!   length-prefixed [`protocol`]. The operation set mirrors
//!   [`pbrs_store::ChunkBackend`] one-to-one; `ReadRange` serves exactly
//!   the helper byte ranges `ErasureCode::repair_reads` names, so a
//!   Piggybacked-RS helper ships half a chunk, never a whole one.
//! * [`RemoteDisk`] — the client side, implementing
//!   [`pbrs_store::ChunkBackend`] with lazy connect, one transparent
//!   reconnect-and-retry (every op is idempotent), and per-connection
//!   read/write byte counters.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use pbrs_chunkd::{ChunkServer, RemoteDisk};
//! use pbrs_store::testing::TempDir;
//! use pbrs_store::{BlockStore, ChunkBackend, LocalDisk, PlacementPolicy, RackMap, StoreConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = TempDir::new("chunkd-doc");
//! // Serve two of a 4-disk rs-2-2 store's disks over loopback TCP.
//! let servers: Vec<ChunkServer> = (0..2)
//!     .map(|i| ChunkServer::bind(dir.path().join(format!("remote-{i}")), "127.0.0.1:0"))
//!     .collect::<Result<_, _>>()?;
//! let mut disks: Vec<Arc<dyn ChunkBackend>> = servers
//!     .iter()
//!     .map(|s| Arc::new(RemoteDisk::new(s.local_addr().to_string())) as Arc<dyn ChunkBackend>)
//!     .collect();
//! for i in 2..4 {
//!     disks.push(Arc::new(LocalDisk::new(dir.path().join(format!("local-{i}")))));
//! }
//! let store = BlockStore::open_with_backends(
//!     StoreConfig::new(dir.path().join("root"), "rs-2-2".parse()?).chunk_len(1024),
//!     disks,
//!     RackMap::per_disk(4),
//!     PlacementPolicy::Identity,
//! )?;
//! let payload = vec![7u8; 5000];
//! store.put("demo", &payload[..])?;
//! assert_eq!(store.get("demo")?, payload);
//! // Chunk bytes for disks 0 and 1 crossed real sockets:
//! assert!(store.socket_counters().bytes_sent > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{ReconnectStats, RemoteDisk, BACKOFF_BASE, BACKOFF_CAP, DEFAULT_TIMEOUT};
pub use protocol::{Request, Response, FRAME_OVERHEAD, MAX_FRAME};
pub use server::{ChunkServer, ServerConfig};
