//! The chunkd wire protocol: length-prefixed, request-tagged binary
//! frames over TCP.
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! offset  size  field
//!      0     4  body length                      (u32 LE, ≤ MAX_FRAME)
//!      4     8  request id                       (u64 LE)
//!     12     …  body
//! ```
//!
//! A request body opens with a one-byte opcode followed by its fields; a
//! response body opens with a one-byte status ([`Response::Ok`] /
//! `Missing` / `Corrupt` / `Err`) followed by the op-specific payload.
//! Integers are little-endian; strings are a `u32` length plus UTF-8
//! bytes.
//!
//! The request id is what turns one connection into a *multiplexed* pipe:
//! a client may have any number of requests in flight on one socket (each
//! under a distinct id), the server answers each frame with the same id,
//! and the client's demultiplexer routes every response to its waiting
//! caller. Responses arrive in request order today (the server handles a
//! connection's frames sequentially), but the contract is only "same id
//! back" — a client must match by id, never by arrival order, so the
//! server is free to reorder. This is what lets every worker of a repair
//! or degraded read share one socket per remote disk with many overlapping
//! reads instead of one lock-step round trip at a time.
//!
//! The operation set mirrors [`pbrs_store::ChunkBackend`] one-to-one, and
//! that is the point: [`ReadRange`](Request::ReadRange) serves exactly the
//! helper byte ranges `ErasureCode::repair_reads` names (half-chunks for
//! Piggybacked-RS), so a degraded read or repair against a remote disk
//! ships only the bytes the rebuild consumes. [`Verify`](Request::Verify)
//! checks a chunk server-side and ships only the verdict.

use std::io::{self, Read, Write};
use std::time::Duration;

use pbrs_obs::trace::{SpanId, SpanRecord, TraceCtx, TraceId};
use pbrs_store::{ChunkId, ChunkStatus};

/// Hard upper bound on a frame body, protecting both ends from a corrupt
/// or hostile length prefix. Far above any real chunk (the store caps
/// chunk payloads at `u32::MAX`, but practical chunks are ≤ a few MiB).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

const OP_PING: u8 = 0;
const OP_ENSURE_OBJECT: u8 = 1;
const OP_REMOVE_OBJECT: u8 = 2;
const OP_WRITE_CHUNK: u8 = 3;
const OP_READ_CHUNK: u8 = 4;
const OP_READ_RANGE: u8 = 5;
const OP_VERIFY: u8 = 6;
const OP_SWEEP_TMP: u8 = 7;
const OP_DEADLINE: u8 = 8;
const OP_TRACE: u8 = 9;
const OP_FETCH_SPANS: u8 = 10;

const STATUS_OK: u8 = 0;
const STATUS_MISSING: u8 = 1;
const STATUS_CORRUPT: u8 = 2;
const STATUS_ERR: u8 = 3;

/// One request to a chunk server. Operations mirror
/// [`pbrs_store::ChunkBackend`]; all are idempotent, which is what lets
/// the client transparently retry once over a fresh connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness + disk-presence probe.
    Ping,
    /// Durably create the object's directory.
    EnsureObject {
        /// Object name (a validated path component).
        object: String,
    },
    /// Best-effort removal of the object's chunks.
    RemoveObject {
        /// Object name.
        object: String,
    },
    /// Write one chunk atomically and durably.
    WriteChunk {
        /// Object name.
        object: String,
        /// Chunk identity within the object.
        id: ChunkId,
        /// The chunk payload.
        payload: Vec<u8>,
    },
    /// Read and fully verify one chunk.
    ReadChunk {
        /// Object name.
        object: String,
        /// Chunk identity within the object.
        id: ChunkId,
        /// Expected payload length.
        len: u32,
    },
    /// Read a checksum-verified byte range of one chunk — the repair-read
    /// primitive (half-chunks for Piggybacked-RS helpers).
    ReadRange {
        /// Object name.
        object: String,
        /// Chunk identity within the object.
        id: ChunkId,
        /// Expected whole-payload length.
        chunk_len: u32,
        /// Byte offset of the range.
        offset: u32,
        /// Length of the range.
        len: u32,
    },
    /// Verify a chunk server-side; only the verdict crosses the wire.
    Verify {
        /// Object name.
        object: String,
        /// Chunk identity within the object.
        id: ChunkId,
        /// Expected payload length.
        chunk_len: u32,
    },
    /// Delete stale `*.tmp` crash leftovers older than `min_age`.
    SweepTmp {
        /// Minimum age before a tmp file counts as stale.
        min_age: Duration,
    },
    /// Wraps any other request with a deadline budget: the client's
    /// remaining patience, shipped so the server can refuse work it
    /// cannot finish in time (answering [`Response::Err`] with
    /// `"deadline exceeded"`) instead of burning disk on an answer nobody
    /// is waiting for. A new opcode rather than a trailing field so
    /// budget-less clients and servers interoperate unchanged.
    Deadline {
        /// Remaining budget in milliseconds.
        budget_ms: u32,
        /// The operation under the budget. Never itself a `Deadline`
        /// (nesting is rejected at decode).
        inner: Box<Request>,
    },
    /// Wraps any other request with the caller's trace context, so the
    /// server's span for this op joins the caller's tree. Mirrors
    /// [`Request::Deadline`]: a new opcode rather than a trailing field,
    /// so traceless legacy clients and un-upgraded servers interoperate
    /// unchanged. Always the **outermost** wrapper — it may wrap a
    /// `Deadline`, never another `Trace` (and a `Deadline` may not wrap
    /// a `Trace`); both are rejected at decode.
    Trace {
        /// The caller's context: trace id plus the span the server-side
        /// span should parent on.
        ctx: TraceCtx,
        /// The operation being traced.
        inner: Box<Request>,
    },
    /// Drains the server's finished-span export queue — the ship-back
    /// half of cross-process trace assembly. The gateway calls this when
    /// its `TRACES` verb runs, then merges the returned spans into its
    /// retained trees by trace id.
    FetchSpans,
}

/// One response from a chunk server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success; `payload` is op-specific (chunk bytes for reads, encoded
    /// fields for ping/verify/sweep, empty otherwise).
    Ok {
        /// Op-specific payload bytes.
        payload: Vec<u8>,
    },
    /// The chunk (or file) does not exist.
    Missing,
    /// The chunk exists but cannot serve reads.
    Corrupt {
        /// What was wrong.
        reason: String,
    },
    /// The server failed to execute the request.
    Err {
        /// The server-side error text.
        message: String,
    },
}

impl Response {
    /// A `Missing`/`Corrupt` response as a [`ChunkStatus`], if it is one.
    pub fn as_chunk_status(&self) -> Option<ChunkStatus> {
        match self {
            Response::Missing => Some(ChunkStatus::Missing),
            Response::Corrupt { reason } => Some(ChunkStatus::Corrupt {
                reason: reason.clone(),
            }),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Bytes of framing overhead per message (length prefix + request id).
pub const FRAME_OVERHEAD: u64 = 12;

/// Writes one frame (length prefix + request id + body). Returns the
/// total bytes put on the wire, for traffic accounting.
///
/// # Errors
///
/// Propagates I/O failures; rejects bodies above [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, req_id: u64, body: &[u8]) -> io::Result<u64> {
    if body.len() > MAX_FRAME {
        return Err(invalid(format!("frame body of {} bytes", body.len())));
    }
    // pbrs-lint: allow(wire-protocol) -- lossless: the MAX_FRAME guard above caps the length at 64 MiB
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&req_id.to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(FRAME_OVERHEAD + body.len() as u64)
}

/// Reads one frame. Returns the request id, the body, and the total bytes
/// taken off the wire.
///
/// # Errors
///
/// Propagates I/O failures (including `UnexpectedEof` mid-frame); rejects
/// length prefixes above [`MAX_FRAME`].
pub fn read_frame(r: &mut impl Read) -> io::Result<(u64, Vec<u8>, u64)> {
    let mut header = [0u8; 12];
    r.read_exact(&mut header)?;
    let len = le_u32(&header[0..4]) as usize;
    let req_id = le_u64(&header[4..12]);
    if len > MAX_FRAME {
        return Err(invalid(format!("frame length {len} exceeds MAX_FRAME")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok((req_id, body, FRAME_OVERHEAD + len as u64))
}

fn invalid(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Little-endian u32 from the first 4 bytes of `b`. Callers pass slices
/// whose length was already checked (fixed-size headers, [`Cursor::bytes`]).
pub(crate) fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Little-endian u64 from the first 8 bytes of `b`; same contract as
/// [`le_u32`].
pub(crate) fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

// ---------------------------------------------------------------------
// Body encoding
// ---------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    // pbrs-lint: allow(wire-protocol) -- lossless: any body holding the string is rejected above MAX_FRAME (64 MiB) at write time
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_id(out: &mut Vec<u8>, id: ChunkId) {
    out.extend_from_slice(&id.stripe.to_le_bytes());
    // pbrs-lint: allow(wire-protocol) -- lossless: shard indices are bounded by the stripe width (n + p), orders of magnitude below u32::MAX
    out.extend_from_slice(&(id.shard as u32).to_le_bytes());
}

/// A checked little-endian cursor over one frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn bytes(&mut self, len: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| invalid("truncated message body".into()))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(le_u32(self.bytes(4)?))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(le_u64(self.bytes(8)?))
    }

    fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| invalid("non-UTF-8 string".into()))
    }

    fn id(&mut self) -> io::Result<ChunkId> {
        Ok(ChunkId {
            stripe: self.u64()?,
            shard: self.u32()? as usize,
        })
    }

    fn rest(&mut self) -> Vec<u8> {
        let out = self.buf[self.pos..].to_vec();
        self.pos = self.buf.len();
        out
    }

    fn finish(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(invalid("trailing bytes in message body".into()))
        }
    }
}

impl Request {
    /// Serialises the request into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(OP_PING),
            Request::EnsureObject { object } => {
                out.push(OP_ENSURE_OBJECT);
                put_str(&mut out, object);
            }
            Request::RemoveObject { object } => {
                out.push(OP_REMOVE_OBJECT);
                put_str(&mut out, object);
            }
            Request::WriteChunk {
                object,
                id,
                payload,
            } => {
                out.push(OP_WRITE_CHUNK);
                put_str(&mut out, object);
                put_id(&mut out, *id);
                out.extend_from_slice(payload);
            }
            Request::ReadChunk { object, id, len } => {
                out.push(OP_READ_CHUNK);
                put_str(&mut out, object);
                put_id(&mut out, *id);
                out.extend_from_slice(&len.to_le_bytes());
            }
            Request::ReadRange {
                object,
                id,
                chunk_len,
                offset,
                len,
            } => {
                out.push(OP_READ_RANGE);
                put_str(&mut out, object);
                put_id(&mut out, *id);
                out.extend_from_slice(&chunk_len.to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
            Request::Verify {
                object,
                id,
                chunk_len,
            } => {
                out.push(OP_VERIFY);
                put_str(&mut out, object);
                put_id(&mut out, *id);
                out.extend_from_slice(&chunk_len.to_le_bytes());
            }
            Request::SweepTmp { min_age } => {
                out.push(OP_SWEEP_TMP);
                // Millisecond precision: second truncation would turn a
                // sub-second min_age into "sweep everything".
                let millis = u64::try_from(min_age.as_millis()).unwrap_or(u64::MAX);
                out.extend_from_slice(&millis.to_le_bytes());
            }
            Request::Deadline { budget_ms, inner } => {
                out.push(OP_DEADLINE);
                out.extend_from_slice(&budget_ms.to_le_bytes());
                out.extend_from_slice(&inner.encode());
            }
            Request::Trace { ctx, inner } => {
                out.push(OP_TRACE);
                out.extend_from_slice(&ctx.trace.as_u64().to_le_bytes());
                out.extend_from_slice(&ctx.span.as_u64().to_le_bytes());
                out.extend_from_slice(&inner.encode());
            }
            Request::FetchSpans => out.push(OP_FETCH_SPANS),
        }
        out
    }

    /// Parses a request from a frame body.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for unknown opcodes, truncation, or trailing
    /// bytes.
    pub fn decode(body: &[u8]) -> io::Result<Request> {
        let mut c = Cursor::new(body);
        let req = match c.u8()? {
            OP_PING => Request::Ping,
            OP_ENSURE_OBJECT => Request::EnsureObject { object: c.str()? },
            OP_REMOVE_OBJECT => Request::RemoveObject { object: c.str()? },
            OP_WRITE_CHUNK => Request::WriteChunk {
                object: c.str()?,
                id: c.id()?,
                payload: c.rest(),
            },
            OP_READ_CHUNK => Request::ReadChunk {
                object: c.str()?,
                id: c.id()?,
                len: c.u32()?,
            },
            OP_READ_RANGE => Request::ReadRange {
                object: c.str()?,
                id: c.id()?,
                chunk_len: c.u32()?,
                offset: c.u32()?,
                len: c.u32()?,
            },
            OP_VERIFY => Request::Verify {
                object: c.str()?,
                id: c.id()?,
                chunk_len: c.u32()?,
            },
            OP_SWEEP_TMP => Request::SweepTmp {
                min_age: Duration::from_millis(c.u64()?),
            },
            OP_DEADLINE => {
                let budget_ms = c.u32()?;
                let inner = Request::decode(&c.rest())?;
                if matches!(inner, Request::Deadline { .. }) {
                    return Err(invalid("nested deadline wrapper".into()));
                }
                if matches!(inner, Request::Trace { .. }) {
                    return Err(invalid("trace wrapper must be outermost".into()));
                }
                Request::Deadline {
                    budget_ms,
                    inner: Box::new(inner),
                }
            }
            OP_TRACE => {
                let trace = c.u64()?;
                let span = c.u64()?;
                let ctx = TraceCtx::from_raw(trace, span)
                    .ok_or_else(|| invalid("zero trace/span id in trace wrapper".into()))?;
                let inner = Request::decode(&c.rest())?;
                if matches!(inner, Request::Trace { .. }) {
                    return Err(invalid("nested trace wrapper".into()));
                }
                Request::Trace {
                    ctx,
                    inner: Box::new(inner),
                }
            }
            OP_FETCH_SPANS => Request::FetchSpans,
            other => return Err(invalid(format!("unknown opcode {other}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serialises the response into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Ok { payload } => {
                out.push(STATUS_OK);
                out.extend_from_slice(payload);
            }
            Response::Missing => out.push(STATUS_MISSING),
            Response::Corrupt { reason } => {
                out.push(STATUS_CORRUPT);
                put_str(&mut out, reason);
            }
            Response::Err { message } => {
                out.push(STATUS_ERR);
                put_str(&mut out, message);
            }
        }
        out
    }

    /// Parses a response from a frame body.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for unknown status bytes or truncation.
    pub fn decode(body: &[u8]) -> io::Result<Response> {
        let mut c = Cursor::new(body);
        let resp = match c.u8()? {
            STATUS_OK => Response::Ok { payload: c.rest() },
            STATUS_MISSING => Response::Missing,
            STATUS_CORRUPT => Response::Corrupt { reason: c.str()? },
            STATUS_ERR => Response::Err { message: c.str()? },
            other => return Err(invalid(format!("unknown status byte {other}"))),
        };
        c.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Op-specific Ok payloads (shared by server and client)
// ---------------------------------------------------------------------

/// Encodes a [`Request::Ping`] success payload.
pub fn encode_ping(disk_present: bool) -> Vec<u8> {
    vec![u8::from(disk_present)]
}

/// Decodes a [`Request::Ping`] success payload.
///
/// # Errors
///
/// Returns `InvalidData` on a malformed payload.
pub fn decode_ping(payload: &[u8]) -> io::Result<bool> {
    let mut c = Cursor::new(payload);
    let present = c.u8()? != 0;
    c.finish()?;
    Ok(present)
}

/// Encodes a [`Request::Verify`] success payload.
pub fn encode_verify(status: &ChunkStatus, bytes_read: u64) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&bytes_read.to_le_bytes());
    match status {
        ChunkStatus::Healthy => out.push(0),
        ChunkStatus::Missing => out.push(1),
        ChunkStatus::Corrupt { reason } => {
            out.push(2);
            put_str(&mut out, reason);
        }
    }
    out
}

/// Decodes a [`Request::Verify`] success payload.
///
/// # Errors
///
/// Returns `InvalidData` on a malformed payload.
pub fn decode_verify(payload: &[u8]) -> io::Result<(ChunkStatus, u64)> {
    let mut c = Cursor::new(payload);
    let bytes_read = c.u64()?;
    let status = match c.u8()? {
        0 => ChunkStatus::Healthy,
        1 => ChunkStatus::Missing,
        2 => ChunkStatus::Corrupt { reason: c.str()? },
        other => return Err(invalid(format!("unknown chunk status {other}"))),
    };
    c.finish()?;
    Ok((status, bytes_read))
}

/// Encodes a [`Request::SweepTmp`] success payload.
pub fn encode_sweep(removed: &[String]) -> Vec<u8> {
    let mut out = Vec::new();
    // pbrs-lint: allow(wire-protocol) -- lossless: a sweep list anywhere near u32::MAX entries could not fit in a MAX_FRAME body
    out.extend_from_slice(&(removed.len() as u32).to_le_bytes());
    for path in removed {
        put_str(&mut out, path);
    }
    out
}

/// Decodes a [`Request::SweepTmp`] success payload.
///
/// # Errors
///
/// Returns `InvalidData` on a malformed payload.
pub fn decode_sweep(payload: &[u8]) -> io::Result<Vec<String>> {
    let mut c = Cursor::new(payload);
    let count = c.u32()? as usize;
    let mut removed = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        removed.push(c.str()?);
    }
    c.finish()?;
    Ok(removed)
}

/// Encodes a [`Request::FetchSpans`] success payload: the drained
/// finished spans, in drain order.
pub fn encode_spans(spans: &[SpanRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    // pbrs-lint: allow(wire-protocol) -- lossless: the export queue is bounded far below u32::MAX and the body below MAX_FRAME
    out.extend_from_slice(&(spans.len() as u32).to_le_bytes());
    for span in spans {
        out.extend_from_slice(&span.trace.as_u64().to_le_bytes());
        out.extend_from_slice(&span.id.as_u64().to_le_bytes());
        // Zero encodes "no parent".
        let parent = span.parent.map(SpanId::as_u64).unwrap_or(0);
        out.extend_from_slice(&parent.to_le_bytes());
        put_str(&mut out, &span.name);
        put_str(&mut out, &span.process);
        out.extend_from_slice(&span.start_us.to_le_bytes());
        out.extend_from_slice(&span.dur_us.to_le_bytes());
        // pbrs-lint: allow(wire-protocol) -- lossless: spans carry a handful of tags, nowhere near u32::MAX
        out.extend_from_slice(&(span.tags.len() as u32).to_le_bytes());
        for (k, v) in &span.tags {
            put_str(&mut out, k);
            put_str(&mut out, v);
        }
    }
    out
}

/// Decodes a [`Request::FetchSpans`] success payload.
///
/// # Errors
///
/// Returns `InvalidData` on truncation, trailing bytes, or a zero trace
/// or span id.
pub fn decode_spans(payload: &[u8]) -> io::Result<Vec<SpanRecord>> {
    let mut c = Cursor::new(payload);
    let count = c.u32()? as usize;
    let mut spans = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let trace =
            TraceId::new(c.u64()?).ok_or_else(|| invalid("zero trace id in span record".into()))?;
        let id =
            SpanId::new(c.u64()?).ok_or_else(|| invalid("zero span id in span record".into()))?;
        let parent = SpanId::new(c.u64()?);
        let name = c.str()?;
        let process = c.str()?;
        let start_us = c.u64()?;
        let dur_us = c.u64()?;
        let tag_count = c.u32()? as usize;
        let mut tags = Vec::with_capacity(tag_count.min(64));
        for _ in 0..tag_count {
            let k = c.str()?;
            let v = c.str()?;
            tags.push((k, v));
        }
        spans.push(SpanRecord {
            trace,
            id,
            parent,
            name,
            process,
            start_us,
            dur_us,
            tags,
        });
    }
    c.finish()?;
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ID: ChunkId = ChunkId {
        stripe: 42,
        shard: 7,
    };

    #[test]
    fn requests_round_trip() {
        let cases = [
            Request::Ping,
            Request::EnsureObject {
                object: "obj".into(),
            },
            Request::RemoveObject {
                object: "obj".into(),
            },
            Request::WriteChunk {
                object: "obj".into(),
                id: ID,
                payload: (0..=255u8).collect(),
            },
            Request::ReadChunk {
                object: "obj".into(),
                id: ID,
                len: 4096,
            },
            Request::ReadRange {
                object: "obj".into(),
                id: ID,
                chunk_len: 4096,
                offset: 2048,
                len: 2048,
            },
            Request::Verify {
                object: "obj".into(),
                id: ID,
                chunk_len: 4096,
            },
            Request::SweepTmp {
                min_age: Duration::from_secs(60),
            },
            // Sub-second precision must survive the wire.
            Request::SweepTmp {
                min_age: Duration::from_millis(1500),
            },
            Request::Deadline {
                budget_ms: 250,
                inner: Box::new(Request::ReadRange {
                    object: "obj".into(),
                    id: ID,
                    chunk_len: 4096,
                    offset: 2048,
                    len: 2048,
                }),
            },
            Request::Trace {
                ctx: TraceCtx::from_raw(0x1234, 0x5678).unwrap(),
                inner: Box::new(Request::ReadChunk {
                    object: "obj".into(),
                    id: ID,
                    len: 4096,
                }),
            },
            // The canonical full stack: trace outermost, deadline inside.
            Request::Trace {
                ctx: TraceCtx::from_raw(0x1234, 0x5678).unwrap(),
                inner: Box::new(Request::Deadline {
                    budget_ms: 250,
                    inner: Box::new(Request::Ping),
                }),
            },
            Request::FetchSpans,
        ];
        for req in cases {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            Response::Ok {
                payload: vec![1, 2, 3],
            },
            Response::Ok { payload: vec![] },
            Response::Missing,
            Response::Corrupt {
                reason: "payload checksum mismatch".into(),
            },
            Response::Err {
                message: "disk on fire".into(),
            },
        ];
        for resp in cases {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn ok_payload_helpers_round_trip() {
        assert!(decode_ping(&encode_ping(true)).unwrap());
        assert!(!decode_ping(&encode_ping(false)).unwrap());
        for status in [
            ChunkStatus::Healthy,
            ChunkStatus::Missing,
            ChunkStatus::Corrupt {
                reason: "why".into(),
            },
        ] {
            let (back, bytes) = decode_verify(&encode_verify(&status, 123)).unwrap();
            assert_eq!(back, status);
            assert_eq!(bytes, 123);
        }
        let removed = vec!["obj/a.tmp".to_string(), "b.tmp".to_string()];
        assert_eq!(decode_sweep(&encode_sweep(&removed)).unwrap(), removed);
        assert_eq!(
            decode_sweep(&encode_sweep(&[])).unwrap(),
            Vec::<String>::new()
        );
    }

    #[test]
    fn malformed_bodies_are_rejected() {
        assert!(Request::decode(&[]).is_err(), "empty body");
        assert!(Request::decode(&[99]).is_err(), "unknown opcode");
        assert!(Response::decode(&[99]).is_err(), "unknown status");
        // Truncated string length.
        assert!(Request::decode(&[OP_ENSURE_OBJECT, 5, 0, 0, 0, b'a']).is_err());
        // Trailing garbage.
        let mut body = Request::Ping.encode();
        body.push(0);
        assert!(Request::decode(&body).is_err());
        // A deadline may wrap any op exactly once, never itself.
        let nested = Request::Deadline {
            budget_ms: 10,
            inner: Box::new(Request::Ping),
        };
        let mut doubled = vec![OP_DEADLINE];
        doubled.extend_from_slice(&20u32.to_le_bytes());
        doubled.extend_from_slice(&nested.encode());
        assert!(Request::decode(&doubled).is_err(), "nested deadline");
        // Trailing garbage inside the wrapped body is still rejected.
        let mut padded = nested.encode();
        padded.push(0);
        assert!(Request::decode(&padded).is_err());
    }

    #[test]
    fn trace_wrapper_is_strictly_outermost() {
        let ctx = TraceCtx::from_raw(7, 9).unwrap();
        // Trace in trace: rejected.
        let mut doubled = vec![OP_TRACE];
        doubled.extend_from_slice(&1u64.to_le_bytes());
        doubled.extend_from_slice(&2u64.to_le_bytes());
        doubled.extend_from_slice(
            &Request::Trace {
                ctx,
                inner: Box::new(Request::Ping),
            }
            .encode(),
        );
        assert!(Request::decode(&doubled).is_err(), "nested trace");
        // Deadline around trace: rejected (trace must be outermost).
        let mut inverted = vec![OP_DEADLINE];
        inverted.extend_from_slice(&10u32.to_le_bytes());
        inverted.extend_from_slice(
            &Request::Trace {
                ctx,
                inner: Box::new(Request::Ping),
            }
            .encode(),
        );
        assert!(Request::decode(&inverted).is_err(), "deadline around trace");
        // Zero ids are the "absent" encoding, never valid in an envelope.
        let mut zeroed = vec![OP_TRACE];
        zeroed.extend_from_slice(&0u64.to_le_bytes());
        zeroed.extend_from_slice(&2u64.to_le_bytes());
        zeroed.extend_from_slice(&Request::Ping.encode());
        assert!(Request::decode(&zeroed).is_err(), "zero trace id");
        // Truncated envelope header.
        assert!(Request::decode(&[OP_TRACE, 1, 2, 3]).is_err());
    }

    #[test]
    fn span_payloads_round_trip() {
        use pbrs_obs::trace::{SpanId, SpanRecord, TraceId};
        let spans = vec![
            SpanRecord {
                trace: TraceId::new(0xaaaa).unwrap(),
                id: SpanId::new(0xbbbb).unwrap(),
                parent: None,
                name: "read_chunk".into(),
                process: "chunkd:127.0.0.1:9000".into(),
                start_us: 1_700_000_000_000_000,
                dur_us: 321,
                tags: vec![],
            },
            SpanRecord {
                trace: TraceId::new(0xaaaa).unwrap(),
                id: SpanId::new(0xcccc).unwrap(),
                parent: SpanId::new(0xbbbb),
                name: "read_range".into(),
                process: "chunkd:127.0.0.1:9000".into(),
                start_us: 1_700_000_000_000_100,
                dur_us: 55,
                tags: vec![
                    ("object".into(), "obj".into()),
                    ("stripe".into(), "3".into()),
                ],
            },
        ];
        assert_eq!(decode_spans(&encode_spans(&spans)).unwrap(), spans);
        assert_eq!(decode_spans(&encode_spans(&[])).unwrap(), vec![]);
        // Truncation and trailing bytes are rejected.
        let body = encode_spans(&spans);
        assert!(decode_spans(&body[..body.len() - 1]).is_err());
        let mut padded = body.clone();
        padded.push(0);
        assert!(decode_spans(&padded).is_err());
        // A zero span id inside a record is rejected.
        let mut zeroed = encode_spans(&spans[..1]);
        zeroed[4 + 8..4 + 16].fill(0);
        assert!(decode_spans(&zeroed).is_err());
    }

    #[test]
    fn frames_round_trip_and_enforce_the_cap() {
        let mut wire = Vec::new();
        let sent = write_frame(&mut wire, 0xDEAD_BEEF, b"hello").unwrap();
        assert_eq!(sent, FRAME_OVERHEAD + 5);
        let (id, body, received) = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(id, 0xDEAD_BEEF);
        assert_eq!(body, b"hello");
        assert_eq!(received, FRAME_OVERHEAD + 5);
        // A hostile length prefix is rejected before allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        huge.extend_from_slice(&0u64.to_le_bytes());
        assert!(read_frame(&mut huge.as_slice()).is_err());
    }
}
