//! The chunk server: one TCP endpoint serving one "disk".
//!
//! A [`ChunkServer`] owns a [`LocalDisk`] root directory and answers the
//! [`crate::protocol`] request set over plain blocking TCP — no async
//! runtime, matching the store's `std::thread` style throughout. A small
//! pre-threaded pool shares the listener: each worker accepts one
//! connection at a time and serves it request-by-request, so `threads`
//! bounds both concurrency and memory. All durability guarantees are the
//! disk's ([`LocalDisk`] fsyncs files and directories); the server adds no
//! buffering of its own.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pbrs_obs::trace::{ScopedCtx, Tracer, TracerConfig};
use pbrs_obs::{prom, EventJournal, EventKind, LatencyHistogram, Registry, Summary};
use pbrs_store::manifest::validate_object_name;
use pbrs_store::{
    BackendCounters, ChunkBackend, ChunkStatus, FaultPlan, FaultyBackend, LocalDisk, StoreError,
};

use crate::protocol::{
    encode_ping, encode_spans, encode_sweep, encode_verify, write_frame, Request, Response,
    FRAME_OVERHEAD,
};

/// How long a serving thread waits for the next request before checking
/// the shutdown flag again. Bounds shutdown latency, not request latency.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Configuration of a [`ChunkServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads accepting and serving connections (also the maximum
    /// number of concurrently served connections).
    pub threads: usize,
    /// How long a connection may sit idle *between* frames before the
    /// server closes it and frees the worker for the next `accept`. With a
    /// thread-per-connection pool, an abandoned-but-open socket would
    /// otherwise pin a worker forever and starve live clients. Clients
    /// reconnect transparently (every op is idempotent and retried once
    /// over a fresh connection), so a short timeout is safe.
    pub idle_timeout: Duration,
    /// Test/bench-only fault hook: when set, the served disk is wrapped in
    /// a [`FaultyBackend`] executing this plan, so chaos suites and
    /// `load_gateway --fault-plan` can stall, corrupt, or drop real remote
    /// ops. A `drop` fault makes the server kill the connection instead of
    /// answering, as a genuinely aborted connection would. Nothing in
    /// production paths sets this.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// The pool-disk index this server plays in `fault_plan`'s schedule
    /// (a plan's `disk=N` clauses match against it).
    pub fault_disk: usize,
    /// Whether to record server-side spans for trace-wrapped requests
    /// (shipped back via `FetchSpans`). Costs two clock reads and one
    /// ring push per traced request; untraced requests are unaffected
    /// either way.
    pub tracing: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            idle_timeout: Duration::from_secs(120),
            fault_plan: None,
            fault_disk: 0,
            tracing: true,
        }
    }
}

#[derive(Debug, Default)]
struct Traffic {
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

/// One latency histogram per remote op, resolved from the registry once at
/// bind time so the per-request path never takes the registry lock.
struct OpHists {
    ping: Arc<LatencyHistogram>,
    ensure_object: Arc<LatencyHistogram>,
    remove_object: Arc<LatencyHistogram>,
    write_chunk: Arc<LatencyHistogram>,
    read_chunk: Arc<LatencyHistogram>,
    read_range: Arc<LatencyHistogram>,
    verify: Arc<LatencyHistogram>,
    sweep_tmp: Arc<LatencyHistogram>,
    fetch_spans: Arc<LatencyHistogram>,
}

impl OpHists {
    fn new(registry: &Registry) -> Self {
        let h = |op: &str| registry.histogram(&format!("op_{op}_duration_seconds"));
        OpHists {
            ping: h("ping"),
            ensure_object: h("ensure_object"),
            remove_object: h("remove_object"),
            write_chunk: h("write_chunk"),
            read_chunk: h("read_chunk"),
            read_range: h("read_range"),
            verify: h("verify"),
            sweep_tmp: h("sweep_tmp"),
            fetch_spans: h("fetch_spans"),
        }
    }

    fn for_request(&self, request: &Request) -> &LatencyHistogram {
        match request {
            Request::Ping => &self.ping,
            Request::EnsureObject { .. } => &self.ensure_object,
            Request::RemoveObject { .. } => &self.remove_object,
            Request::WriteChunk { .. } => &self.write_chunk,
            Request::ReadChunk { .. } => &self.read_chunk,
            Request::ReadRange { .. } => &self.read_range,
            Request::Verify { .. } => &self.verify,
            Request::SweepTmp { .. } => &self.sweep_tmp,
            Request::FetchSpans => &self.fetch_spans,
            // Wrappers time the op they wrap, not their own bookkeeping.
            Request::Deadline { inner, .. } => self.for_request(inner),
            Request::Trace { inner, .. } => self.for_request(inner),
        }
    }
}

/// Stable span/metric name of the operation a request performs (wrappers
/// resolve to what they wrap).
fn op_name(request: &Request) -> &'static str {
    match request {
        Request::Ping => "ping",
        Request::EnsureObject { .. } => "ensure_object",
        Request::RemoveObject { .. } => "remove_object",
        Request::WriteChunk { .. } => "write_chunk",
        Request::ReadChunk { .. } => "read_chunk",
        Request::ReadRange { .. } => "read_range",
        Request::Verify { .. } => "verify",
        Request::SweepTmp { .. } => "sweep_tmp",
        Request::FetchSpans => "fetch_spans",
        Request::Deadline { inner, .. } => op_name(inner),
        Request::Trace { inner, .. } => op_name(inner),
    }
}

/// The object a request touches, for span tags.
fn request_object(request: &Request) -> Option<&str> {
    match request {
        Request::EnsureObject { object }
        | Request::RemoveObject { object }
        | Request::WriteChunk { object, .. }
        | Request::ReadChunk { object, .. }
        | Request::ReadRange { object, .. }
        | Request::Verify { object, .. } => Some(object),
        Request::Deadline { inner, .. } | Request::Trace { inner, .. } => request_object(inner),
        _ => None,
    }
}

struct Shared {
    /// The served backend: a bare [`LocalDisk`], or the same disk behind a
    /// [`FaultyBackend`] when `ServerConfig::fault_plan` is set.
    backend: Arc<dyn ChunkBackend>,
    root: PathBuf,
    shutdown: AtomicBool,
    traffic: Traffic,
    idle_timeout: Duration,
    registry: Registry,
    ops: OpHists,
    /// Span recorder in export mode: finished spans queue here until the
    /// gateway drains them with a `FetchSpans` request.
    tracer: Tracer,
    journal: EventJournal,
}

/// A running chunk server; dropping it (or calling
/// [`ChunkServer::shutdown`]) stops the workers.
pub struct ChunkServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ChunkServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkServer")
            .field("addr", &self.local_addr)
            .field("root", &self.shared.root)
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl ChunkServer {
    /// Binds a server for the disk rooted at `root` (created if absent) on
    /// `addr` (e.g. `"127.0.0.1:0"` for an OS-assigned port), with the
    /// default thread count.
    ///
    /// # Errors
    ///
    /// Propagates bind and root-creation failures.
    pub fn bind(root: impl Into<PathBuf>, addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::bind_with(root, addr, ServerConfig::default())
    }

    /// [`ChunkServer::bind`] with an explicit [`ServerConfig`].
    ///
    /// # Errors
    ///
    /// Propagates bind and root-creation failures.
    pub fn bind_with(
        root: impl Into<PathBuf>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let registry = Registry::new();
        let ops = OpHists::new(&registry);
        let local: Arc<dyn ChunkBackend> = Arc::new(LocalDisk::new(root.clone()));
        let backend = match &config.fault_plan {
            Some(plan) => Arc::new(FaultyBackend::new(
                local,
                Arc::clone(plan),
                config.fault_disk,
            )) as Arc<dyn ChunkBackend>,
            None => local,
        };
        let tracer = Tracer::new(
            format!("chunkd:{local_addr}"),
            TracerConfig {
                enabled: config.tracing,
                ring_capacity: 1024,
                export_capacity: 4096,
                // No roots finish here; retention happens at the gateway.
                healthy_sample_n: 0,
                ..TracerConfig::default()
            },
        );
        let shared = Arc::new(Shared {
            backend,
            root,
            shutdown: AtomicBool::new(false),
            traffic: Traffic::default(),
            idle_timeout: config.idle_timeout.max(POLL_INTERVAL),
            registry,
            ops,
            tracer,
            journal: EventJournal::new(256),
        });
        let listener = Arc::new(listener);
        let workers = (0..config.threads.max(1))
            .map(|i| {
                let listener = Arc::clone(&listener);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("chunkd-{local_addr}-{i}"))
                    .spawn(move || accept_loop(&listener, &shared))
                    // pbrs-lint: allow(panic-hygiene) -- thread spawn fails only on OS resource exhaustion at startup; aborting is the intended response
                    .expect("spawn chunkd worker")
            })
            .collect();
        Ok(ChunkServer {
            local_addr,
            shared,
            workers,
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The disk root directory this server serves.
    pub fn root(&self) -> &Path {
        &self.shared.root
    }

    /// Server-side traffic totals across all connections so far:
    /// `bytes_received` is what clients sent us, `bytes_sent` what we
    /// shipped back.
    pub fn counters(&self) -> BackendCounters {
        BackendCounters {
            // Relaxed: traffic tallies for accounting; they guard nothing.
            bytes_sent: self.shared.traffic.bytes_out.load(Ordering::Relaxed),
            bytes_received: self.shared.traffic.bytes_in.load(Ordering::Relaxed),
        }
    }

    /// Per-op latency summaries, sorted by op name: one entry per remote op
    /// (`op_read_chunk_duration_seconds`, …) with counts and percentiles in
    /// microseconds. Ops never served have `count == 0`.
    pub fn op_latency(&self) -> Vec<(String, Summary)> {
        self.shared
            .registry
            .snapshot()
            .into_iter()
            .filter_map(|(name, snap)| match snap {
                pbrs_obs::registry::MetricSnapshot::Histogram(h) => Some((name, h.summary())),
                _ => None,
            })
            .collect()
    }

    /// Prometheus text exposition of this server's metrics, with every
    /// family prefixed `pbrs_chunkd_`, plus the shared-name journal
    /// overflow counter (`pbrs_journal_events_dropped_total`).
    pub fn metrics_prometheus(&self) -> String {
        let mut out = self.shared.registry.to_prometheus("pbrs_chunkd_");
        prom::type_line(&mut out, "pbrs_journal_events_dropped_total", "counter");
        prom::sample(
            &mut out,
            "pbrs_journal_events_dropped_total",
            &[("component", "chunkd")],
            self.shared.journal.dropped() as f64,
        );
        out
    }

    /// The server's bounded event journal (bad requests, injected
    /// connection drops).
    pub fn journal(&self) -> &EventJournal {
        &self.shared.journal
    }

    /// Stops accepting, finishes in-flight requests, and joins the workers.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        // SeqCst: once-per-shutdown flag; the strongest order keeps it
        // trivially correct against every worker's polling load.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake every blocked accept with a throwaway connection.
        for _ in &self.workers {
            let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(250));
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ChunkServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        // SeqCst here and below: shutdown-flag polls, once per accept;
        // pairs with the SeqCst store in stop_and_join.
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // SeqCst: catches the wake-up connection from shutdown().
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let _ = serve_connection(stream, shared);
            }
            Err(_) => {
                // SeqCst: same shutdown poll as above.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure (EMFILE, aborted handshake…):
                // don't spin at full speed.
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }
}

/// Serves one connection until the client disconnects, goes idle past the
/// configured timeout, an I/O error occurs, or shutdown begins. The
/// request id of each frame is echoed on its response so a multiplexing
/// client can match them; requests on one connection are still served in
/// order (pipelining overlap lives in the socket buffers).
fn serve_connection(mut stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    loop {
        let (req_id, body) = match read_frame_polling(&mut stream, shared) {
            Ok(Some(frame)) => frame,
            // Clean EOF between frames, shutdown, or idle timeout.
            Ok(None) => return Ok(()),
            Err(e) => return Err(e),
        };
        shared
            .traffic
            .bytes_in
            // Relaxed: traffic tally, sampled only by counters().
            .fetch_add(FRAME_OVERHEAD + body.len() as u64, Ordering::Relaxed);
        let response = match Request::decode(&body) {
            Ok(request) => {
                // The trace envelope is strictly outermost (enforced at
                // decode); peel it first so every path below sees the
                // caller's context.
                let (ctx, request) = match request {
                    Request::Trace { ctx, inner } => (Some(ctx), *inner),
                    other => (None, other),
                };
                match request {
                    // The client's budget was gone before the frame
                    // arrived: refuse rather than burn disk on an answer
                    // nobody waits for. (The client ships its *remaining*
                    // budget at send time, so a zero here means "already
                    // expired"; a positive budget cannot be enforced
                    // mid-op and the work simply runs.)
                    Request::Deadline { budget_ms: 0, .. } => Response::Err {
                        message: "deadline exceeded before execution".into(),
                    },
                    // Ship-back drain: everything recorded since the last
                    // fetch, in one frame.
                    Request::FetchSpans => {
                        let start = Instant::now();
                        let payload = encode_spans(&shared.tracer.drain_export());
                        shared.ops.fetch_spans.record_duration(start.elapsed());
                        Response::Ok { payload }
                    }
                    request => {
                        let request = match request {
                            Request::Deadline { inner, .. } => *inner,
                            other => other,
                        };
                        let hist = shared.ops.for_request(&request);
                        // Journal pushes during the op get tagged with
                        // the caller's trace.
                        let _scope = ScopedCtx::enter(ctx);
                        let span = match (ctx, shared.tracer.is_enabled()) {
                            (Some(ctx), true) => {
                                let mut span = shared.tracer.span(op_name(&request), ctx);
                                if let Some(object) = request_object(&request) {
                                    span.tag("object", object);
                                }
                                Some(span)
                            }
                            _ => None,
                        };
                        let start = Instant::now();
                        match handle(shared.backend.as_ref(), request) {
                            Ok(response) => {
                                hist.record_duration(start.elapsed());
                                if let Some(mut span) = span {
                                    if let Response::Err { message } = &response {
                                        span.tag("fault", message.clone());
                                    }
                                    span.finish(&shared.tracer);
                                }
                                response
                            }
                            // An injected connection drop: die without
                            // answering, exactly as a genuinely aborted
                            // connection would.
                            Err(e) => {
                                shared
                                    .journal
                                    .push(EventKind::Error, format!("connection drop: {e}"));
                                return Err(e);
                            }
                        }
                    }
                }
            }
            Err(e) => {
                shared
                    .journal
                    .push(EventKind::Error, format!("bad request: {e}"));
                Response::Err {
                    message: format!("bad request: {e}"),
                }
            }
        };
        let sent = write_frame(&mut stream, req_id, &response.encode())?;
        // Relaxed: traffic tally, sampled only by counters().
        shared.traffic.bytes_out.fetch_add(sent, Ordering::Relaxed);
    }
}

/// Reads one `(req_id, body)` frame, tolerating read timeouts so the
/// shutdown flag and the idle clock are polled: a slow-but-alive client
/// keeps the connection, but once shutdown begins even a client stalled
/// mid-frame is dropped (otherwise joining the workers could hang
/// forever), and a connection idle *between* frames past
/// `shared.idle_timeout` is closed so an abandoned socket cannot pin a
/// pool worker. Returns `None` on clean EOF at a frame boundary, on
/// shutdown before a frame starts, or on idle timeout.
fn read_frame_polling(
    stream: &mut TcpStream,
    shared: &Shared,
) -> io::Result<Option<(u64, Vec<u8>)>> {
    let idle_since = Instant::now();
    let mut header = [0u8; 12];
    let mut filled = 0usize;
    while filled < header.len() {
        match stream.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None) // clean EOF between frames
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "EOF inside a frame header",
                    ))
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // SeqCst: shutdown poll on the read-timeout path.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return if filled == 0 {
                        Ok(None)
                    } else {
                        // Shutdown must win even over a client stalled
                        // mid-header, or worker joins would hang forever.
                        Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "server shutting down mid-frame",
                        ))
                    };
                }
                // The idle clock only runs between frames: a connection
                // that has sent part of a header is mid-request and gets
                // the ordinary stall treatment, not the idle reaper.
                if filled == 0 && idle_since.elapsed() >= shared.idle_timeout {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = crate::protocol::le_u32(&header[0..4]) as usize;
    let req_id = crate::protocol::le_u64(&header[4..12]);
    if len > crate::protocol::MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut body = vec![0u8; len];
    let mut filled = 0usize;
    while filled < body.len() {
        match stream.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame body",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // SeqCst: shutdown poll on the body-read timeout path.
                if shared.shutdown.load(Ordering::SeqCst) {
                    // As above: a stalled client must not pin the worker
                    // past shutdown.
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "server shutting down mid-frame",
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some((req_id, body)))
}

/// Executes one request against the disk. `Err` means "kill the
/// connection without answering" — only an injected connection-drop fault
/// produces it.
fn handle(disk: &dyn ChunkBackend, request: Request) -> io::Result<Response> {
    match request {
        Request::Ping => Ok(Response::Ok {
            payload: encode_ping(disk.is_available()),
        }),
        Request::EnsureObject { object } => with_object(&object, || {
            disk.ensure_object(&object)?;
            Ok(Response::Ok { payload: vec![] })
        }),
        Request::RemoveObject { object } => with_object(&object, || {
            disk.remove_object(&object)?;
            Ok(Response::Ok { payload: vec![] })
        }),
        Request::WriteChunk {
            object,
            id,
            payload,
        } => with_object(&object, || {
            disk.write_chunk(&object, id, &payload)?;
            Ok(Response::Ok { payload: vec![] })
        }),
        Request::ReadChunk { object, id, len } => with_object(&object, || {
            check_len(len)?;
            let mut out = vec![0u8; len as usize];
            match disk.read_chunk_into(&object, id, &mut out)? {
                Ok(()) => Ok(Response::Ok { payload: out }),
                Err(status) => Ok(status_response(status)),
            }
        }),
        Request::ReadRange {
            object,
            id,
            chunk_len,
            offset,
            len,
        } => with_object(&object, || {
            check_len(len)?;
            if (offset as u64) + (len as u64) > chunk_len as u64 {
                return Ok(Response::Err {
                    message: format!("range {offset}+{len} exceeds chunk length {chunk_len}"),
                });
            }
            let mut out = vec![0u8; len as usize];
            match disk.read_chunk_range(
                &object,
                id,
                chunk_len as usize,
                offset as usize,
                &mut out,
            )? {
                Ok(()) => Ok(Response::Ok { payload: out }),
                Err(status) => Ok(status_response(status)),
            }
        }),
        Request::Verify {
            object,
            id,
            chunk_len,
        } => with_object(&object, || {
            let (status, bytes_read) = disk.verify_chunk(&object, id, chunk_len as usize)?;
            Ok(Response::Ok {
                payload: encode_verify(&status, bytes_read),
            })
        }),
        Request::SweepTmp { min_age } => match disk.sweep_tmp(min_age) {
            Ok(removed) => Ok(Response::Ok {
                payload: encode_sweep(&removed),
            }),
            Err(e) => match connection_drop(&e) {
                Some(drop) => Err(drop),
                None => Ok(Response::Err {
                    message: e.to_string(),
                }),
            },
        },
        // Unwrapped by the caller; a nested one is rejected at decode.
        Request::Deadline { .. } => Ok(Response::Err {
            message: "unexpected deadline wrapper".into(),
        }),
        // Peeled / answered by the caller before dispatch.
        Request::Trace { .. } => Ok(Response::Err {
            message: "unexpected trace wrapper".into(),
        }),
        Request::FetchSpans => Ok(Response::Err {
            message: "fetch_spans handled before dispatch".into(),
        }),
    }
}

/// An injected `drop` fault surfaces from the backend as a
/// `ConnectionAborted` I/O error; the server turns it into a real
/// connection kill rather than an error response.
fn connection_drop(e: &StoreError) -> Option<io::Error> {
    match e {
        StoreError::Io { source, .. } if source.kind() == io::ErrorKind::ConnectionAborted => Some(
            io::Error::new(io::ErrorKind::ConnectionAborted, e.to_string()),
        ),
        _ => None,
    }
}

/// Rejects read lengths a response frame could not carry — the request's
/// length field must never size an allocation unchecked.
fn check_len(len: u32) -> Result<(), StoreError> {
    if len as usize > crate::protocol::MAX_FRAME - 16 {
        return Err(StoreError::InvalidConfig {
            reason: format!("read of {len} bytes exceeds the frame cap"),
        });
    }
    Ok(())
}

/// Validates the object name (the server must never trust a path
/// component off the wire), then runs the op, folding errors into an
/// error response — except an injected connection drop, which becomes a
/// hard `Err` so the caller kills the connection.
fn with_object(
    object: &str,
    op: impl FnOnce() -> Result<Response, StoreError>,
) -> io::Result<Response> {
    if let Err(e) = validate_object_name(object) {
        return Ok(Response::Err {
            message: e.to_string(),
        });
    }
    match op() {
        Ok(response) => Ok(response),
        Err(e) => match connection_drop(&e) {
            Some(drop) => Err(drop),
            None => Ok(Response::Err {
                message: e.to_string(),
            }),
        },
    }
}

fn status_response(status: ChunkStatus) -> Response {
    match status {
        ChunkStatus::Missing => Response::Missing,
        ChunkStatus::Corrupt { reason } => Response::Corrupt { reason },
        ChunkStatus::Healthy => Response::Ok { payload: vec![] },
    }
}
