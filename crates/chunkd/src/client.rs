//! The chunk client: a [`ChunkBackend`] over one *multiplexed* chunkd TCP
//! connection.
//!
//! A [`RemoteDisk`] holds (at most) one lazily-established connection to a
//! chunk server and multiplexes every caller over it: each request is
//! tagged with a fresh id ([`crate::protocol`] frames carry the id on the
//! wire), a background demultiplexer thread reads response frames off the
//! socket and routes each to the caller waiting on that id. Any number of
//! store workers — the degraded-read pipeline, the repair daemon's pool —
//! can therefore have reads in flight on the *same* socket concurrently,
//! instead of the old one-request-at-a-time round trip. Every operation in
//! the protocol is idempotent, so when the transport fails mid-request the
//! client drops the connection and transparently retries once over a fresh
//! one — enough to ride out a server restart or an idle-connection reset
//! without surfacing an error to the store.
//!
//! # Reconnect backoff
//!
//! A dead server must not be hammered: after a failed *connect* the client
//! opens a backoff window — capped exponential with jitter
//! ([`BACKOFF_BASE`] · 2ⁿ up to [`BACKOFF_CAP`], ±50 % jitter) — during
//! which further requests fail fast without touching the network. The
//! read-side operations map that to [`ChunkStatus::Missing`] exactly like
//! any other unreachable-disk failure, so a degraded read routes around
//! the dead machine immediately instead of each worker re-running a
//! connect timeout (the hot-loop this backoff exists to prevent). The
//! first request after the window retries for real and, on success, resets
//! the backoff.
//!
//! # Failure semantics
//!
//! An *unreachable* server is a *lost disk*, not a store-wide error: the
//! read-side operations (`read_chunk_into`, `read_chunk_range`,
//! `verify_chunk`) report [`ChunkStatus::Missing`] when the transport
//! fails after the retry, so degraded reads and repairs route around the
//! dead machine exactly as they route around a deleted directory — which
//! is the failure model the paper measures. Write-side operations
//! (`ensure_object`, `write_chunk`) stay hard errors: there is no safe way
//! to pretend a write landed. [`ChunkBackend::is_available`] reports the
//! disk itself (it is how scrub's `lost_disks` learns of the death), and
//! `sweep_tmp` returns empty for an unreachable disk — nothing can be
//! swept there.
//!
//! The client counts every byte it puts on and takes off the socket
//! ([`RemoteDisk::counters`], also surfaced through
//! [`ChunkBackend::counters`] and summed by
//! `BlockStore::socket_counters`). That is the paper's measurement made
//! real: a degraded read against a remote helper shows exactly the
//! half-chunk (for Piggybacked-RS) crossing the wire, frame headers and
//! all.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

#[cfg(test)]
use pbrs_obs::trace::TraceCtx;
use pbrs_obs::trace::{self, SpanRecord};
use pbrs_store::{BackendCounters, ChunkBackend, ChunkId, ChunkRead, ChunkStatus, StoreError};

use crate::protocol::{
    decode_ping, decode_spans, decode_sweep, decode_verify, read_frame, write_frame, Request,
    Response,
};

/// Default connect / per-request I/O timeout.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(10);

/// First reconnect-backoff window after a failed connect.
pub const BACKOFF_BASE: Duration = Duration::from_millis(50);

/// Upper bound on the reconnect-backoff window.
pub const BACKOFF_CAP: Duration = Duration::from_secs(5);

/// One live multiplexed connection: a writer half shared by callers and a
/// pending-request table the demultiplexer thread completes from the
/// reader half. Dropped (and replaced) wholesale on any transport error.
struct Mux {
    /// The caller-side write half (a `try_clone` of the socket). One frame
    /// is written per lock hold, so concurrent requests interleave at
    /// frame granularity, never mid-frame.
    writer: Mutex<TcpStream>,
    /// The socket itself, kept for [`Mux::kill`].
    stream: TcpStream,
    /// In-flight requests: id → the channel its caller waits on. The
    /// demultiplexer thread removes entries as responses arrive; a `None`
    /// table means the connection died and no new request may register.
    pending: Mutex<Option<HashMap<u64, mpsc::Sender<io::Result<Response>>>>>,
    /// Set once the demultiplexer saw the connection die.
    dead: AtomicBool,
}

impl Mux {
    /// Marks the connection dead and fails every pending caller with a
    /// clone-ish of `error` (the demultiplexer calls this exactly once).
    fn fail_all(&self, error: &io::Error) {
        self.dead.store(true, Ordering::SeqCst);
        // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        let mut pending = self.pending.lock().expect("lock");
        if let Some(table) = pending.take() {
            for (_, tx) in table {
                let _ = tx.send(Err(io::Error::new(error.kind(), error.to_string())));
            }
        }
    }

    /// Forces the demultiplexer thread off its blocking read so it can
    /// exit (used when the disk is dropped or the connection replaced).
    fn kill(&self) {
        self.dead.store(true, Ordering::SeqCst);
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// A remote "disk": the client side of one chunk server, implementing
/// [`ChunkBackend`] so a `BlockStore` can mount it like a directory.
pub struct RemoteDisk {
    addr: String,
    timeout: Duration,
    /// Optional per-op deadline budget: when set, every request ships
    /// wrapped in [`Request::Deadline`] carrying the *remaining* budget,
    /// and an exhausted budget fails locally without touching the network.
    op_budget: Option<Duration>,
    /// Optional operator label — typically the rack this disk belongs to —
    /// surfaced in [`ChunkBackend::describe`] so per-socket byte counters
    /// can be attributed to racks when many disks are mounted.
    label: Option<String>,
    /// When true, requests issued under a scoped trace context
    /// ([`trace::current_ctx`]) ship wrapped in [`Request::Trace`] so the
    /// server's spans join the caller's tree. Off by default: an untraced
    /// client is byte-identical to a legacy one on the wire, which is
    /// what lets it talk to un-upgraded servers.
    tracing: bool,
    conn: Mutex<Option<Arc<Mux>>>,
    next_id: AtomicU64,
    backoff: Mutex<BackoffState>,
    connect_attempts: AtomicU64,
    connect_successes: AtomicU64,
    backoff_rejections: AtomicU64,
    bytes_sent: Arc<AtomicU64>,
    bytes_received: Arc<AtomicU64>,
}

/// Counters of the reconnect path, for dashboards and flap diagnosis:
/// how often this client actually dialed, how often a dial succeeded, and
/// how many requests the backoff circuit rejected without dialing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReconnectStats {
    /// Real dials attempted (backed-off fast-fails not included).
    pub attempts: u64,
    /// Dials that produced a live connection.
    pub successes: u64,
    /// Requests failed fast inside a backoff window, saving a dial.
    pub backoff_rejections: u64,
}

/// Reconnect circuit state: consecutive connect failures and the deadline
/// before which no new connect attempt is made.
#[derive(Debug, Default)]
struct BackoffState {
    failures: u32,
    /// `None` = closed circuit (connects allowed right now).
    until: Option<Instant>,
    /// Cheap xorshift state for the jitter; seeded per disk.
    jitter_seed: u64,
}

impl BackoffState {
    /// The capped exponential window for the current failure count, with
    /// ±50 % deterministic-per-disk jitter so a fleet of clients whose
    /// server died together does not reconnect in lockstep.
    fn window(&mut self) -> Duration {
        let exp = self.failures.saturating_sub(1).min(16);
        let base = BACKOFF_BASE
            .saturating_mul(1u32 << exp.min(7))
            .min(BACKOFF_CAP);
        // xorshift64* — statistical quality is irrelevant, decorrelation
        // between disks is all the jitter needs.
        let mut x = self.jitter_seed.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter_seed = x;
        let jitter = (x % 1000) as f64 / 1000.0; // [0, 1)
        let scaled = base.as_secs_f64() * (0.5 + jitter); // [0.5, 1.5) × base
        Duration::from_secs_f64(scaled)
    }
}

impl std::fmt::Debug for RemoteDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteDisk")
            .field("addr", &self.addr)
            .field("label", &self.label)
            .field("counters", &self.counters())
            .finish()
    }
}

impl RemoteDisk {
    /// A client for the chunk server at `addr` (`host:port`). No
    /// connection is made until the first request, and a broken connection
    /// is re-established on demand (behind the reconnect backoff).
    pub fn new(addr: impl Into<String>) -> Self {
        Self::with_timeout(addr, DEFAULT_TIMEOUT)
    }

    /// [`RemoteDisk::new`] with an explicit connect/request timeout.
    pub fn with_timeout(addr: impl Into<String>, timeout: Duration) -> Self {
        let addr = addr.into();
        // Seed the jitter from the address so two disks of one dead server
        // group still spread, deterministically per process.
        let seed = addr
            .bytes()
            .fold(0x9E37_79B9_7F4A_7C15u64, |acc, b| {
                (acc ^ u64::from(b)).wrapping_mul(0x100_0000_01B3)
            })
            .max(1);
        RemoteDisk {
            addr,
            timeout,
            op_budget: None,
            label: None,
            tracing: false,
            conn: Mutex::new(None),
            next_id: AtomicU64::new(1),
            backoff: Mutex::new(BackoffState {
                jitter_seed: seed,
                ..BackoffState::default()
            }),
            connect_attempts: AtomicU64::new(0),
            connect_successes: AtomicU64::new(0),
            backoff_rejections: AtomicU64::new(0),
            bytes_sent: Arc::new(AtomicU64::new(0)),
            bytes_received: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Ships every request under a deadline budget: the wire frame carries
    /// the budget *remaining* when the frame is sent (so a retry after a
    /// slow first attempt ships a smaller number), the response wait is
    /// clamped to it, and once it is exhausted the request fails locally —
    /// no dial, no frame. The server refuses wrapped requests whose budget
    /// is already spent instead of doing unwanted work.
    #[must_use]
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.op_budget = Some(budget);
        self
    }

    /// Enables trace propagation: requests issued while a trace context
    /// is scoped on the calling thread ship wrapped in the trace
    /// envelope (outermost, around any deadline wrapper), and
    /// [`ChunkBackend::drain_spans`] actually fetches the server's
    /// recorded spans. Only enable against servers that understand the
    /// envelope — a traced request to a legacy server is refused as an
    /// unknown opcode.
    #[must_use]
    pub fn traced(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Reconnect-path counters since creation.
    pub fn reconnect_stats(&self) -> ReconnectStats {
        ReconnectStats {
            // Relaxed: independent tallies for reporting; cross-counter
            // skew from in-flight dials is acceptable.
            attempts: self.connect_attempts.load(Ordering::Relaxed),
            successes: self.connect_successes.load(Ordering::Relaxed),
            // Relaxed: same contract as the loads above.
            backoff_rejections: self.backoff_rejections.load(Ordering::Relaxed),
        }
    }

    /// Attaches an operator label (e.g. the disk's rack name) that shows up
    /// in [`ChunkBackend::describe`] and error messages, so socket counters
    /// read per disk can be attributed to the right rack.
    #[must_use]
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The attached label, if any.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Socket byte counters since creation (frame headers included).
    pub fn counters(&self) -> BackendCounters {
        BackendCounters {
            // Relaxed: traffic tallies for accounting; they guard nothing.
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
        }
    }

    /// Dials the server, honouring the backoff circuit: inside a backoff
    /// window the call fails immediately (kind `WouldBlock`) without
    /// touching the network; a failed dial widens the window, a successful
    /// one resets it.
    fn connect(&self) -> io::Result<TcpStream> {
        {
            // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
            let backoff = self.backoff.lock().expect("lock");
            if let Some(until) = backoff.until {
                if Instant::now() < until {
                    // Relaxed: stats tally; the window itself is under
                    // the backoff mutex.
                    self.backoff_rejections.fetch_add(1, Ordering::Relaxed);
                    return Err(io::Error::new(
                        io::ErrorKind::WouldBlock,
                        format!(
                            "reconnect to {} backed off for {:?} more",
                            self.addr,
                            until.saturating_duration_since(Instant::now())
                        ),
                    ));
                }
            }
        }
        // Relaxed: stats tally, sampled only by reconnect_stats().
        self.connect_attempts.fetch_add(1, Ordering::Relaxed);
        let result = self.dial();
        // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        let mut backoff = self.backoff.lock().expect("lock");
        match &result {
            Ok(_) => {
                // Relaxed: stats tally; backoff state is under the mutex.
                self.connect_successes.fetch_add(1, Ordering::Relaxed);
                backoff.failures = 0;
                backoff.until = None;
            }
            Err(_) => {
                backoff.failures = backoff.failures.saturating_add(1);
                let window = backoff.window();
                backoff.until = Some(Instant::now() + window);
            }
        }
        result
    }

    /// The raw dial (no backoff bookkeeping).
    fn dial(&self) -> io::Result<TcpStream> {
        let mut last = io::Error::new(io::ErrorKind::AddrNotAvailable, "no address resolved");
        let addrs: Vec<SocketAddr> = self.addr.to_socket_addrs()?.collect();
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_write_timeout(Some(self.timeout))?;
                    return Ok(stream);
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Returns the live multiplexed connection, establishing one (and
    /// spawning its demultiplexer thread) if needed.
    fn mux(&self) -> io::Result<Arc<Mux>> {
        // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        let mut conn = self.conn.lock().expect("lock");
        if let Some(mux) = conn.as_ref() {
            // SeqCst: once-per-connection death flag set by the demux
            // thread; strongest order, cost is a dial-path non-issue.
            if !mux.dead.load(Ordering::SeqCst) {
                return Ok(Arc::clone(mux));
            }
            mux.kill();
            *conn = None;
        }
        let stream = self.connect()?;
        let writer = stream.try_clone()?;
        let reader = stream.try_clone()?;
        let mux = Arc::new(Mux {
            writer: Mutex::new(writer),
            stream,
            pending: Mutex::new(Some(HashMap::new())),
            dead: AtomicBool::new(false),
        });
        let thread_mux = Arc::clone(&mux);
        let bytes_received = Arc::clone(&self.bytes_received);
        std::thread::Builder::new()
            .name(format!("chunkd-demux-{}", self.addr))
            .spawn(move || demux_loop(reader, &thread_mux, &bytes_received))
            .map_err(|e| io::Error::other(format!("spawn demux thread: {e}")))?;
        *conn = Some(Arc::clone(&mux));
        Ok(mux)
    }

    /// One request/response cycle over the multiplexed connection,
    /// reconnecting and retrying once on a transport error (every protocol
    /// op is idempotent, so a blind retry is safe). Many callers may be in
    /// this function concurrently; their requests share one socket.
    fn request(&self, request: &Request) -> io::Result<Response> {
        let start = Instant::now();
        // The active trace, if this client propagates traces at all. An
        // untraced client (or one called outside any trace scope) never
        // touches the envelope, staying byte-compatible with legacy
        // servers.
        let ctx = if self.tracing {
            trace::current_ctx()
        } else {
            None
        };
        let trace_wrap = |req: Request| match ctx {
            Some(ctx) => Request::Trace {
                ctx,
                inner: Box::new(req),
            },
            None => req,
        };
        let mut last = None;
        for _ in 0..2 {
            // Under an op budget each lap re-encodes with the budget
            // *remaining now*, so the server sees the client's true
            // patience and a spent budget never reaches the wire.
            let (body, wait) = match self.op_budget {
                Some(budget) => {
                    let remaining = budget.saturating_sub(start.elapsed());
                    if remaining.is_zero() {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!(
                                "op budget {budget:?} exhausted before reaching {}",
                                self.addr
                            ),
                        ));
                    }
                    let wrapped = Request::Deadline {
                        // max(1): on the wire, zero means "already expired".
                        budget_ms: u32::try_from(remaining.as_millis())
                            .unwrap_or(u32::MAX)
                            .max(1),
                        inner: Box::new(request.clone()),
                    };
                    (trace_wrap(wrapped).encode(), self.timeout.min(remaining))
                }
                None => match ctx {
                    Some(_) => (trace_wrap(request.clone()).encode(), self.timeout),
                    None => (request.encode(), self.timeout),
                },
            };
            let mux = match self.mux() {
                Ok(mux) => mux,
                Err(e) => {
                    // Inside the backoff window there is no point retrying
                    // the loop either — fail the request now.
                    if e.kind() == io::ErrorKind::WouldBlock {
                        return Err(e);
                    }
                    last = Some(e);
                    continue;
                }
            };
            match self.request_on(&mux, &body, wait) {
                Ok(response) => return Ok(response),
                Err(e) => {
                    // The connection is in an unknown state: fail every
                    // other caller parked on it and dial fresh next lap.
                    mux.fail_all(&e);
                    mux.kill();
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("request failed")))
    }

    /// Sends one tagged frame on `mux` and waits (bounded by `wait`: the
    /// request timeout, clamped to any remaining op budget) for the
    /// response frame carrying the same id.
    fn request_on(&self, mux: &Mux, body: &[u8], wait: Duration) -> io::Result<Response> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        {
            // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
            let mut pending = mux.pending.lock().expect("lock");
            match pending.as_mut() {
                Some(table) => {
                    table.insert(id, tx);
                }
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "connection died before the request was registered",
                    ))
                }
            }
        }
        let sent = {
            // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
            let mut writer = mux.writer.lock().expect("lock");
            write_frame(&mut *writer, id, body)
        };
        match sent {
            Ok(sent) => {
                // Relaxed: traffic tally, sampled only by counters().
                self.bytes_sent.fetch_add(sent, Ordering::Relaxed);
            }
            Err(e) => {
                // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
                if let Some(table) = mux.pending.lock().expect("lock").as_mut() {
                    table.remove(&id);
                }
                return Err(e);
            }
        }
        match rx.recv_timeout(wait) {
            Ok(result) => result,
            Err(_) => {
                // Timed out: deregister so a late response is dropped by
                // the demultiplexer (ids make that safe), and report the
                // transport as broken so the caller's retry redials.
                // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
                if let Some(table) = mux.pending.lock().expect("lock").as_mut() {
                    table.remove(&id);
                }
                Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("no response from {} within {wait:?}", self.addr),
                ))
            }
        }
    }

    /// A path-shaped label for error messages about this remote.
    fn remote_path(&self, object: &str) -> PathBuf {
        PathBuf::from(format!("chunkd://{}/{}", self.addr, object))
    }

    fn io_error(&self, object: &str, e: io::Error) -> StoreError {
        StoreError::io(self.remote_path(object), e)
    }

    /// Folds a response into `Ok(op payload)`, treating `Missing`/
    /// `Corrupt`/`Err` as hard errors (for ops where they are unexpected).
    fn expect_ok(&self, object: &str, response: Response) -> Result<Vec<u8>, StoreError> {
        match response {
            Response::Ok { payload } => Ok(payload),
            Response::Missing => Err(self.io_error(
                object,
                io::Error::new(io::ErrorKind::NotFound, "server reported missing"),
            )),
            Response::Corrupt { reason } | Response::Err { message: reason } => {
                Err(self.io_error(object, io::Error::other(reason)))
            }
        }
    }
}

impl Drop for RemoteDisk {
    fn drop(&mut self) {
        // Shut the socket so the demultiplexer thread unblocks and exits.
        // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
        if let Some(mux) = self.conn.lock().expect("lock").take() {
            mux.kill();
        }
    }
}

/// The demultiplexer: reads response frames off the socket until it dies,
/// routing each to the caller registered under its id. Responses for ids
/// nobody waits on any more (timed-out callers) are dropped — the id
/// tagging is exactly what makes that safe.
fn demux_loop(mut reader: TcpStream, mux: &Mux, bytes_received: &AtomicU64) {
    loop {
        match read_frame(&mut reader) {
            Ok((id, body, received)) => {
                // Relaxed: traffic tally, sampled only by counters().
                bytes_received.fetch_add(received, Ordering::Relaxed);
                let tx = mux
                    .pending
                    .lock()
                    // pbrs-lint: allow(panic-hygiene) -- lock poisoning is fatal by design
                    .expect("lock")
                    .as_mut()
                    .and_then(|table| table.remove(&id));
                if let Some(tx) = tx {
                    let _ = tx.send(Response::decode(&body));
                }
            }
            Err(e) => {
                mux.fail_all(&e);
                return;
            }
        }
    }
}

fn as_u32(what: &str, value: usize) -> Result<u32, StoreError> {
    u32::try_from(value).map_err(|_| StoreError::InvalidConfig {
        reason: format!("{what} of {value} bytes exceeds the wire format's u32"),
    })
}

impl ChunkBackend for RemoteDisk {
    fn describe(&self) -> String {
        match &self.label {
            Some(label) => format!("chunkd://{} [{label}]", self.addr),
            None => format!("chunkd://{}", self.addr),
        }
    }

    fn is_available(&self) -> bool {
        match self.request(&Request::Ping) {
            Ok(Response::Ok { payload }) => decode_ping(&payload).unwrap_or(false),
            _ => false,
        }
    }

    fn ensure_object(&self, object: &str) -> Result<(), StoreError> {
        let response = self
            .request(&Request::EnsureObject {
                object: object.to_string(),
            })
            .map_err(|e| self.io_error(object, e))?;
        self.expect_ok(object, response).map(drop)
    }

    fn remove_object(&self, object: &str) -> Result<(), StoreError> {
        let response = self
            .request(&Request::RemoveObject {
                object: object.to_string(),
            })
            .map_err(|e| self.io_error(object, e))?;
        self.expect_ok(object, response).map(drop)
    }

    fn write_chunk(&self, object: &str, id: ChunkId, payload: &[u8]) -> Result<(), StoreError> {
        as_u32("chunk payload", payload.len())?;
        let response = self
            .request(&Request::WriteChunk {
                object: object.to_string(),
                id,
                payload: payload.to_vec(),
            })
            .map_err(|e| self.io_error(object, e))?;
        self.expect_ok(object, response).map(drop)
    }

    fn read_chunk_into(&self, object: &str, id: ChunkId, out: &mut [u8]) -> ChunkRead<()> {
        let response = match self.request(&Request::ReadChunk {
            object: object.to_string(),
            id,
            len: as_u32("chunk read", out.len())?,
        }) {
            Ok(response) => response,
            Err(_) => return Ok(Err(ChunkStatus::Missing)), // disk unreachable = lost
        };
        if let Some(status) = response.as_chunk_status() {
            return Ok(Err(status));
        }
        let payload = self.expect_ok(object, response)?;
        if payload.len() != out.len() {
            return Ok(Err(ChunkStatus::Corrupt {
                reason: format!(
                    "server returned {} bytes for a {}-byte chunk",
                    payload.len(),
                    out.len()
                ),
            }));
        }
        out.copy_from_slice(&payload);
        Ok(Ok(()))
    }

    fn read_chunk_range(
        &self,
        object: &str,
        id: ChunkId,
        chunk_len: usize,
        offset: usize,
        out: &mut [u8],
    ) -> ChunkRead<()> {
        let response = match self.request(&Request::ReadRange {
            object: object.to_string(),
            id,
            chunk_len: as_u32("chunk length", chunk_len)?,
            offset: as_u32("range offset", offset)?,
            len: as_u32("range read", out.len())?,
        }) {
            Ok(response) => response,
            Err(_) => return Ok(Err(ChunkStatus::Missing)), // disk unreachable = lost
        };
        if let Some(status) = response.as_chunk_status() {
            return Ok(Err(status));
        }
        let payload = self.expect_ok(object, response)?;
        if payload.len() != out.len() {
            return Ok(Err(ChunkStatus::Corrupt {
                reason: format!(
                    "server returned {} bytes for a {}-byte range",
                    payload.len(),
                    out.len()
                ),
            }));
        }
        out.copy_from_slice(&payload);
        Ok(Ok(()))
    }

    fn verify_chunk(
        &self,
        object: &str,
        id: ChunkId,
        chunk_len: usize,
    ) -> Result<(ChunkStatus, u64), StoreError> {
        let response = match self.request(&Request::Verify {
            object: object.to_string(),
            id,
            chunk_len: as_u32("chunk length", chunk_len)?,
        }) {
            Ok(response) => response,
            Err(_) => return Ok((ChunkStatus::Missing, 0)), // disk unreachable = lost
        };
        let payload = self.expect_ok(object, response)?;
        decode_verify(&payload).map_err(|e| self.io_error(object, e))
    }

    fn sweep_tmp(&self, min_age: Duration) -> Result<Vec<String>, StoreError> {
        let response = match self.request(&Request::SweepTmp { min_age }) {
            Ok(response) => response,
            Err(_) => return Ok(Vec::new()), // nothing sweepable on a lost disk
        };
        let payload = self.expect_ok("<sweep>", response)?;
        decode_sweep(&payload).map_err(|e| self.io_error("<sweep>", e))
    }

    fn counters(&self) -> BackendCounters {
        RemoteDisk::counters(self)
    }

    fn drain_spans(&self) -> Vec<SpanRecord> {
        if !self.tracing {
            return Vec::new();
        }
        match self.request(&Request::FetchSpans) {
            Ok(Response::Ok { payload }) => decode_spans(&payload).unwrap_or_default(),
            // A lost disk has no spans to ship; never fail a trace fetch.
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol;
    use std::io::Write;
    use std::net::TcpListener;

    /// A server that closes the connection after every response, forcing
    /// the client through its reconnect path on each request.
    fn one_shot_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            // Serve exactly three connections, one request each.
            for _ in 0..3 {
                let (mut stream, _) = listener.accept().unwrap();
                let (id, body, _) = protocol::read_frame(&mut stream).unwrap();
                let request = Request::decode(&body).unwrap();
                assert_eq!(request, Request::Ping);
                let response = Response::Ok {
                    payload: protocol::encode_ping(true),
                };
                protocol::write_frame(&mut stream, id, &response.encode()).unwrap();
                stream.flush().unwrap();
                // Dropping the stream closes the connection.
            }
        });
        (addr, handle)
    }

    #[test]
    fn client_reconnects_after_the_server_drops_the_connection() {
        let (addr, server) = one_shot_server();
        let disk = RemoteDisk::with_timeout(addr.to_string(), Duration::from_secs(5));
        // Three pings over three connections: the second and third only
        // succeed if the client notices the dropped connection and redials.
        // (The reconnect backoff only arms on failed *connects*, so a
        // server that accepts each dial never trips it.)
        assert!(disk.is_available());
        assert!(disk.is_available());
        assert!(disk.is_available());
        server.join().unwrap();
        let counters = disk.counters();
        assert!(counters.bytes_sent > 0 && counters.bytes_received > 0);
        // Three pings, three connections: each one dialed exactly once.
        let stats = disk.reconnect_stats();
        assert_eq!(
            stats,
            ReconnectStats {
                attempts: 3,
                successes: 3,
                backoff_rejections: 0
            }
        );
    }

    #[test]
    fn unreachable_server_is_a_hard_error_not_a_hang() {
        // A port that nothing listens on: bind-then-drop reserves one.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let disk = RemoteDisk::with_timeout(addr.to_string(), Duration::from_millis(200));
        assert!(!disk.is_available());
        let err = disk.ensure_object("obj").unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
    }

    #[test]
    fn dead_server_trips_the_backoff_circuit() {
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let disk = RemoteDisk::with_timeout(addr.to_string(), Duration::from_millis(200));
        // First probe dials (and fails) for real, arming the window.
        let start = Instant::now();
        assert!(!disk.is_available());
        // Probes inside the window must fail fast — no fresh dial, no
        // 200 ms connect timeout each. 50 probes against a hot-looping
        // client would take ≥ 10 s; the circuit makes them ~instant.
        let t0 = Instant::now();
        for _ in 0..50 {
            assert!(!disk.is_available());
        }
        assert!(
            t0.elapsed() < Duration::from_millis(250),
            "backed-off probes must not re-dial: {:?} elapsed",
            t0.elapsed()
        );
        // And the error inside the window says so.
        let err = disk.connect().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock, "{err}");
        let _ = start;
        // The circuit's work is visible in the counters: almost every probe
        // was rejected without a dial, and no dial ever succeeded.
        let stats = disk.reconnect_stats();
        assert_eq!(stats.successes, 0);
        assert!(stats.attempts <= 8, "probes must not re-dial: {stats:?}");
        assert!(stats.backoff_rejections >= 40, "{stats:?}");
    }

    #[test]
    fn backoff_windows_grow_to_the_cap_deterministically_without_a_clock() {
        // `BackoffState::window` is pure in (failures, jitter_seed) — no
        // wall clock — so the whole schedule is testable instantly.
        let mut state = BackoffState {
            jitter_seed: 7,
            ..BackoffState::default()
        };
        let mut nominal_prev = Duration::ZERO;
        for failures in 1..=20u32 {
            state.failures = failures;
            let window = state.window();
            let exp = failures.saturating_sub(1).min(7);
            let nominal = BACKOFF_BASE.saturating_mul(1 << exp).min(BACKOFF_CAP);
            assert!(
                window >= nominal.mul_f64(0.5) && window < nominal.mul_f64(1.5),
                "failure {failures}: window {window:?} outside jitter band of {nominal:?}"
            );
            assert!(nominal >= nominal_prev, "windows must never shrink");
            nominal_prev = nominal;
        }
        // Deep failure counts saturate: jitter aside, never past the cap.
        state.failures = u32::MAX;
        assert!(state.window() < BACKOFF_CAP.mul_f64(1.5));
        // Same seed ⇒ the same jittered schedule, replayable in tests.
        let sequence = |seed: u64| -> Vec<Duration> {
            let mut s = BackoffState {
                jitter_seed: seed,
                ..BackoffState::default()
            };
            (1..=10u32)
                .map(|f| {
                    s.failures = f;
                    s.window()
                })
                .collect()
        };
        assert_eq!(sequence(42), sequence(42));
        assert_ne!(sequence(42), sequence(43));
    }

    #[test]
    fn op_budget_wraps_requests_and_fails_fast_when_exhausted() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let (id, body, _) = protocol::read_frame(&mut stream).unwrap();
            // The frame must arrive wrapped, carrying a sane remaining
            // budget (positive, no larger than what the client was given).
            let budget = match Request::decode(&body).unwrap() {
                Request::Deadline { budget_ms, inner } => {
                    assert_eq!(*inner, Request::Ping);
                    budget_ms
                }
                other => panic!("expected a deadline wrapper, got {other:?}"),
            };
            assert!((1..=2000).contains(&budget), "budget {budget}ms");
            let response = Response::Ok {
                payload: protocol::encode_ping(true),
            };
            protocol::write_frame(&mut stream, id, &response.encode()).unwrap();
        });
        let disk = RemoteDisk::with_timeout(addr.to_string(), Duration::from_secs(5))
            .deadline(Duration::from_secs(2));
        assert!(disk.is_available());
        server.join().unwrap();

        // An exhausted budget fails before the network is touched at all.
        let dead = RemoteDisk::new("203.0.113.1:9").deadline(Duration::ZERO);
        let err = dead.ensure_object("obj").unwrap_err();
        assert!(err.to_string().contains("budget"), "{err}");
        assert_eq!(
            dead.reconnect_stats().attempts,
            0,
            "no dial on a spent budget"
        );
    }

    #[test]
    fn untraced_requests_are_byte_identical_to_legacy_even_in_a_trace_scope() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let (id, body, _) = protocol::read_frame(&mut stream).unwrap();
            // The exact legacy encoding: a bare Ping opcode, no envelope.
            assert_eq!(body, Request::Ping.encode());
            let response = Response::Ok {
                payload: protocol::encode_ping(true),
            };
            protocol::write_frame(&mut stream, id, &response.encode()).unwrap();
        });
        let disk = RemoteDisk::with_timeout(addr.to_string(), Duration::from_secs(5));
        let ctx = TraceCtx::from_raw(11, 22).unwrap();
        let _scope = trace::ScopedCtx::enter(Some(ctx));
        assert!(disk.is_available());
        server.join().unwrap();
    }

    #[test]
    fn traced_requests_wrap_the_scoped_context_outermost() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let ctx = TraceCtx::from_raw(0x1111, 0x2222).unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            for _ in 0..2 {
                let (id, body, _) = protocol::read_frame(&mut stream).unwrap();
                match Request::decode(&body).unwrap() {
                    // Trace outermost, deadline inside, op innermost.
                    Request::Trace { ctx: got, inner } => {
                        assert_eq!(got, ctx);
                        match *inner {
                            Request::Deadline { inner, .. } => assert_eq!(*inner, Request::Ping),
                            other => panic!("expected deadline inside trace, got {other:?}"),
                        }
                    }
                    // Outside a trace scope the wire is legacy-shaped.
                    Request::Deadline { inner, .. } => assert_eq!(*inner, Request::Ping),
                    other => panic!("unexpected request {other:?}"),
                }
                let response = Response::Ok {
                    payload: protocol::encode_ping(true),
                };
                protocol::write_frame(&mut stream, id, &response.encode()).unwrap();
            }
        });
        let disk = RemoteDisk::with_timeout(addr.to_string(), Duration::from_secs(5))
            .deadline(Duration::from_secs(2))
            .traced();
        {
            let _scope = trace::ScopedCtx::enter(Some(ctx));
            assert!(disk.is_available());
        }
        assert!(disk.is_available());
        server.join().unwrap();
    }

    #[test]
    fn backoff_recovers_when_the_server_comes_back() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener); // dead for now
        let disk = RemoteDisk::with_timeout(addr.to_string(), Duration::from_secs(2));
        assert!(!disk.is_available()); // arms backoff (~50ms ± jitter)

        // Resurrect the server on the same port and serve pings forever.
        let listener = TcpListener::bind(addr).unwrap();
        std::thread::spawn(move || {
            while let Ok((mut stream, _)) = listener.accept() {
                while let Ok((id, body, _)) = protocol::read_frame(&mut stream) {
                    let request = Request::decode(&body).unwrap();
                    assert_eq!(request, Request::Ping);
                    let response = Response::Ok {
                        payload: protocol::encode_ping(true),
                    };
                    if protocol::write_frame(&mut stream, id, &response.encode()).is_err() {
                        break;
                    }
                }
            }
        });
        // Wait out the (first, ≤ 75 ms) window, then the client recovers.
        std::thread::sleep(Duration::from_millis(120));
        assert!(disk.is_available(), "client must recover after backoff");
        assert!(disk.is_available());
    }

    #[test]
    fn many_requests_multiplex_over_one_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // Exactly ONE connection is accepted; every request of the
            // test must arrive here.
            let (mut stream, _) = listener.accept().unwrap();
            let mut served = 0u32;
            while let Ok((id, body, _)) = protocol::read_frame(&mut stream) {
                let request = Request::decode(&body).unwrap();
                assert_eq!(request, Request::Ping);
                let response = Response::Ok {
                    payload: protocol::encode_ping(true),
                };
                protocol::write_frame(&mut stream, id, &response.encode()).unwrap();
                served += 1;
                if served == 32 {
                    break;
                }
            }
            served
        });
        let disk = Arc::new(RemoteDisk::with_timeout(
            addr.to_string(),
            Duration::from_secs(5),
        ));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let disk = Arc::clone(&disk);
            handles.push(std::thread::spawn(move || {
                for _ in 0..4 {
                    assert!(disk.is_available());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.join().unwrap(), 32, "all 32 pings on one socket");
    }
}
