//! The chunk client: a [`ChunkBackend`] over one chunkd TCP connection.
//!
//! A [`RemoteDisk`] holds (at most) one lazily-established connection to a
//! chunk server and speaks the [`crate::protocol`] request/response cycle
//! over it. Every operation in the protocol is idempotent, so when a send
//! or receive fails the client drops the connection and transparently
//! retries once over a fresh one — enough to ride out a server restart or
//! an idle-connection reset without surfacing an error to the store.
//!
//! # Failure semantics
//!
//! An *unreachable* server is a *lost disk*, not a store-wide error: the
//! read-side operations (`read_chunk_into`, `read_chunk_range`,
//! `verify_chunk`) report [`ChunkStatus::Missing`] when the transport
//! fails after the retry, so degraded reads and repairs route around the
//! dead machine exactly as they route around a deleted directory — which
//! is the failure model the paper measures. Write-side operations
//! (`ensure_object`, `write_chunk`) stay hard errors: there is no safe way
//! to pretend a write landed. [`ChunkBackend::is_available`] reports the
//! disk itself (it is how scrub's `lost_disks` learns of the death), and
//! `sweep_tmp` returns empty for an unreachable disk — nothing can be
//! swept there.
//!
//! The client counts every byte it puts on and takes off the socket
//! ([`RemoteDisk::counters`], also surfaced through
//! [`ChunkBackend::counters`] and summed by
//! `BlockStore::socket_counters`). That is the paper's measurement made
//! real: a degraded read against a remote helper shows exactly the
//! half-chunk (for Piggybacked-RS) crossing the wire, frame headers and
//! all.

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use pbrs_store::{BackendCounters, ChunkBackend, ChunkId, ChunkRead, ChunkStatus, StoreError};

use crate::protocol::{
    decode_ping, decode_sweep, decode_verify, read_frame, write_frame, Request, Response,
};

/// Default connect / per-request I/O timeout.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(10);

/// A remote "disk": the client side of one chunk server, implementing
/// [`ChunkBackend`] so a `BlockStore` can mount it like a directory.
pub struct RemoteDisk {
    addr: String,
    timeout: Duration,
    /// Optional operator label — typically the rack this disk belongs to —
    /// surfaced in [`ChunkBackend::describe`] so per-socket byte counters
    /// can be attributed to racks when many disks are mounted.
    label: Option<String>,
    conn: Mutex<Option<TcpStream>>,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
}

impl std::fmt::Debug for RemoteDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteDisk")
            .field("addr", &self.addr)
            .field("label", &self.label)
            .field("counters", &self.counters())
            .finish()
    }
}

impl RemoteDisk {
    /// A client for the chunk server at `addr` (`host:port`). No
    /// connection is made until the first request, and a broken connection
    /// is re-established on demand.
    pub fn new(addr: impl Into<String>) -> Self {
        Self::with_timeout(addr, DEFAULT_TIMEOUT)
    }

    /// [`RemoteDisk::new`] with an explicit connect/request timeout.
    pub fn with_timeout(addr: impl Into<String>, timeout: Duration) -> Self {
        RemoteDisk {
            addr: addr.into(),
            timeout,
            label: None,
            conn: Mutex::new(None),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
        }
    }

    /// Attaches an operator label (e.g. the disk's rack name) that shows up
    /// in [`ChunkBackend::describe`] and error messages, so socket counters
    /// read per disk can be attributed to the right rack.
    #[must_use]
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The attached label, if any.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Socket byte counters since creation (frame headers included).
    pub fn counters(&self) -> BackendCounters {
        BackendCounters {
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
        }
    }

    fn connect(&self) -> io::Result<TcpStream> {
        let mut last = io::Error::new(io::ErrorKind::AddrNotAvailable, "no address resolved");
        let addrs: Vec<SocketAddr> = self.addr.to_socket_addrs()?.collect();
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(self.timeout))?;
                    stream.set_write_timeout(Some(self.timeout))?;
                    return Ok(stream);
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// One request/response cycle, reconnecting and retrying once on a
    /// transport error (every protocol op is idempotent, so a blind retry
    /// is safe).
    fn request(&self, request: &Request) -> io::Result<Response> {
        let body = request.encode();
        let mut conn = self.conn.lock().expect("lock");
        for attempt in 0..2 {
            if conn.is_none() {
                *conn = Some(self.connect()?);
            }
            let stream = conn.as_mut().expect("just connected");
            let result = write_frame(stream, &body).and_then(|sent| {
                self.bytes_sent.fetch_add(sent, Ordering::Relaxed);
                read_frame(stream)
            });
            match result {
                Ok((response, received)) => {
                    self.bytes_received.fetch_add(received, Ordering::Relaxed);
                    return Response::decode(&response);
                }
                Err(e) => {
                    *conn = None; // the connection is in an unknown state
                    if attempt == 1 {
                        return Err(e);
                    }
                }
            }
        }
        unreachable!("loop returns on success or second failure")
    }

    /// A path-shaped label for error messages about this remote.
    fn remote_path(&self, object: &str) -> PathBuf {
        PathBuf::from(format!("chunkd://{}/{}", self.addr, object))
    }

    fn io_error(&self, object: &str, e: io::Error) -> StoreError {
        StoreError::io(self.remote_path(object), e)
    }

    /// Folds a response into `Ok(op payload)`, treating `Missing`/
    /// `Corrupt`/`Err` as hard errors (for ops where they are unexpected).
    fn expect_ok(&self, object: &str, response: Response) -> Result<Vec<u8>, StoreError> {
        match response {
            Response::Ok { payload } => Ok(payload),
            Response::Missing => Err(self.io_error(
                object,
                io::Error::new(io::ErrorKind::NotFound, "server reported missing"),
            )),
            Response::Corrupt { reason } | Response::Err { message: reason } => {
                Err(self.io_error(object, io::Error::other(reason)))
            }
        }
    }
}

fn as_u32(what: &str, value: usize) -> Result<u32, StoreError> {
    u32::try_from(value).map_err(|_| StoreError::InvalidConfig {
        reason: format!("{what} of {value} bytes exceeds the wire format's u32"),
    })
}

impl ChunkBackend for RemoteDisk {
    fn describe(&self) -> String {
        match &self.label {
            Some(label) => format!("chunkd://{} [{label}]", self.addr),
            None => format!("chunkd://{}", self.addr),
        }
    }

    fn is_available(&self) -> bool {
        match self.request(&Request::Ping) {
            Ok(Response::Ok { payload }) => decode_ping(&payload).unwrap_or(false),
            _ => false,
        }
    }

    fn ensure_object(&self, object: &str) -> Result<(), StoreError> {
        let response = self
            .request(&Request::EnsureObject {
                object: object.to_string(),
            })
            .map_err(|e| self.io_error(object, e))?;
        self.expect_ok(object, response).map(drop)
    }

    fn remove_object(&self, object: &str) -> Result<(), StoreError> {
        let response = self
            .request(&Request::RemoveObject {
                object: object.to_string(),
            })
            .map_err(|e| self.io_error(object, e))?;
        self.expect_ok(object, response).map(drop)
    }

    fn write_chunk(&self, object: &str, id: ChunkId, payload: &[u8]) -> Result<(), StoreError> {
        as_u32("chunk payload", payload.len())?;
        let response = self
            .request(&Request::WriteChunk {
                object: object.to_string(),
                id,
                payload: payload.to_vec(),
            })
            .map_err(|e| self.io_error(object, e))?;
        self.expect_ok(object, response).map(drop)
    }

    fn read_chunk_into(&self, object: &str, id: ChunkId, out: &mut [u8]) -> ChunkRead<()> {
        let response = match self.request(&Request::ReadChunk {
            object: object.to_string(),
            id,
            len: as_u32("chunk read", out.len())?,
        }) {
            Ok(response) => response,
            Err(_) => return Ok(Err(ChunkStatus::Missing)), // disk unreachable = lost
        };
        if let Some(status) = response.as_chunk_status() {
            return Ok(Err(status));
        }
        let payload = self.expect_ok(object, response)?;
        if payload.len() != out.len() {
            return Ok(Err(ChunkStatus::Corrupt {
                reason: format!(
                    "server returned {} bytes for a {}-byte chunk",
                    payload.len(),
                    out.len()
                ),
            }));
        }
        out.copy_from_slice(&payload);
        Ok(Ok(()))
    }

    fn read_chunk_range(
        &self,
        object: &str,
        id: ChunkId,
        chunk_len: usize,
        offset: usize,
        out: &mut [u8],
    ) -> ChunkRead<()> {
        let response = match self.request(&Request::ReadRange {
            object: object.to_string(),
            id,
            chunk_len: as_u32("chunk length", chunk_len)?,
            offset: as_u32("range offset", offset)?,
            len: as_u32("range read", out.len())?,
        }) {
            Ok(response) => response,
            Err(_) => return Ok(Err(ChunkStatus::Missing)), // disk unreachable = lost
        };
        if let Some(status) = response.as_chunk_status() {
            return Ok(Err(status));
        }
        let payload = self.expect_ok(object, response)?;
        if payload.len() != out.len() {
            return Ok(Err(ChunkStatus::Corrupt {
                reason: format!(
                    "server returned {} bytes for a {}-byte range",
                    payload.len(),
                    out.len()
                ),
            }));
        }
        out.copy_from_slice(&payload);
        Ok(Ok(()))
    }

    fn verify_chunk(
        &self,
        object: &str,
        id: ChunkId,
        chunk_len: usize,
    ) -> Result<(ChunkStatus, u64), StoreError> {
        let response = match self.request(&Request::Verify {
            object: object.to_string(),
            id,
            chunk_len: as_u32("chunk length", chunk_len)?,
        }) {
            Ok(response) => response,
            Err(_) => return Ok((ChunkStatus::Missing, 0)), // disk unreachable = lost
        };
        let payload = self.expect_ok(object, response)?;
        decode_verify(&payload).map_err(|e| self.io_error(object, e))
    }

    fn sweep_tmp(&self, min_age: Duration) -> Result<Vec<String>, StoreError> {
        let response = match self.request(&Request::SweepTmp { min_age }) {
            Ok(response) => response,
            Err(_) => return Ok(Vec::new()), // nothing sweepable on a lost disk
        };
        let payload = self.expect_ok("<sweep>", response)?;
        decode_sweep(&payload).map_err(|e| self.io_error("<sweep>", e))
    }

    fn counters(&self) -> BackendCounters {
        RemoteDisk::counters(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol;
    use std::io::Write;
    use std::net::TcpListener;

    /// A server that closes the connection after every response, forcing
    /// the client through its reconnect path on each request.
    fn one_shot_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            // Serve exactly three connections, one request each.
            for _ in 0..3 {
                let (mut stream, _) = listener.accept().unwrap();
                let (body, _) = protocol::read_frame(&mut stream).unwrap();
                let request = Request::decode(&body).unwrap();
                assert_eq!(request, Request::Ping);
                let response = Response::Ok {
                    payload: protocol::encode_ping(true),
                };
                protocol::write_frame(&mut stream, &response.encode()).unwrap();
                stream.flush().unwrap();
                // Dropping the stream closes the connection.
            }
        });
        (addr, handle)
    }

    #[test]
    fn client_reconnects_after_the_server_drops_the_connection() {
        let (addr, server) = one_shot_server();
        let disk = RemoteDisk::with_timeout(addr.to_string(), Duration::from_secs(5));
        // Three pings over three connections: the second and third only
        // succeed if the client notices the dropped connection and redials.
        assert!(disk.is_available());
        assert!(disk.is_available());
        assert!(disk.is_available());
        server.join().unwrap();
        let counters = disk.counters();
        assert!(counters.bytes_sent > 0 && counters.bytes_received > 0);
    }

    #[test]
    fn unreachable_server_is_a_hard_error_not_a_hang() {
        // A port that nothing listens on: bind-then-drop reserves one.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let disk = RemoteDisk::with_timeout(addr.to_string(), Duration::from_millis(200));
        assert!(!disk.is_available());
        let err = disk.ensure_object("obj").unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
    }
}
