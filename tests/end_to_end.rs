//! Cross-crate integration tests: the paper's headline claims exercised
//! through the public facade API, from the byte-level codecs up to the
//! cluster simulator.

use pbrs::cluster::config::{CodeChoice, SimConfig};
use pbrs::cluster::sim::paired_rs_vs_piggybacked;
use pbrs::cluster::Simulator;
use pbrs::code::{toy_example, SavingsReport};
use pbrs::erasure::{join_shards, split_into_shards};
use pbrs::prelude::*;

/// §3.1-3.2: the (10, 4) Piggybacked-RS code keeps RS's storage optimality
/// and fault tolerance while cutting single-failure recovery download by
/// roughly 30% for data blocks.
#[test]
fn headline_savings_claim() {
    let report = SavingsReport::for_params(10, 4).unwrap();
    assert!(report.average_data_saving >= 0.30);
    assert!(report.average_data_saving < 0.40);
    assert!(report.average_all_saving > 0.20);

    let pb = PiggybackedRs::new(10, 4).unwrap();
    let rs = ReedSolomon::new(10, 4).unwrap();
    assert_eq!(pb.storage_overhead(), rs.storage_overhead());
    assert_eq!(pb.fault_tolerance(), rs.fault_tolerance());
    assert!(pb.is_mds());
}

/// Fig. 4: the toy (2, 2) example repairs node 1 with 3 bytes instead of 4.
#[test]
fn toy_example_byte_counts() {
    let code = toy_example();
    let data = vec![vec![0xAA, 0xBB], vec![0xCC, 0xDD]];
    let stripe = Stripe::from_encoding(&code, &data).unwrap();
    let mut degraded = stripe.clone();
    degraded.erase(0);
    let outcome = code.repair(0, degraded.as_slice()).unwrap();
    assert_eq!(outcome.metrics.bytes_transferred, 3);
    assert_eq!(outcome.shard, data[0]);
}

/// End-to-end archival flow across crates: split a file into shards, encode,
/// lose r blocks, reconstruct, and get the identical file back — for every
/// code exposed through the trait object interface.
#[test]
fn archival_round_trip_through_trait_objects() {
    let file: Vec<u8> = (0..50_000u32).map(|i| (i % 241) as u8).collect();
    let rs = ReedSolomon::new(10, 4).unwrap();
    let pb = PiggybackedRs::new(10, 4).unwrap();
    let lrc = Lrc::new(LrcParams::XORBAS).unwrap();
    let codes: Vec<&dyn ErasureCode> = vec![&rs, &pb, &lrc];
    for code in codes {
        let k = code.params().data_shards();
        let (blocks, len) = split_into_shards(&file, k, code.granularity()).unwrap();
        let mut stripe = Stripe::from_encoding(code, &blocks).unwrap();
        // Erase as many blocks as the code guarantees to tolerate.
        for i in 0..code.fault_tolerance() {
            stripe.erase(i * 2);
        }
        stripe.reconstruct(code).unwrap();
        let shards = stripe.into_shards().unwrap();
        assert!(code.verify(&shards).unwrap(), "{}", code.name());
        let recovered = join_shards(&shards[..k], len).unwrap();
        assert_eq!(recovered, file, "{}", code.name());
    }
}

/// The efficient repair path and full reconstruction agree for every data
/// block of the production code, and the byte accounting matches the
/// theoretical analysis exactly.
#[test]
fn repair_costs_match_analysis_across_the_stripe() {
    let code = PiggybackedRs::new(10, 4).unwrap();
    let analysis = SavingsReport::for_params(10, 4).unwrap();
    let shard_len = 2048usize;
    let data: Vec<Vec<u8>> = (0..10)
        .map(|i| (0..shard_len).map(|j| ((i * 7 + j) % 256) as u8).collect())
        .collect();
    let stripe = Stripe::from_encoding(&code, &data).unwrap();
    let full = stripe.clone().into_shards().unwrap();
    for (target, expect_shard) in full.iter().enumerate() {
        let mut degraded = stripe.clone();
        degraded.erase(target);
        let outcome = code.repair(target, degraded.as_slice()).unwrap();
        assert_eq!(&outcome.shard, expect_shard);
        let expected =
            (analysis.per_shard[target].shards_downloaded * shard_len as f64).round() as u64;
        assert_eq!(
            outcome.metrics.bytes_transferred, expected,
            "target {target}"
        );
    }
}

/// The warehouse simulator, driven through the facade, reproduces the
/// paper's comparative result on a small cluster: same failures, less
/// cross-rack recovery traffic per reconstructed block under Piggybacked-RS.
#[test]
fn simulator_paired_comparison() {
    let mut config = SimConfig::small_test();
    config.days = 5;
    let (rs, pb) = paired_rs_vs_piggybacked(config);
    assert_eq!(rs.days.len(), 5);
    assert_eq!(pb.days.len(), 5);
    let rs_flagged: u64 = rs.days.iter().map(|d| d.machines_flagged).sum();
    let pb_flagged: u64 = pb.days.iter().map(|d| d.machines_flagged).sum();
    assert_eq!(
        rs_flagged, pb_flagged,
        "paired runs share the failure trace"
    );
    assert!(rs.total_blocks_reconstructed() > 0);
    let rs_per_block = rs.total_cross_rack_bytes() as f64 / rs.total_blocks_reconstructed() as f64;
    let pb_per_block = pb.total_cross_rack_bytes() as f64 / pb.total_blocks_reconstructed() as f64;
    assert!(pb_per_block < rs_per_block * 0.85);
}

/// The LRC baseline really does trade storage for repair traffic, matching
/// the related-work discussion.
#[test]
fn lrc_tradeoff_versus_piggybacked() {
    let lrc = Lrc::new(LrcParams::XORBAS).unwrap();
    let pb = PiggybackedRs::new(10, 4).unwrap();
    assert!(lrc.storage_overhead() > pb.storage_overhead());
    assert!(!lrc.is_mds());
    let mut available = vec![true; 16];
    available[0] = false;
    let lrc_plan = lrc.repair_plan(0, &available).unwrap();
    let mut pb_available = vec![true; 14];
    pb_available[0] = false;
    let pb_plan = pb.repair_plan(0, &pb_available).unwrap();
    assert!(lrc_plan.total_fraction() < pb_plan.total_fraction());
}

/// Replication as a code: 3x storage, single-block repair.
#[test]
fn replication_baseline_through_facade() {
    let rep = Replication::triple();
    let data = vec![vec![1u8, 2, 3, 4]];
    let mut stripe = Stripe::from_encoding(&rep, &data).unwrap();
    stripe.erase(0);
    stripe.erase(2);
    stripe.reconstruct(&rep).unwrap();
    assert_eq!(stripe.shard(0), Some(&[1u8, 2, 3, 4][..]));
    assert_eq!(rep.storage_overhead(), 3.0);
}

/// A longer single-code simulation keeps its internal accounting consistent:
/// traffic is proportional to blocks within the bounds set by the code and
/// block-size model, and the degradation census is dominated by single
/// failures.
#[test]
fn simulator_accounting_invariants() {
    let mut config = SimConfig::small_test();
    config.days = 6;
    config.sampled_stripes = 1500;
    config.code = CodeChoice::proposed_piggybacked();
    let report = Simulator::new(config.clone()).run();
    for day in &report.days {
        let min_per_block = 6.5 * (config.block_size_bytes as f64) * 0.001;
        let max_per_block = 10.0 * config.block_size_bytes as f64;
        if day.blocks_reconstructed > 0 {
            let per_block = day.cross_rack_bytes as f64 / day.blocks_reconstructed as f64;
            assert!(
                per_block >= min_per_block && per_block <= max_per_block,
                "{per_block}"
            );
        } else {
            assert_eq!(day.cross_rack_bytes, 0);
        }
    }
    if report.degradation.total() > 100 {
        assert!(report.degradation.one_missing_pct() > 80.0);
    }
}
