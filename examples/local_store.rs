//! The paper's experiment on real file I/O: ingest a file into an
//! erasure-coded local block store, delete one "disk" directory, watch a
//! degraded read succeed anyway, run the background repair daemon, and
//! compare the cross-disk helper bytes for `rs-10-4` vs `piggyback-10-4`.
//!
//! Run with: `cargo run --release --example local_store`

#![forbid(unsafe_code)]

use std::fs;
use std::sync::Arc;

use pbrs::prelude::*;
use pbrs::store::testing::TempDir;

/// Logical file size to ingest under each code.
const FILE_LEN: usize = 16 * 1024 * 1024;
/// Chunk payload bytes (shard size per stripe).
const CHUNK_LEN: usize = 128 * 1024;
/// The data disk we destroy.
const LOST_DISK: usize = 0;

struct RunResult {
    code: String,
    degraded_helper_bytes: u64,
    repair_helper_bytes: u64,
    chunks_repaired: u64,
}

fn run_code(spec: &str, file: &[u8]) -> Result<RunResult, StoreError> {
    println!("--- {spec} ---");
    let dir = TempDir::new(&format!("local-store-{spec}"));
    let store = Arc::new(BlockStore::open(
        StoreConfig::new(dir.path().join("store"), spec.parse().unwrap()).chunk_len(CHUNK_LEN),
    )?);

    // Ingest: stream the file into stripes across one directory per disk.
    let info = store.put("demo.bin", file)?;
    println!(
        "ingested {} bytes as {} stripes of {} x {} KiB chunks over {} disks",
        info.len,
        info.stripes,
        store.disk_count(),
        CHUNK_LEN / 1024,
        store.disk_count(),
    );

    // Disaster: one whole disk directory disappears.
    fs::remove_dir_all(store.disk_path(LOST_DISK)).unwrap();
    println!("deleted disk directory {:?}", store.disk_path(LOST_DISK));

    // The store still serves the file, reading repair helpers instead of
    // the lost chunks — and counts exactly the helper bytes it read.
    let read_back = store.get("demo.bin")?;
    assert_eq!(read_back, file, "degraded read must be byte-identical");
    let metrics = store.metrics();
    println!(
        "degraded read OK: {} stripes served degraded, {:.1} MiB helper bytes",
        metrics.degraded_stripe_reads,
        mib(metrics.degraded_helper_bytes),
    );

    // Background repair: scrub, enqueue damaged stripes, rebuild on a
    // worker pool, all while the store stays online.
    let daemon = RepairDaemon::start(Arc::clone(&store), DaemonConfig::default());
    let scan = daemon.scan_now()?;
    println!(
        "repair scan: lost disks {:?}, {} damaged chunks in {} stripes",
        scan.lost_disks, scan.damaged_chunks, scan.enqueued_stripes
    );
    daemon.wait_idle();
    let stats = daemon.shutdown();
    assert!(
        store.scrub()?.is_clean(),
        "store must be whole after repair"
    );
    println!(
        "daemon rebuilt {} chunks, reading {:.1} MiB of helpers across disks",
        stats.chunks_repaired,
        mib(stats.helper_bytes),
    );

    Ok(RunResult {
        code: store.code().name(),
        degraded_helper_bytes: metrics.degraded_helper_bytes,
        repair_helper_bytes: stats.helper_bytes,
        chunks_repaired: stats.chunks_repaired,
    })
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() -> Result<(), StoreError> {
    println!("pbrs local store: lose-a-disk cycle under RS vs Piggybacked-RS\n");
    let file: Vec<u8> = (0..FILE_LEN).map(|i| ((i * 31 + 7) % 253) as u8).collect();

    let rs = run_code("rs-10-4", &file)?;
    println!();
    let pb = run_code("piggyback-10-4", &file)?;

    println!(
        "\n--- helper bytes, same workload ({} MiB, disk {LOST_DISK} lost) ---",
        FILE_LEN / (1024 * 1024)
    );
    println!(
        "{:<22} {:>14} {:>14} {:>10}",
        "code", "degraded MiB", "repair MiB", "chunks"
    );
    for r in [&rs, &pb] {
        println!(
            "{:<22} {:>14.1} {:>14.1} {:>10}",
            r.code,
            mib(r.degraded_helper_bytes),
            mib(r.repair_helper_bytes),
            r.chunks_repaired
        );
    }
    let saving = 1.0 - pb.repair_helper_bytes as f64 / rs.repair_helper_bytes as f64;
    println!(
        "\nPiggybacked-RS repaired the same lost disk with {:.1}% less cross-disk traffic.",
        saving * 100.0
    );
    assert!(
        saving >= 0.25,
        "expected >= 25% repair-traffic saving, measured {:.1}%",
        saving * 100.0
    );
    Ok(())
}
