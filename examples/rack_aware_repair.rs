//! The paper's cross-rack traffic argument reproduced on real sockets with
//! real racks: 14 "racks" of chunkd TCP servers (2 disks each, 28 servers),
//! a store placing stripes over the pool under a chosen placement policy,
//! one disk wiped, and the repair traffic measured on per-socket byte
//! counters *split by rack* — the simulator's Fig-3-style accounting made
//! observable on real I/O.
//!
//! Four runs: {rs-10-4, piggyback-10-4} × {rack-disjoint, rack-aware}.
//! Client traffic (ingest and verification) goes through a `pbrs-gateway`
//! front door, so the object crosses real sockets end to end.
//!
//! * Under **rack-disjoint** placement (§2.1's production layout) every
//!   helper byte crosses a rack boundary, so Piggybacked-RS's ~30 % helper
//!   saving is a ~30 % cross-rack saving — the paper's headline.
//! * Under **rack-aware** (grouped) placement the locality-first repair
//!   scheduler finds same-rack helpers, so part of the helper traffic never
//!   leaves the rack at all — the remedy the rack-aware-recovery literature
//!   explores.
//!
//! Run with: `cargo run --release --example rack_aware_repair`

#![forbid(unsafe_code)]

use std::fs;
use std::sync::Arc;

use pbrs::chunkd::{ChunkServer, RemoteDisk, ServerConfig};
use pbrs::prelude::*;
use pbrs::store::testing::TempDir;

/// Racks of chunk servers; must be >= the code width (14) for the
/// rack-disjoint policy.
const RACKS: usize = 14;
/// Chunk servers per rack — the pool (28) is twice the code width, so the
/// placement genuinely chooses.
const DISKS_PER_RACK: usize = 2;
/// Logical file size to ingest under each code × policy.
const FILE_LEN: usize = 8 * 1024 * 1024;
/// Chunk payload bytes (shard size per stripe).
const CHUNK_LEN: usize = 64 * 1024;
/// Data shards of both codes under test (rs-10-4 / piggyback-10-4).
const DATA_SHARDS: usize = 10;

struct RunResult {
    code: String,
    policy: PlacementPolicy,
    /// Helper bytes received from servers outside the lost disk's rack
    /// (socket counters, frame headers included).
    cross_rack_bytes: u64,
    /// Helper bytes received from the lost disk's rack-mates.
    intra_rack_bytes: u64,
    /// The store's own repair accounting (payload bytes), as a cross-check.
    store_intra: u64,
    store_cross: u64,
    chunks_repaired: u64,
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn run(
    spec: &str,
    policy: PlacementPolicy,
    file: &[u8],
) -> Result<RunResult, Box<dyn std::error::Error>> {
    println!("--- {spec} under {policy} placement ---");
    let dir = TempDir::new(&format!("rack-aware-{spec}-{policy}"));
    let code_spec: CodeSpec = spec.parse()?;
    let pool = RACKS * DISKS_PER_RACK;

    // One chunk server per pool disk, all on loopback; rack r owns disks
    // r*DISKS_PER_RACK .. (r+1)*DISKS_PER_RACK (matching RackMap::uniform).
    let servers: Vec<ChunkServer> = (0..pool)
        .map(|i| {
            ChunkServer::bind_with(
                dir.path().join(format!("srv-{i:02}")),
                "127.0.0.1:0",
                ServerConfig {
                    threads: 1,
                    ..ServerConfig::default()
                },
            )
        })
        .collect::<Result<_, _>>()?;
    let racks = RackMap::uniform(RACKS, DISKS_PER_RACK);
    let remotes: Vec<Arc<RemoteDisk>> = servers
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let rack = racks
                .rack_name(racks.rack_of(i).expect("pool disk"))
                .to_string();
            Arc::new(RemoteDisk::new(s.local_addr().to_string()).labeled(rack))
        })
        .collect();
    let disks: Vec<Arc<dyn ChunkBackend>> = remotes
        .iter()
        .map(|r| Arc::clone(r) as Arc<dyn ChunkBackend>)
        .collect();
    let store = Arc::new(BlockStore::open_with_backends(
        StoreConfig::new(dir.path().join("root"), code_spec)
            .chunk_len(CHUNK_LEN)
            .placement_seed(0x2013),
        disks,
        racks.clone(),
        policy,
    )?);

    // The client door: object traffic enters and leaves through a gateway,
    // not direct store calls; repair below stays the store's business.
    let gateway = Gateway::serve(Arc::clone(&store), "127.0.0.1:0", GatewayConfig::default())?;
    let mut client = GatewayClient::connect(gateway.local_addr())?;

    let (len, stripes) = client.put("demo.bin", file)?;
    println!(
        "ingested {len} bytes as {stripes} stripes through the gateway \
         over {pool} chunk servers in {RACKS} racks"
    );

    // Disaster: a server holding *data* chunks loses every byte (the
    // machine rebooted with a fresh drive; the server keeps answering).
    // The paper's measured recovery stream is data-block reconstruction,
    // so the victim is the disk holding the most data chunks and no parity
    // chunks — placement is a pure function of (seed, object, stripe), so
    // both codes see the identical stripe→disk layout and lose the same
    // disk: a perfectly paired comparison.
    let lost_disk = {
        let mut data_held = vec![0usize; pool];
        let mut parity_held = vec![0usize; pool];
        for stripe in 0..stripes {
            for (shard, &disk) in store.stripe_disks("demo.bin", stripe).iter().enumerate() {
                if shard < DATA_SHARDS {
                    data_held[disk] += 1;
                } else {
                    parity_held[disk] += 1;
                }
            }
        }
        (0..pool)
            .filter(|&d| parity_held[d] == 0 && data_held[d] > 0)
            .max_by_key(|&d| data_held[d])
            .expect("some pool disk holds only data chunks (deterministic seed)")
    };
    fs::remove_dir_all(servers[lost_disk].root())?;
    let lost_rack = racks.rack_of(lost_disk).expect("pool disk");
    println!(
        "wiped the disk behind {} ({}) — it held data chunks only",
        servers[lost_disk].local_addr(),
        remotes[lost_disk].describe(),
    );

    // Snapshot each helper connection's received bytes, repair, and diff —
    // exactly the repair's socket traffic, split by the helper's rack.
    let before: Vec<u64> = remotes
        .iter()
        .map(|r| r.counters().bytes_received)
        .collect();
    let metrics_before = store.metrics();

    let daemon = RepairDaemon::start(Arc::clone(&store), DaemonConfig::default());
    let scan = daemon.scan_now()?;
    daemon.wait_idle();
    let stats = daemon.shutdown();
    assert_eq!(stats.failures, 0, "repairs must succeed");
    println!(
        "repair scan found {} damaged chunks in {} stripes; daemon rebuilt {} chunks",
        scan.damaged_chunks, scan.enqueued_stripes, stats.chunks_repaired
    );

    let mut intra = 0u64;
    let mut cross = 0u64;
    for (i, remote) in remotes.iter().enumerate() {
        if i == lost_disk {
            continue; // the rebuilt chunks flow *to* this server, not from it
        }
        let delta = remote.counters().bytes_received - before[i];
        if racks.rack_of(i) == Some(lost_rack) {
            intra += delta;
        } else {
            cross += delta;
        }
    }
    let metrics = store.metrics();

    assert!(
        store.scrub()?.is_clean(),
        "store must be whole after repair"
    );
    // Verify the rebuilt object over the client path: byte-identical and,
    // per the GET end frame, served with zero degraded stripes.
    let got = client.get("demo.bin")?;
    assert_eq!(got.data, file, "rebuilt bytes must match over the gateway");
    assert_eq!(
        got.degraded_stripes, 0,
        "no stripe should read degraded after the repair"
    );
    gateway.shutdown();
    for server in servers {
        server.shutdown();
    }

    Ok(RunResult {
        code: store.code().name(),
        policy,
        cross_rack_bytes: cross,
        intra_rack_bytes: intra,
        store_intra: metrics.repair_intra_rack_bytes - metrics_before.repair_intra_rack_bytes,
        store_cross: metrics.repair_cross_rack_bytes - metrics_before.repair_cross_rack_bytes,
        chunks_repaired: stats.chunks_repaired,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "pbrs rack-aware repair: {RACKS} racks x {DISKS_PER_RACK} chunk servers, \
         one disk wiped per run\n"
    );
    let file: Vec<u8> = (0..FILE_LEN).map(|i| ((i * 31 + 7) % 253) as u8).collect();

    let mut results = Vec::new();
    for policy in [PlacementPolicy::RackDisjoint, PlacementPolicy::RackAware] {
        for spec in ["rs-10-4", "piggyback-10-4"] {
            results.push(run(spec, policy, &file)?);
            println!();
        }
    }

    println!(
        "--- repair socket traffic by rack locality, same workload \
         ({} MiB, one data-chunk disk wiped) ---",
        FILE_LEN / (1024 * 1024)
    );
    println!(
        "{:<22} {:<14} {:>15} {:>15} {:>12} {:>7}",
        "code", "placement", "cross-rack MiB", "intra-rack MiB", "intra share", "chunks"
    );
    for r in &results {
        let share =
            r.intra_rack_bytes as f64 / (r.intra_rack_bytes + r.cross_rack_bytes).max(1) as f64;
        println!(
            "{:<22} {:<14} {:>15.2} {:>15.2} {:>11.1}% {:>7}",
            r.code,
            r.policy.to_string(),
            mib(r.cross_rack_bytes),
            mib(r.intra_rack_bytes),
            share * 100.0,
            r.chunks_repaired
        );
    }

    // The paper's headline, on wires: under rack-disjoint placement every
    // helper byte crosses racks, so Piggybacked-RS's helper saving is a
    // cross-rack saving.
    let cross_of = |code: &str, policy: PlacementPolicy| {
        results
            .iter()
            .find(|r| r.code.to_lowercase().starts_with(code) && r.policy == policy)
            .expect("run present")
    };
    let rs_disjoint = cross_of("rs", PlacementPolicy::RackDisjoint);
    let pb_disjoint = cross_of("piggybacked", PlacementPolicy::RackDisjoint);
    let saving = 1.0 - pb_disjoint.cross_rack_bytes as f64 / rs_disjoint.cross_rack_bytes as f64;
    println!(
        "\npiggyback-10-4 moved {:.1}% fewer cross-rack helper bytes than rs-10-4 \
         under rack-disjoint placement",
        saving * 100.0
    );
    assert!(
        saving >= 0.25,
        "expected >= 25% cross-rack saving on socket counters, measured {:.1}%",
        saving * 100.0
    );

    // The remedy: grouped placement plus locality-first helper choice keeps
    // part of the repair traffic inside the rack.
    let rs_aware = cross_of("rs", PlacementPolicy::RackAware);
    assert!(
        rs_aware.intra_rack_bytes > 0 && rs_aware.store_intra > 0,
        "rack-aware placement must yield same-rack helper bytes"
    );
    for r in &results {
        if r.policy == PlacementPolicy::RackDisjoint {
            assert_eq!(
                r.store_intra, 0,
                "{}: rack-disjoint placement admits no same-rack helpers",
                r.code
            );
        }
    }
    let aware_share = rs_aware.intra_rack_bytes as f64
        / (rs_aware.intra_rack_bytes + rs_aware.cross_rack_bytes) as f64;
    println!(
        "rack-aware placement kept {:.1}% of rs-10-4's repair traffic inside the rack \
         ({:.2} MiB intra vs {:.2} MiB cross; store payload counters agree: \
         {:.2} MiB intra / {:.2} MiB cross)",
        aware_share * 100.0,
        mib(rs_aware.intra_rack_bytes),
        mib(rs_aware.cross_rack_bytes),
        mib(rs_aware.store_intra),
        mib(rs_aware.store_cross),
    );
    Ok(())
}
