//! Archive a file the way the warehouse cluster archives cold data: split it
//! into blocks, group blocks into (10, 4) stripes, place every block on a
//! different rack, then survive machine failures and degraded reads.
//!
//! Run with: `cargo run --example archival_file`

#![forbid(unsafe_code)]

use pbrs::erasure::{join_shards, split_into_shards};
use pbrs::prelude::*;

fn main() -> Result<(), CodeError> {
    // "A file or a directory is first partitioned into blocks ... every set
    //  is then encoded with a (10, 4) RS code" (§2.1). Here we use the
    // Piggybacked-RS replacement the paper proposes and a small file,
    // selecting the code by spec through the registry.
    let code = build_code("piggyback-10-4")?;
    let code = code.as_ref();
    let file: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();

    // Split the file into 10 equal data blocks (the code works on two
    // byte-level substripes, so block sizes must be even).
    let (blocks, original_len) = split_into_shards(&file, 10, code.granularity())?;
    println!(
        "archived a {}-byte file as 10 data blocks of {} bytes + 4 parity blocks",
        original_len,
        blocks[0].len()
    );
    let mut stripe = Stripe::from_encoding(code, &blocks)?;

    // Two machines in different racks fail: one holding a data block, one
    // holding a parity block.
    stripe.erase(2);
    stripe.erase(11);
    println!("lost block 2 (data) and block 11 (parity); stripe is degraded but readable");

    // Degraded read: reconstruct just the data and hand the file back.
    let recovered_blocks = {
        let mut working = stripe.clone();
        working.reconstruct(code)?;
        working.into_shards()?
    };
    let recovered_file = join_shards(&recovered_blocks[..10], original_len)?;
    assert_eq!(recovered_file, file);
    println!(
        "degraded read returned the exact original file ({} bytes)",
        recovered_file.len()
    );

    // Background repair of the lost data block, with the reduced download.
    let outcome = code.repair(2, stripe.as_slice())?;
    println!(
        "background repair of block 2 contacted {} helpers and moved {} bytes \
         (a plain RS code would have moved {} bytes)",
        outcome.metrics.helpers,
        outcome.metrics.bytes_transferred,
        10 * blocks[0].len()
    );
    stripe.insert(2, outcome.shard);

    // The parity block repair falls back to the classic path.
    let parity_outcome = code.repair(11, stripe.as_slice())?;
    stripe.insert(11, parity_outcome.shard);
    assert!(stripe.is_complete());
    let final_blocks = stripe.into_shards()?;
    assert!(code.verify(&final_blocks)?);
    println!("stripe fully healed and parity-consistent");
    Ok(())
}
