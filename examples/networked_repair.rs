//! The paper's experiment on a real network: every "disk" of the store is
//! a chunkd TCP server on loopback, one of them loses all its data, and
//! the repair daemon rebuilds it over sockets — so the helper bytes of
//! `rs-10-4` vs `piggyback-10-4` are measured on per-connection socket
//! counters, not just file I/O. Piggybacked-RS repairs the same lost disk
//! with ~30 % less traffic actually crossing the wire.
//!
//! Client traffic takes the network path too: the object is ingested and
//! verified through a `pbrs-gateway` front door on loopback, so bytes flow
//! client → gateway → chunkd servers end to end.
//!
//! Run with: `cargo run --release --example networked_repair`

#![forbid(unsafe_code)]

use std::fs;
use std::sync::Arc;

use pbrs::chunkd::{ChunkServer, RemoteDisk, ServerConfig};
use pbrs::prelude::*;
use pbrs::store::testing::TempDir;

/// Logical file size to ingest under each code.
const FILE_LEN: usize = 16 * 1024 * 1024;
/// Chunk payload bytes (shard size per stripe).
const CHUNK_LEN: usize = 128 * 1024;
/// The data disk whose server loses everything.
const LOST_DISK: usize = 0;

struct RunResult {
    code: String,
    helper_socket_bytes: u64,
    rebuilt_socket_bytes: u64,
    chunks_repaired: u64,
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn run_code(spec: &str, file: &[u8]) -> Result<RunResult, Box<dyn std::error::Error>> {
    println!("--- {spec} ---");
    let dir = TempDir::new(&format!("networked-repair-{spec}"));
    let code_spec: CodeSpec = spec.parse()?;
    let code = build_spec(&code_spec)?;
    let n = code.params().total_shards();

    // One chunk server per disk, all on loopback with OS-assigned ports.
    let servers: Vec<ChunkServer> = (0..n)
        .map(|i| {
            ChunkServer::bind_with(
                dir.path().join(format!("srv-{i:02}")),
                "127.0.0.1:0",
                ServerConfig {
                    threads: 2,
                    ..ServerConfig::default()
                },
            )
        })
        .collect::<Result<_, _>>()?;
    let remotes: Vec<Arc<RemoteDisk>> = servers
        .iter()
        .map(|s| Arc::new(RemoteDisk::new(s.local_addr().to_string())))
        .collect();
    let disks: Vec<Arc<dyn ChunkBackend>> = remotes
        .iter()
        .map(|r| Arc::clone(r) as Arc<dyn ChunkBackend>)
        .collect();
    // The legacy layout: shard i on server i, every server its own rack.
    let store = Arc::new(BlockStore::open_with_backends(
        StoreConfig::new(dir.path().join("root"), code_spec).chunk_len(CHUNK_LEN),
        disks,
        RackMap::per_disk(n),
        PlacementPolicy::Identity,
    )?);

    // The client-facing door: a streaming gateway over the same store, so
    // ingest and verification cross the wire twice (client → gateway,
    // gateway → chunk servers).
    let gateway = Gateway::serve(Arc::clone(&store), "127.0.0.1:0", GatewayConfig::default())?;
    let mut client = GatewayClient::connect(gateway.local_addr())?;

    let (len, stripes) = client.put("demo.bin", file)?;
    println!(
        "ingested {len} bytes as {stripes} stripes through the gateway at {} \
         across {n} chunk servers ({:.1} MiB of chunks over sockets)",
        gateway.local_addr(),
        mib(store.socket_counters().bytes_sent),
    );

    // Disaster: disk LOST_DISK's server loses every byte it stored (the
    // server itself stays up — the machine rebooted with a fresh drive).
    fs::remove_dir_all(servers[LOST_DISK].root())?;
    println!(
        "wiped the disk behind {} (server still answering)",
        servers[LOST_DISK].local_addr()
    );

    // Measure exactly the repair's traffic: snapshot each connection's
    // counters, let the daemon rebuild, and diff.
    let helpers_before: u64 = remotes
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != LOST_DISK)
        .map(|(_, r)| r.counters().bytes_received)
        .sum();
    let lost_before = remotes[LOST_DISK].counters().bytes_sent;

    let daemon = RepairDaemon::start(Arc::clone(&store), DaemonConfig::default());
    let scan = daemon.scan_now()?;
    println!(
        "repair scan: lost disks {:?}, {} damaged chunks in {} stripes",
        scan.lost_disks, scan.damaged_chunks, scan.enqueued_stripes
    );
    daemon.wait_idle();
    let stats = daemon.shutdown();
    assert_eq!(stats.failures, 0, "repairs must succeed");

    // Take the traffic deltas *now*: the verification reads below are
    // ordinary reads, not part of the repair being measured.
    let helper_socket_bytes: u64 = remotes
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != LOST_DISK)
        .map(|(_, r)| r.counters().bytes_received)
        .sum::<u64>()
        - helpers_before;
    let rebuilt_socket_bytes = remotes[LOST_DISK].counters().bytes_sent - lost_before;

    assert!(
        store.scrub()?.is_clean(),
        "store must be whole after repair"
    );
    // Verify through the same client path readers would use: a full
    // streamed GET, which must now be byte-identical *and* clean — the
    // end frame reports zero degraded stripes once the rebuild landed.
    let got = client.get("demo.bin")?;
    assert_eq!(got.data, file, "rebuilt bytes must match over the gateway");
    assert_eq!(
        got.degraded_stripes, 0,
        "no stripe should read degraded after the repair"
    );
    gateway.shutdown();
    println!(
        "daemon rebuilt {} chunks: {:.1} MiB of helper bytes received over \
         sockets, {:.1} MiB of rebuilt chunks sent back",
        stats.chunks_repaired,
        mib(helper_socket_bytes),
        mib(rebuilt_socket_bytes),
    );

    Ok(RunResult {
        code: store.code().name(),
        helper_socket_bytes,
        rebuilt_socket_bytes,
        chunks_repaired: stats.chunks_repaired,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("pbrs networked repair: every disk a TCP chunk server, one wiped\n");
    let file: Vec<u8> = (0..FILE_LEN).map(|i| ((i * 31 + 7) % 253) as u8).collect();

    let rs = run_code("rs-10-4", &file)?;
    println!();
    let pb = run_code("piggyback-10-4", &file)?;

    println!(
        "\n--- socket traffic of the repair, same workload \
         ({} MiB, disk {LOST_DISK} wiped) ---",
        FILE_LEN / (1024 * 1024)
    );
    println!(
        "{:<22} {:>16} {:>14} {:>8}",
        "code", "helper MiB (rx)", "rebuilt MiB", "chunks"
    );
    for r in [&rs, &pb] {
        println!(
            "{:<22} {:>16.1} {:>14.1} {:>8}",
            r.code,
            mib(r.helper_socket_bytes),
            mib(r.rebuilt_socket_bytes),
            r.chunks_repaired
        );
    }
    let saving = 1.0 - pb.helper_socket_bytes as f64 / rs.helper_socket_bytes as f64;
    println!(
        "\nPiggybacked-RS moved {:.1}% fewer helper bytes across the sockets \
         for the same rebuilt disk.",
        saving * 100.0
    );
    assert!(
        saving >= 0.25,
        "expected >= 25% socket-traffic saving, measured {:.1}%",
        saving * 100.0
    );
    Ok(())
}
