//! Compare the storage schemes the paper discusses — 3-way replication, the
//! production RS(10,4) code, the proposed Piggybacked-RS(10,4), and an LRC
//! baseline — on storage overhead, repair download and durability.
//!
//! Run with: `cargo run --example repair_comparison`

#![forbid(unsafe_code)]

use pbrs::cluster::reliability::model_for_code;
use pbrs::code::CodeComparison;
use pbrs::prelude::*;
use pbrs::trace::report::to_markdown_table;

fn main() -> Result<(), CodeError> {
    // Every scheme the paper discusses, selected uniformly by spec string
    // through the registry.
    let codes: Vec<pbrs::code::registry::DynCode> =
        ["rep-3", "rs-10-4", "piggyback-10-4", "lrc-10-2-4"]
            .iter()
            .map(|spec| build_code(spec))
            .collect::<Result<_, _>>()?;

    // Reliability model: 256 MB blocks, 40 MB/s bandwidth-bound repair, one
    // permanent block loss per four block-years.
    let block = 256.0 * 1024.0 * 1024.0;
    let bandwidth = 40.0 * 1024.0 * 1024.0;
    let mtbf_hours = 4.0 * 365.25 * 24.0;

    let rows: Vec<Vec<String>> = codes
        .iter()
        .map(|code| {
            let c = CodeComparison::of(code.as_ref());
            let mttdl = model_for_code(
                code.params().total_shards(),
                code.fault_tolerance(),
                c.average_blocks_per_repair * block,
                code.params().data_shards() as f64 * block,
                bandwidth,
                mtbf_hours,
            );
            vec![
                c.name.clone(),
                format!("{:.2}x", c.storage_overhead),
                format!("{}", c.fault_tolerance),
                if c.is_mds { "yes" } else { "no" }.to_string(),
                format!("{:.2}", c.average_blocks_per_repair),
                format!("{:.1e} years", mttdl.stripe_mttdl_years()),
            ]
        })
        .collect();

    print!(
        "{}",
        to_markdown_table(
            &[
                "scheme",
                "storage overhead",
                "failures tolerated",
                "storage optimal (MDS)",
                "blocks downloaded per block repaired",
                "per-stripe MTTDL"
            ],
            &rows
        )
    );

    println!();
    println!("Reading the table the way the paper does:");
    println!(" * replication is cheap to repair but needs 3x storage (the cost the cluster is escaping);");
    println!(" * RS(10,4) is storage optimal but repairs cost 10 whole blocks of network traffic;");
    println!(
        " * Piggybacked-RS keeps the 1.4x/MDS storage story and cuts the repair download by ~30%"
    );
    println!("   for data blocks (~24% averaged over all 14 blocks), which also raises the MTTDL;");
    println!(" * LRC repairs even cheaper but gives up storage optimality (1.6x).");
    Ok(())
}
