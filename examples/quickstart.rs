//! Quickstart: encode a stripe with the paper's proposed Piggybacked-RS
//! code, lose a block, and repair it with ~30% less network traffic than the
//! production Reed–Solomon code would need.
//!
//! Run with: `cargo run --example quickstart`

use pbrs::prelude::*;

fn main() -> Result<(), CodeError> {
    // The warehouse cluster's production parameters: 10 data blocks + 4
    // parity blocks per stripe (1.4x storage overhead).
    let rs = ReedSolomon::new(10, 4)?;
    let piggybacked = PiggybackedRs::new(10, 4)?;

    // Ten "blocks" of application data (tiny here; 256 MB in production).
    let data: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 1024]).collect();

    // Encode with both codes. Both produce 4 parity blocks of the same size:
    // the piggybacked code uses no extra storage.
    let mut rs_stripe = Stripe::from_encoding(&rs, &data)?;
    let mut pb_stripe = Stripe::from_encoding(&piggybacked, &data)?;
    assert_eq!(rs_stripe.len(), pb_stripe.len());

    // A machine holding block 6 becomes unavailable.
    rs_stripe.erase(6);
    pb_stripe.erase(6);

    // Repair it under both codes and compare the bytes moved.
    let rs_repair = rs.repair(6, rs_stripe.as_slice())?;
    let pb_repair = piggybacked.repair(6, pb_stripe.as_slice())?;
    assert_eq!(rs_repair.shard, data[6]);
    assert_eq!(pb_repair.shard, data[6]);

    println!("Repairing block 6 of a (10, 4) stripe of 1 KiB blocks:");
    println!(
        "  Reed-Solomon   : {} helpers, {} bytes read and transferred",
        rs_repair.metrics.helpers, rs_repair.metrics.bytes_transferred
    );
    println!(
        "  Piggybacked-RS : {} helpers, {} bytes read and transferred",
        pb_repair.metrics.helpers, pb_repair.metrics.bytes_transferred
    );
    let saving = 1.0
        - pb_repair.metrics.bytes_transferred as f64 / rs_repair.metrics.bytes_transferred as f64;
    println!("  saving         : {:.1}% less recovery traffic", saving * 100.0);

    // Both codes tolerate any 4 block losses (they are MDS).
    for stripe in [&mut rs_stripe, &mut pb_stripe] {
        stripe.erase(0);
        stripe.erase(3);
        stripe.erase(12);
    }
    rs_stripe.reconstruct(&rs)?;
    pb_stripe.reconstruct(&piggybacked)?;
    assert!(rs_stripe.is_complete() && pb_stripe.is_complete());
    println!("Both codes reconstructed a stripe with 4 missing blocks exactly.");
    Ok(())
}
