//! Quickstart: build codes by spec string through the unified registry,
//! encode a stripe with the paper's proposed Piggybacked-RS code using the
//! zero-copy API, lose a block, and repair it with ~30% less network
//! traffic than the production Reed–Solomon code would need.
//!
//! Run with: `cargo run --example quickstart`

#![forbid(unsafe_code)]

use pbrs::prelude::*;

fn main() -> Result<(), CodeError> {
    // The warehouse cluster's production scheme and the paper's proposal,
    // both selected by name: 10 data blocks + 4 parity blocks per stripe
    // (1.4x storage overhead).
    let rs = build_code("rs-10-4")?;
    let piggybacked = build_code("piggyback-10-4")?;

    // Ten "blocks" of application data (tiny here; 256 MB in production),
    // laid out in one contiguous stripe buffer per code.
    let (k, n, block_len) = (10, 14, 1024);
    let mut rs_stripe = ShardBuffer::zeroed(n, block_len);
    for i in 0..k {
        rs_stripe
            .shard_mut(i)
            .iter_mut()
            .enumerate()
            .for_each(|(j, b)| *b = ((i * 37 + j) % 256) as u8);
    }
    let mut pb_stripe = rs_stripe.clone();

    // Zero-copy encode: parity is written in place, right behind the data
    // it protects. Both codes produce 4 parity blocks of the same size —
    // the piggybacked code uses no extra storage.
    {
        let (data, mut parity) = rs_stripe.split_mut(k);
        rs.encode_into(&data, &mut parity)?;
    }
    {
        let (data, mut parity) = pb_stripe.split_mut(k);
        piggybacked.encode_into(&data, &mut parity)?;
    }

    // A machine holding block 6 becomes unavailable. Rebuild it under both
    // codes straight into a caller-provided buffer, and compare the bytes
    // each repair plan moves across the network.
    let target = 6;
    let mut rs_rebuilt = vec![0u8; block_len];
    let mut pb_rebuilt = vec![0u8; block_len];
    rs.repair_into(target, &rs_stripe.as_set(), &mut rs_rebuilt)?;
    piggybacked.repair_into(target, &pb_stripe.as_set(), &mut pb_rebuilt)?;
    assert_eq!(rs_rebuilt, rs_stripe.shard(target));
    assert_eq!(pb_rebuilt, pb_stripe.shard(target));

    let mut available = vec![true; n];
    available[target] = false;
    let rs_plan = rs.repair_plan(target, &available)?;
    let pb_plan = piggybacked.repair_plan(target, &available)?;
    println!("Repairing block 6 of a (10, 4) stripe of 1 KiB blocks:");
    println!(
        "  Reed-Solomon   : {} helpers, {} bytes read and transferred",
        rs_plan.helper_count(),
        rs_plan.bytes_read(block_len)
    );
    println!(
        "  Piggybacked-RS : {} helpers, {} bytes read and transferred",
        pb_plan.helper_count(),
        pb_plan.bytes_read(block_len)
    );
    let saving = 1.0 - pb_plan.bytes_read(block_len) as f64 / rs_plan.bytes_read(block_len) as f64;
    println!(
        "  saving         : {:.1}% less recovery traffic",
        saving * 100.0
    );

    // Both codes tolerate any 4 block losses (they are MDS): zero the lost
    // blocks and rebuild them in place inside the stripe buffer.
    let mut present = vec![true; n];
    for lost in [0, 3, 6, 12] {
        present[lost] = false;
    }
    let rs_original = rs_stripe.clone();
    let pb_original = pb_stripe.clone();
    for lost in [0, 3, 6, 12] {
        rs_stripe.shard_mut(lost).fill(0);
        pb_stripe.shard_mut(lost).fill(0);
    }
    rs.reconstruct_in_place(&mut rs_stripe.as_set_mut(), &present)?;
    piggybacked.reconstruct_in_place(&mut pb_stripe.as_set_mut(), &present)?;
    assert_eq!(rs_stripe, rs_original);
    assert_eq!(pb_stripe, pb_original);
    println!("Both codes reconstructed a stripe with 4 missing blocks exactly, in place.");
    Ok(())
}
