//! Failure-domain hardening, demonstrated: two disks misbehave at once —
//! one loses all its data, another stalls every read — and the hardened
//! store keeps its promises anyway.
//!
//! The script, on an `rs-4-2` store over six fault-injected disks:
//!
//! 1. Disk 1 is wiped (its chunks are gone for good).
//! 2. Disk 4 stalls every read indefinitely (a deterministic, seeded
//!    [`FaultPlan`] — the same injection the chaos CI job drives).
//! 3. A degraded read rebuilds every stripe *within the op deadline*: the
//!    first-choice helper set runs into the stall, the hedge abandons it
//!    at `hedge_delay`, and the next-ranked survivor set completes.
//! 4. The recorded timeouts trip disk 4's circuit breaker
//!    (Healthy → Suspect); the transition lands in the health journal and
//!    the advisory file, and the next read sheds the sick disk instead of
//!    waiting on it at all.
//! 5. The stalling drive is "replaced" (the fault plan is released), but
//!    its breaker stays open until probes prove recovery — so the repair
//!    daemon treats it as lost alongside the wiped disk and rebuilds
//!    both, reading helpers only from disks the breaker trusts.
//!
//! Run with: `cargo run --release --example chaos_repair`

#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use pbrs::obs::trace::{RootFlags, ScopedCtx, Tracer, TracerConfig};
use pbrs::prelude::*;
use pbrs::store::testing::TempDir;

const CHUNK_LEN: usize = 64 * 1024;
const STRIPES: usize = 3;
const WIPED_DISK: usize = 1;
const STALLED_DISK: usize = 4;
const OP_DEADLINE: Duration = Duration::from_millis(300);
const HEDGE_DELAY: Duration = Duration::from_millis(60);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("pbrs chaos repair: one disk wiped, one disk stalled\n");
    let dir = TempDir::new("chaos-repair");

    // Deterministic injection: disk 4 parks every read until released.
    let plan = Arc::new(FaultPlan::parse(
        &format!("disk={STALLED_DISK} op=read stall"),
        7,
    )?);
    let disks: Vec<Arc<dyn ChunkBackend>> = (0..6)
        .map(|i| {
            let inner: Arc<dyn ChunkBackend> =
                Arc::new(LocalDisk::new(dir.path().join(format!("pool-{i:02}"))));
            Arc::new(FaultyBackend::new(inner, Arc::clone(&plan), i)) as Arc<dyn ChunkBackend>
        })
        .collect();
    let store = Arc::new(BlockStore::open_with_backends(
        StoreConfig::new(dir.path().join("root"), "rs-4-2".parse()?)
            .chunk_len(CHUNK_LEN)
            .op_deadline(OP_DEADLINE)
            .hedge_delay(HEDGE_DELAY)
            .health_policy(HealthPolicy {
                suspect_failures: 2,
                probe_interval: Duration::from_secs(60),
                ..HealthPolicy::default()
            }),
        disks,
        RackMap::per_disk(6),
        PlacementPolicy::Identity,
    )?);

    // Flight recorder: the hedged read below runs under a root span, so
    // the tracer retains its whole tree — including the stalled
    // helper's abandoned read losing to the hedge's winning rebuild.
    let tracer = Arc::new(Tracer::new("store", TracerConfig::default()));
    store.set_tracer(Arc::clone(&tracer));

    let data: Vec<u8> = (0..4 * CHUNK_LEN * STRIPES)
        .map(|i| ((i * 31 + 7) % 253) as u8)
        .collect();
    store.put("dataset", &data[..])?;
    println!(
        "ingested {} KiB as {STRIPES} stripes across 6 disks",
        data.len() / 1024
    );

    // Disaster, twice over: disk 1's bytes are gone, disk 4 stops
    // answering reads (the fault plan parks them).
    std::fs::remove_dir_all(dir.path().join(format!("pool-{WIPED_DISK:02}")))?;
    println!("wiped disk {WIPED_DISK}; disk {STALLED_DISK} now stalls every read\n");

    // Degraded read #1: the first-choice helper set {0,2,3,4} includes
    // the stalled disk; the hedge abandons it and the next-ranked set
    // {0,2,3,5} rebuilds each stripe — all inside the op deadline.
    let root = tracer.root_span("get", None);
    let start = Instant::now();
    let got = {
        let _scope = ScopedCtx::enter(Some(root.ctx()));
        store.get("dataset")?
    };
    assert_eq!(got, data, "degraded read must be exact");
    let elapsed = start.elapsed();
    let bound = OP_DEADLINE * 2 * STRIPES as u32;
    assert!(
        elapsed < bound,
        "hedged degraded read took {elapsed:?}, bound {bound:?}"
    );
    let m = store.metrics();
    println!(
        "hedged degraded read: {} stripes in {elapsed:?} \
         ({} hedged, {} hedge wins, deadline {OP_DEADLINE:?})",
        STRIPES, m.hedged_reads, m.hedge_wins
    );
    assert_eq!(m.hedged_reads, STRIPES as u64);
    assert_eq!(m.hedge_wins, STRIPES as u64);

    // The flight recorder kept the whole tree. Walk it to show the duel
    // each stripe fought: the stalled helper's read abandoned at the
    // hedge delay, losing to the alternate set's winning rebuild.
    assert!(
        root.finish_root(&tracer, RootFlags::default()),
        "a hedged degraded read must be retained on span evidence alone"
    );
    let tree = tracer.retained().pop().expect("retained trace");
    assert!(tree.reasons.contains(&"degraded"), "{:?}", tree.reasons);
    assert!(tree.reasons.contains(&"hedged"), "{:?}", tree.reasons);
    println!(
        "\nretained trace {} [{}], root {:.1} ms:",
        tree.trace,
        tree.reasons.join(", "),
        tree.root_dur_us() as f64 / 1000.0
    );
    let (mut abandoned_seen, mut wins_seen) = (0u32, 0u32);
    for stripe_span in tree.children_of(tree.root) {
        println!(
            "  {} stripe={} {:.1} ms{}",
            stripe_span.name,
            stripe_span.tag("stripe").unwrap_or("?"),
            stripe_span.dur_us as f64 / 1000.0,
            if stripe_span.tag("degraded").is_some() {
                " (degraded)"
            } else {
                ""
            },
        );
        let mut lost_us = None;
        for child in tree.children_of(stripe_span.id) {
            let verdict = if child.tag("abandoned").is_some() {
                lost_us = Some(child.dur_us);
                abandoned_seen += 1;
                "  <- stall abandoned by the hedge"
            } else if child.tag("hedged") == Some("winner") {
                wins_seen += 1;
                let margin = lost_us.map_or(0, |l| l.saturating_sub(child.dur_us));
                assert!(
                    lost_us.is_some_and(|l| child.dur_us < l),
                    "the winning rebuild must be faster than the abandoned read"
                );
                println!(
                    "    {} target_shard={} {:.1} ms  <- hedge winner (beat the stall by {:.1} ms)",
                    child.name,
                    child.tag("target_shard").unwrap_or("?"),
                    child.dur_us as f64 / 1000.0,
                    margin as f64 / 1000.0,
                );
                continue;
            } else {
                ""
            };
            println!(
                "    {} disk={} rack={} {:.1} ms{verdict}",
                child.name,
                child.tag("disk").unwrap_or("?"),
                child.tag("rack").unwrap_or("?"),
                child.dur_us as f64 / 1000.0,
            );
        }
    }
    assert_eq!(
        abandoned_seen, STRIPES as u32,
        "every stripe must show disk {STALLED_DISK}'s abandoned read"
    );
    assert_eq!(
        wins_seen, STRIPES as u32,
        "every stripe must show the hedge's winning rebuild"
    );

    // The abandoned reads were recorded as timeouts; two of them tripped
    // the breaker. The transition is journaled and advisory-persisted.
    assert_eq!(store.disk_state(STALLED_DISK), Some(DiskState::Suspect));
    let trips: Vec<String> = store
        .health_events()
        .into_iter()
        .filter(|e| e.kind == EventKind::DiskHealth)
        .map(|e| e.detail)
        .collect();
    assert!(
        trips.iter().any(|d| d.contains("suspect")),
        "breaker trip missing from the journal: {trips:?}"
    );
    println!("breaker tripped, journal says: {}", trips.join("; "));
    let advisory = std::fs::read_to_string(dir.path().join("root").join("HEALTH.advisory"))?;
    print!("HEALTH.advisory:\n{advisory}");

    // Degraded read #2: the open breaker sheds disk 4 outright — no
    // stall, no deadline wait.
    let start = Instant::now();
    assert_eq!(store.get("dataset")?, data);
    println!(
        "\nwith the breaker open the same read takes {:?} (shed, not waited)",
        start.elapsed()
    );

    // The operator swaps the stalling drive: the fault plan is released,
    // so disk 4 answers again — but its breaker stays open (probes are
    // minutes apart), so the store still refuses to *trust* it. The
    // repair daemon therefore sees both the wiped and the suspect disk as
    // lost, reads helpers only from the four disks the breaker trusts,
    // and rewrites every chunk of both.
    plan.release();
    let daemon = RepairDaemon::start(Arc::clone(&store), DaemonConfig::default());
    let scan = daemon.scan_now()?;
    daemon.wait_idle();
    let stats = daemon.shutdown();
    println!(
        "repair daemon: disks {:?} treated lost, {} chunks rebuilt, {} failures",
        scan.lost_disks, stats.chunks_repaired, stats.failures
    );
    assert_eq!(scan.lost_disks, vec![WIPED_DISK, STALLED_DISK]);
    assert_eq!(stats.chunks_repaired, 2 * STRIPES as u64);
    assert_eq!(stats.failures, 0, "repair must succeed");

    println!("\nchaos survived: exact reads, bounded latency, repaired disks.");
    Ok(())
}
