//! Simulate a scaled-down warehouse cluster for a week and print the per-day
//! recovery activity that the paper's Fig. 3b reports for the production
//! cluster — then re-run the same failure trace with the Piggybacked-RS code
//! and show the cross-rack traffic drop.
//!
//! Run with: `cargo run --release --example warehouse_simulation`
//! (The full paper-scale configuration lives in the `fig3b` and
//! `traffic_reduction` binaries of the `pbrs-bench` crate.)

#![forbid(unsafe_code)]

use pbrs::cluster::config::{CodeChoice, SimConfig};
use pbrs::cluster::sim::paired_rs_vs_piggybacked;
use pbrs::cluster::Simulator;
use pbrs::trace::report::{human_bytes, to_markdown_table};

fn main() {
    // A 600-machine cluster for a 7-day window: small enough to run in a few
    // seconds even in debug builds.
    let mut config = SimConfig::small_test();
    config.racks = 30;
    config.machines_per_rack = 20;
    config.unavailability.machines = config.machines();
    config.unavailability.base_events_per_day = 25.0;
    config.mean_rs_blocks_per_machine = 1200.0;
    config.days = 7;
    config.sampled_stripes = 3000;
    config.code = CodeChoice::production_rs();

    println!(
        "simulating {} machines / {} racks for {} days under RS(10,4)...",
        config.machines(),
        config.racks,
        config.days
    );
    let report = Simulator::new(config.clone()).run();

    let rows: Vec<Vec<String>> = report
        .days
        .iter()
        .map(|d| {
            vec![
                d.day.to_string(),
                d.machines_flagged.to_string(),
                d.blocks_reconstructed.to_string(),
                human_bytes(d.cross_rack_bytes),
                d.blocks_cancelled.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        to_markdown_table(
            &[
                "day",
                "machines flagged",
                "blocks rebuilt",
                "cross-rack traffic",
                "rebuilds cancelled"
            ],
            &rows
        )
    );
    println!(
        "degraded-stripe census: {:.2}% one missing / {:.2}% two / {:.2}% three+ ({} observations)",
        report.degradation.one_missing_pct(),
        report.degradation.two_missing_pct(),
        report.degradation.three_plus_missing_pct(),
        report.degradation.total(),
    );

    // The paired experiment: same seed, same failures, different code.
    println!("\nre-running the identical failure trace with Piggybacked-RS(10,4)...");
    let (rs, pb) = paired_rs_vs_piggybacked(config);
    let rs_total = rs.total_cross_rack_bytes();
    let pb_total = pb.total_cross_rack_bytes();
    println!(
        "cross-rack recovery traffic over the week: RS {} vs Piggybacked-RS {} ({:.1}% saved)",
        human_bytes(rs_total),
        human_bytes(pb_total),
        (1.0 - pb_total as f64 / rs_total as f64) * 100.0
    );
}
